//! # graphtrek-suite — umbrella crate
//!
//! Re-exports the whole GraphTrek reproduction so the examples and the
//! cross-crate integration tests have a single dependency surface:
//!
//! * [`graphtrek`] — the traversal language, engines, and cluster harness
//! * [`gt_graph`] — property-graph model, storage layout, partitioning
//! * [`gt_kvstore`] — the persistent key-value substrate
//! * [`gt_net`] — the simulated cluster fabric
//! * [`gt_rmat`] / [`gt_darshan`] — synthetic workload generators
//!
//! See `README.md` for the project overview and `DESIGN.md` for the
//! paper-to-module map.

pub use graphtrek;
pub use gt_darshan;
pub use gt_graph;
pub use gt_kvstore;
pub use gt_net;
pub use gt_rmat;

/// Everything a typical example needs.
pub mod prelude {
    pub use graphtrek::prelude::*;
    pub use gt_darshan::{DarshanConfig, DarshanGraph};
    pub use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
    pub use gt_rmat::RmatConfig;
}
