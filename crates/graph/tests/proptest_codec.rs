//! Property tests for the storage codec and partitioner invariants.

use gt_graph::codec;
use gt_graph::{EdgeCutPartitioner, PropValue, Props, Vertex, VertexId};
use proptest::prelude::*;

fn prop_value() -> impl Strategy<Value = PropValue> {
    prop_oneof![
        any::<i64>().prop_map(PropValue::Int),
        any::<f64>().prop_map(PropValue::float),
        "[a-zA-Z0-9 _./-]{0,40}".prop_map(PropValue::Str),
        any::<bool>().prop_map(PropValue::Bool),
    ]
}

fn props() -> impl Strategy<Value = Props> {
    proptest::collection::btree_map("[a-z_]{1,16}", prop_value(), 0..12).prop_map(Props)
}

proptest! {
    #[test]
    fn props_roundtrip(p in props()) {
        let enc = codec::encode_props(&p);
        prop_assert_eq!(codec::decode_props(&enc), Some(p));
    }

    #[test]
    fn vertex_roundtrip(id in any::<u64>(), vtype in "[A-Za-z]{1,12}", p in props()) {
        let v = Vertex::new(id, vtype, p);
        let enc = codec::encode_vertex(&v);
        prop_assert_eq!(codec::decode_vertex(VertexId(id), &enc), Some(v));
    }

    #[test]
    fn edge_key_roundtrip(src in any::<u64>(), dst in any::<u64>(), label in "[a-zA-Z]{1,32}") {
        let k = codec::edge_key(VertexId(src), &label, VertexId(dst));
        prop_assert_eq!(
            codec::decode_edge_key(&k),
            Some((VertexId(src), label.clone(), VertexId(dst)))
        );
        prop_assert!(k.starts_with(&codec::edge_label_prefix(VertexId(src), &label)));
    }

    #[test]
    fn edge_keys_with_same_label_cluster(
        src in any::<u64>(),
        labels in proptest::collection::vec("[a-z]{1,8}", 2..6),
        dsts in proptest::collection::vec(any::<u64>(), 2..20),
    ) {
        // Build keys for every (label, dst) combination, sort them, and
        // verify each label's keys form one contiguous block.
        let mut keys = Vec::new();
        for l in &labels {
            for d in &dsts {
                keys.push(codec::edge_key(VertexId(src), l, VertexId(*d)));
            }
        }
        keys.sort();
        keys.dedup();
        let seq: Vec<String> = keys.iter().map(|k| codec::decode_edge_key(k).unwrap().1).collect();
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<&String> = None;
        for l in &seq {
            if prev != Some(l) {
                prop_assert!(seen.insert(l.clone()), "label {l} appeared in two separate blocks");
            }
            prev = Some(l);
        }
    }

    #[test]
    fn partitioner_total_and_stable(n in 1usize..64, vids in proptest::collection::vec(any::<u64>(), 1..200)) {
        let p = EdgeCutPartitioner::new(n);
        for &v in &vids {
            let o = p.owner(VertexId(v));
            prop_assert!(o < n);
            prop_assert_eq!(o, p.owner(VertexId(v)));
        }
        let buckets = p.group_by_owner(vids.iter().map(|&v| VertexId(v)));
        prop_assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), vids.len());
    }
}
