//! GTravel property filters.
//!
//! §III of the paper: property filters (`va()` on vertices, `ea()` on
//! edges) "take property key, type of filter, and comparison property
//! values as arguments"; filter types are `EQ`, `IN`, and `RANGE`, and
//! "multiple property filters can be applied in one step … using the AND
//! operation" (OR is composed by the client issuing several traversals).

use crate::model::Props;
use crate::value::PropValue;
use serde::{Deserialize, Serialize};

/// Comparison applied to one property.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cond {
    /// Property must equal the value exactly (same variant, same payload).
    Eq(PropValue),
    /// Property must equal one of the listed values.
    In(Vec<PropValue>),
    /// Property must satisfy `lo <= p <= hi` (inclusive on both ends, the
    /// natural reading of the paper's `[t_s, t_e]` time-range example).
    /// Values of a different variant than `lo`/`hi` never match.
    Range(PropValue, PropValue),
}

impl Cond {
    /// Whether a single value satisfies this condition.
    pub fn test(&self, v: &PropValue) -> bool {
        match self {
            Cond::Eq(want) => v == want,
            Cond::In(set) => set.iter().any(|w| w == v),
            Cond::Range(lo, hi) => {
                matches!(
                    v.partial_cmp_same_type(lo),
                    Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
                ) && matches!(
                    v.partial_cmp_same_type(hi),
                    Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
                )
            }
        }
    }
}

/// One property filter: a key plus its condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropFilter {
    /// Property key to test.
    pub key: String,
    /// Condition the value must satisfy.
    pub cond: Cond,
}

impl PropFilter {
    /// `key == value`
    pub fn eq(key: impl Into<String>, value: impl Into<PropValue>) -> Self {
        PropFilter {
            key: key.into(),
            cond: Cond::Eq(value.into()),
        }
    }

    /// `key ∈ values`
    pub fn is_in(key: impl Into<String>, values: Vec<PropValue>) -> Self {
        PropFilter {
            key: key.into(),
            cond: Cond::In(values),
        }
    }

    /// `lo <= key <= hi`
    pub fn range(
        key: impl Into<String>,
        lo: impl Into<PropValue>,
        hi: impl Into<PropValue>,
    ) -> Self {
        PropFilter {
            key: key.into(),
            cond: Cond::Range(lo.into(), hi.into()),
        }
    }

    /// Whether `props` satisfies this filter. A missing property never
    /// matches (the entity simply lacks the attribute being tested).
    pub fn matches(&self, props: &Props) -> bool {
        match props.get(&self.key) {
            Some(v) => self.cond.test(v),
            None => false,
        }
    }
}

/// AND-composition of property filters (the only composition the language
/// offers within a step).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FilterSet(pub Vec<PropFilter>);

impl FilterSet {
    /// The always-true filter set.
    pub fn none() -> Self {
        Self::default()
    }

    /// Append one more filter (AND).
    pub fn and(mut self, f: PropFilter) -> Self {
        self.0.push(f);
        self
    }

    /// Whether every filter matches `props`.
    pub fn matches(&self, props: &Props) -> bool {
        self.0.iter().all(|f| f.matches(props))
    }

    /// True when no filters are present (everything matches).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of filters.
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl From<Vec<PropFilter>> for FilterSet {
    fn from(v: Vec<PropFilter>) -> Self {
        FilterSet(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> Props {
        Props::new()
            .with("type", "text")
            .with("size", 1020i64)
            .with("ratio", 0.5f64)
    }

    #[test]
    fn eq_matches_exact_value() {
        assert!(PropFilter::eq("type", "text").matches(&props()));
        assert!(!PropFilter::eq("type", "binary").matches(&props()));
        // Cross-type equality never matches.
        assert!(!PropFilter::eq("size", "1020").matches(&props()));
    }

    #[test]
    fn missing_property_never_matches() {
        assert!(!PropFilter::eq("absent", 1i64).matches(&props()));
        assert!(!PropFilter::range("absent", 0i64, 10i64).matches(&props()));
    }

    #[test]
    fn in_matches_any_member() {
        let f = PropFilter::is_in("type", vec![PropValue::str("csv"), PropValue::str("text")]);
        assert!(f.matches(&props()));
        let f = PropFilter::is_in("type", vec![PropValue::str("csv")]);
        assert!(!f.matches(&props()));
        let f = PropFilter::is_in("type", vec![]);
        assert!(!f.matches(&props()));
    }

    #[test]
    fn range_is_inclusive_both_ends() {
        assert!(PropFilter::range("size", 1020i64, 2000i64).matches(&props()));
        assert!(PropFilter::range("size", 0i64, 1020i64).matches(&props()));
        assert!(!PropFilter::range("size", 1021i64, 2000i64).matches(&props()));
        assert!(!PropFilter::range("size", 0i64, 1019i64).matches(&props()));
    }

    #[test]
    fn range_rejects_cross_type() {
        assert!(!PropFilter::range("type", 0i64, 10i64).matches(&props()));
    }

    #[test]
    fn float_range() {
        assert!(PropFilter::range("ratio", 0.0f64, 1.0f64).matches(&props()));
        assert!(!PropFilter::range("ratio", 0.6f64, 1.0f64).matches(&props()));
    }

    #[test]
    fn filter_set_is_conjunction() {
        let fs = FilterSet::none()
            .and(PropFilter::eq("type", "text"))
            .and(PropFilter::range("size", 0i64, 2000i64));
        assert!(fs.matches(&props()));
        let fs = fs.and(PropFilter::eq("absent", 1i64));
        assert!(!fs.matches(&props()));
        assert_eq!(fs.len(), 3);
    }

    #[test]
    fn empty_filter_set_matches_everything() {
        assert!(FilterSet::none().matches(&Props::new()));
        assert!(FilterSet::none().is_empty());
    }
}
