//! Core graph entities: vertex ids, property maps, vertices and edges.

use crate::value::PropValue;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Globally unique vertex identifier.
///
/// Ids are dense `u64`s assigned by the generators / ingest pipeline; the
/// edge-cut partitioner hashes them to place vertices on servers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VertexId(pub u64);

impl VertexId {
    /// Big-endian byte encoding, used in storage keys so that numeric
    /// order equals lexicographic order.
    pub fn to_be_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Inverse of [`VertexId::to_be_bytes`].
    pub fn from_be_bytes(b: [u8; 8]) -> Self {
        VertexId(u64::from_be_bytes(b))
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

/// Ordered attribute map attached to a vertex or edge.
///
/// A `BTreeMap` keeps encodings deterministic, which the storage codec and
/// the test oracles rely on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Props(pub BTreeMap<String, PropValue>);

impl Props {
    /// Empty property map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<PropValue>) -> Self {
        self.0.insert(key.into(), value.into());
        self
    }

    /// Insert or overwrite a property.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<PropValue>) {
        self.0.insert(key.into(), value.into());
    }

    /// Look up a property.
    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.0.get(key)
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no properties are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &PropValue)> {
        self.0.iter()
    }
}

impl<K: Into<String>, V: Into<PropValue>> FromIterator<(K, V)> for Props {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Props(
            iter.into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }
}

/// A typed vertex with attributes.
///
/// The vertex *type* ("User", "Execution", "File", …) is first-class: the
/// paper stores different vertex types in separate namespaces and the
/// GTravel `v()` selector can enumerate a type (§III, §VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vertex {
    /// Unique id.
    pub id: VertexId,
    /// Entity type, e.g. `"User"`.
    pub vtype: String,
    /// Attribute map.
    pub props: Props,
}

impl Vertex {
    /// Convenience constructor.
    pub fn new(id: impl Into<VertexId>, vtype: impl Into<String>, props: Props) -> Self {
        Vertex {
            id: id.into(),
            vtype: vtype.into(),
            props,
        }
    }
}

/// A directed, labeled edge with attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Edge label ("run", "read", "write", …). Traversals select edges by
    /// label, and the storage layout clusters a vertex's edges by label.
    pub label: String,
    /// Destination vertex.
    pub dst: VertexId,
    /// Attribute map.
    pub props: Props,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(
        src: impl Into<VertexId>,
        label: impl Into<String>,
        dst: impl Into<VertexId>,
        props: Props,
    ) -> Self {
        Edge {
            src: src.into(),
            label: label.into(),
            dst: dst.into(),
            props,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_bytes_roundtrip_and_order() {
        let a = VertexId(3);
        let b = VertexId(300);
        assert_eq!(VertexId::from_be_bytes(a.to_be_bytes()), a);
        // Byte order matches numeric order.
        assert!(a.to_be_bytes() < b.to_be_bytes());
        assert_eq!(a.to_string(), "v3");
    }

    #[test]
    fn props_builder_and_lookup() {
        let p = Props::new().with("name", "sam").with("uid", 42i64);
        assert_eq!(p.get("name"), Some(&PropValue::str("sam")));
        assert_eq!(p.get("uid"), Some(&PropValue::Int(42)));
        assert_eq!(p.get("absent"), None);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn props_from_iterator_deterministic_order() {
        let p: Props = vec![("z", 1i64), ("a", 2i64)].into_iter().collect();
        let keys: Vec<&String> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "z"]);
    }

    #[test]
    fn vertex_and_edge_construction() {
        let v = Vertex::new(1u64, "User", Props::new().with("name", "john"));
        assert_eq!(v.vtype, "User");
        let e = Edge::new(1u64, "run", 2u64, Props::new().with("ts", 100i64));
        assert_eq!(e.label, "run");
        assert_eq!(e.dst, VertexId(2));
    }
}
