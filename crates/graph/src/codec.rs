//! Compact binary codec for properties, vertices, and storage keys.
//!
//! Hand-rolled (rather than serde-based) so the on-disk format is stable,
//! inspectable, and byte-order aware: storage keys use big-endian vertex
//! ids so lexicographic key order equals numeric order, which is what
//! makes the §VI layout's "edges of one vertex stored together by type"
//! a sequential scan.

use crate::model::{Props, Vertex, VertexId};
use crate::value::PropValue;
use bytes::Bytes;

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Append one value to `out`.
fn encode_value(v: &PropValue, out: &mut Vec<u8>) {
    match v {
        PropValue::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        PropValue::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        PropValue::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        PropValue::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
    }
}

fn decode_value(data: &[u8], pos: &mut usize) -> Option<PropValue> {
    let tag = *data.get(*pos)?;
    *pos += 1;
    match tag {
        TAG_INT => {
            let b = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(PropValue::Int(i64::from_le_bytes(b.try_into().ok()?)))
        }
        TAG_FLOAT => {
            let b = data.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(PropValue::Float(f64::from_le_bytes(b.try_into().ok()?)))
        }
        TAG_STR => {
            let b = data.get(*pos..*pos + 4)?;
            let n = u32::from_le_bytes(b.try_into().ok()?) as usize;
            *pos += 4;
            let s = data.get(*pos..*pos + n)?;
            *pos += n;
            Some(PropValue::Str(String::from_utf8(s.to_vec()).ok()?))
        }
        TAG_BOOL => {
            let b = *data.get(*pos)?;
            *pos += 1;
            Some(PropValue::Bool(b != 0))
        }
        _ => None,
    }
}

/// Encode a property map.
pub fn encode_props(props: &Props) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + props.len() * 24);
    out.extend_from_slice(&(props.len() as u16).to_le_bytes());
    for (k, v) in props.iter() {
        out.extend_from_slice(&(k.len() as u16).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        encode_value(v, &mut out);
    }
    out
}

/// Decode a property map (inverse of [`encode_props`]).
pub fn decode_props(data: &[u8]) -> Option<Props> {
    let mut pos = 0usize;
    let n = u16::from_le_bytes(data.get(0..2)?.try_into().ok()?) as usize;
    pos += 2;
    let mut props = Props::new();
    for _ in 0..n {
        let klen = u16::from_le_bytes(data.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let key = String::from_utf8(data.get(pos..pos + klen)?.to_vec()).ok()?;
        pos += klen;
        let val = decode_value(data, &mut pos)?;
        props.0.insert(key, val);
    }
    if pos != data.len() {
        return None;
    }
    Some(props)
}

/// Encode a vertex record (type + props) for the vertex namespace.
pub fn encode_vertex(v: &Vertex) -> Bytes {
    let props = encode_props(&v.props);
    let mut out = Vec::with_capacity(2 + v.vtype.len() + props.len());
    out.extend_from_slice(&(v.vtype.len() as u16).to_le_bytes());
    out.extend_from_slice(v.vtype.as_bytes());
    out.extend_from_slice(&props);
    Bytes::from(out)
}

/// Decode a vertex record given its id.
pub fn decode_vertex(id: VertexId, data: &[u8]) -> Option<Vertex> {
    let tlen = u16::from_le_bytes(data.get(0..2)?.try_into().ok()?) as usize;
    let vtype = String::from_utf8(data.get(2..2 + tlen)?.to_vec()).ok()?;
    let props = decode_props(data.get(2 + tlen..)?)?;
    Some(Vertex { id, vtype, props })
}

/// Storage key of a vertex in the vertex namespace: big-endian id.
pub fn vertex_key(id: VertexId) -> [u8; 8] {
    id.to_be_bytes()
}

/// Storage key of an edge: `src(8) | label_len(1) | label | dst(8)`.
///
/// All edges of a vertex share the `src` prefix; all edges with a given
/// label share the longer `src|label` prefix, so a typed adjacency scan is
/// one sequential prefix scan (the §VI layout optimization).
pub fn edge_key(src: VertexId, label: &str, dst: VertexId) -> Vec<u8> {
    debug_assert!(label.len() <= u8::MAX as usize, "edge label too long");
    let mut out = Vec::with_capacity(17 + label.len());
    out.extend_from_slice(&src.to_be_bytes());
    out.push(label.len() as u8);
    out.extend_from_slice(label.as_bytes());
    out.extend_from_slice(&dst.to_be_bytes());
    out
}

/// Prefix covering all edges of `src` with `label`.
pub fn edge_label_prefix(src: VertexId, label: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + label.len());
    out.extend_from_slice(&src.to_be_bytes());
    out.push(label.len() as u8);
    out.extend_from_slice(label.as_bytes());
    out
}

/// Prefix covering every edge of `src` regardless of label.
pub fn edge_src_prefix(src: VertexId) -> [u8; 8] {
    src.to_be_bytes()
}

/// Decode `(src, label, dst)` from an edge key.
pub fn decode_edge_key(key: &[u8]) -> Option<(VertexId, String, VertexId)> {
    if key.len() < 17 {
        return None;
    }
    let src = VertexId::from_be_bytes(key[0..8].try_into().ok()?);
    let llen = key[8] as usize;
    if key.len() != 9 + llen + 8 {
        return None;
    }
    let label = String::from_utf8(key[9..9 + llen].to_vec()).ok()?;
    let dst = VertexId::from_be_bytes(key[9 + llen..].try_into().ok()?);
    Some((src, label, dst))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_props() -> Props {
        Props::new()
            .with("name", "dset-1")
            .with("size", 1020i64)
            .with("ratio", 0.25f64)
            .with("shared", true)
    }

    #[test]
    fn props_roundtrip() {
        let p = sample_props();
        let enc = encode_props(&p);
        assert_eq!(decode_props(&enc), Some(p));
    }

    #[test]
    fn empty_props_roundtrip() {
        let p = Props::new();
        assert_eq!(decode_props(&encode_props(&p)), Some(p));
    }

    #[test]
    fn props_reject_trailing_garbage() {
        let mut enc = encode_props(&sample_props());
        enc.push(0xFF);
        assert_eq!(decode_props(&enc), None);
    }

    #[test]
    fn props_reject_truncation() {
        let enc = encode_props(&sample_props());
        for cut in 1..enc.len() {
            assert_eq!(decode_props(&enc[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn vertex_roundtrip() {
        let v = Vertex::new(77u64, "File", sample_props());
        let enc = encode_vertex(&v);
        assert_eq!(decode_vertex(VertexId(77), &enc), Some(v));
    }

    #[test]
    fn edge_key_roundtrip_and_prefixes() {
        let k = edge_key(VertexId(5), "read", VertexId(9));
        assert_eq!(
            decode_edge_key(&k),
            Some((VertexId(5), "read".to_string(), VertexId(9)))
        );
        assert!(k.starts_with(&edge_label_prefix(VertexId(5), "read")));
        assert!(k.starts_with(&edge_src_prefix(VertexId(5))));
        assert!(!k.starts_with(&edge_label_prefix(VertexId(5), "run")));
    }

    #[test]
    fn edge_keys_cluster_by_label() {
        // Keys for the same (src, label) sort adjacently regardless of dst.
        let mut keys = [
            edge_key(VertexId(1), "run", VertexId(50)),
            edge_key(VertexId(1), "read", VertexId(2)),
            edge_key(VertexId(1), "read", VertexId(100)),
            edge_key(VertexId(1), "run", VertexId(3)),
        ];
        keys.sort();
        let labels: Vec<String> = keys.iter().map(|k| decode_edge_key(k).unwrap().1).collect();
        // Keys sort by (label_len, label, dst), so equal labels are always
        // contiguous — that contiguity is what makes typed scans sequential.
        assert_eq!(labels, ["run", "run", "read", "read"]);
        let dsts: Vec<u64> = keys
            .iter()
            .map(|k| decode_edge_key(k).unwrap().2 .0)
            .collect();
        assert_eq!(
            dsts,
            [3, 50, 2, 100],
            "within a label, dst order is ascending"
        );
    }

    #[test]
    fn decode_edge_key_rejects_malformed() {
        assert_eq!(decode_edge_key(&[]), None);
        assert_eq!(decode_edge_key(&[0u8; 16]), None);
        let mut k = edge_key(VertexId(1), "x", VertexId(2));
        k.pop();
        assert_eq!(decode_edge_key(&k), None);
    }
}
