//! Reference in-memory property graph.
//!
//! Used by the synthetic generators (RMAT, Darshan) as the construction
//! format, by the bulk loader to populate server partitions, and by the
//! single-threaded traversal oracle that the distributed engines are
//! checked against in the equivalence tests.

use crate::model::{Edge, Props, Vertex, VertexId};
use std::collections::{BTreeMap, HashMap};

/// A whole property graph held in memory.
#[derive(Debug, Clone, Default)]
pub struct InMemoryGraph {
    vertices: HashMap<VertexId, Vertex>,
    /// src → label → [(dst, edge props)]
    adjacency: HashMap<VertexId, BTreeMap<String, Vec<(VertexId, Props)>>>,
    n_edges: usize,
}

impl InMemoryGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a vertex.
    pub fn add_vertex(&mut self, v: Vertex) {
        self.vertices.insert(v.id, v);
    }

    /// Insert an edge. Parallel edges with the same `(src, label, dst)`
    /// are allowed in memory but collapse to one record in storage (the
    /// key is unique), so generators avoid emitting duplicates.
    pub fn add_edge(&mut self, e: Edge) {
        self.adjacency
            .entry(e.src)
            .or_default()
            .entry(e.label)
            .or_default()
            .push((e.dst, e.props));
        self.n_edges += 1;
    }

    /// Look up a vertex.
    pub fn vertex(&self, id: VertexId) -> Option<&Vertex> {
        self.vertices.get(&id)
    }

    /// Outgoing edges of `src` with `label` (empty slice when none).
    pub fn edges_from(&self, src: VertexId, label: &str) -> &[(VertexId, Props)] {
        self.adjacency
            .get(&src)
            .and_then(|m| m.get(label))
            .map_or(&[], |v| v.as_slice())
    }

    /// All outgoing edges of `src`, grouped by label in label order.
    pub fn all_edges_from(
        &self,
        src: VertexId,
    ) -> impl Iterator<Item = (&String, &Vec<(VertexId, Props)>)> {
        self.adjacency.get(&src).into_iter().flat_map(|m| m.iter())
    }

    /// Ids of every vertex with the given type, in ascending id order.
    pub fn vertices_of_type(&self, vtype: &str) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = self
            .vertices
            .values()
            .filter(|v| v.vtype == vtype)
            .map(|v| v.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Iterate all vertices (arbitrary order).
    pub fn iter_vertices(&self) -> impl Iterator<Item = &Vertex> {
        self.vertices.values()
    }

    /// Iterate all edges (arbitrary order) as materialized [`Edge`]s.
    pub fn iter_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency.iter().flat_map(|(src, by_label)| {
            by_label.iter().flat_map(move |(label, dsts)| {
                dsts.iter().map(move |(dst, props)| Edge {
                    src: *src,
                    label: label.clone(),
                    dst: *dst,
                    props: props.clone(),
                })
            })
        })
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Out-degree of `src` across all labels.
    pub fn out_degree(&self, src: VertexId) -> usize {
        self.adjacency
            .get(&src)
            .map_or(0, |m| m.values().map(Vec::len).sum())
    }

    /// Distinct vertex types present, sorted.
    pub fn vertex_types(&self) -> Vec<String> {
        let mut set: Vec<String> = self
            .vertices
            .values()
            .map(|v| v.vtype.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InMemoryGraph {
        let mut g = InMemoryGraph::new();
        g.add_vertex(Vertex::new(1u64, "User", Props::new().with("name", "sam")));
        g.add_vertex(Vertex::new(2u64, "Execution", Props::new()));
        g.add_vertex(Vertex::new(3u64, "File", Props::new().with("type", "text")));
        g.add_edge(Edge::new(1u64, "run", 2u64, Props::new().with("ts", 10i64)));
        g.add_edge(Edge::new(2u64, "read", 3u64, Props::new()));
        g.add_edge(Edge::new(2u64, "write", 3u64, Props::new()));
        g
    }

    #[test]
    fn vertex_lookup_and_counts() {
        let g = sample();
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.vertex(VertexId(1)).unwrap().vtype, "User");
        assert!(g.vertex(VertexId(99)).is_none());
    }

    #[test]
    fn typed_adjacency() {
        let g = sample();
        let run = g.edges_from(VertexId(1), "run");
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].0, VertexId(2));
        assert!(g.edges_from(VertexId(1), "read").is_empty());
        assert!(g.edges_from(VertexId(99), "run").is_empty());
        assert_eq!(g.out_degree(VertexId(2)), 2);
    }

    #[test]
    fn vertices_of_type_sorted() {
        let mut g = sample();
        g.add_vertex(Vertex::new(0u64, "File", Props::new()));
        assert_eq!(g.vertices_of_type("File"), vec![VertexId(0), VertexId(3)]);
        assert!(g.vertices_of_type("Nothing").is_empty());
    }

    #[test]
    fn edge_iteration_materializes_everything() {
        let g = sample();
        let mut edges: Vec<(u64, String, u64)> = g
            .iter_edges()
            .map(|e| (e.src.0, e.label.clone(), e.dst.0))
            .collect();
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (1, "run".to_string(), 2),
                (2, "read".to_string(), 3),
                (2, "write".to_string(), 3)
            ]
        );
    }

    #[test]
    fn vertex_types_enumerated() {
        let g = sample();
        assert_eq!(g.vertex_types(), vec!["Execution", "File", "User"]);
    }
}
