//! Typed property values.
//!
//! Property graphs in the paper attach "arbitrary user-defined attributes"
//! to vertices and edges — file sizes, timestamps, names, annotations.
//! [`PropValue`] is the closed set of value types those attributes take.
//! Values of the same variant are totally ordered so the `RANGE` filter of
//! the GTravel language is well defined; comparisons across variants are
//! always `None` (a RANGE filter over mismatched types simply rejects).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One attribute value on a vertex or edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropValue {
    /// 64-bit signed integer (timestamps, sizes, counters).
    Int(i64),
    /// IEEE-754 double (measurements). NaN is normalized to 0.0 on
    /// construction so equality and ordering stay total in practice.
    Float(f64),
    /// UTF-8 string (names, annotations, types).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl PropValue {
    /// Construct a float value, normalizing NaN to `0.0`.
    pub fn float(f: f64) -> Self {
        PropValue::Float(if f.is_nan() { 0.0 } else { f })
    }

    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Self {
        PropValue::Str(s.into())
    }

    /// Compare two values of the same variant; `None` across variants.
    pub fn partial_cmp_same_type(&self, other: &PropValue) -> Option<Ordering> {
        match (self, other) {
            (PropValue::Int(a), PropValue::Int(b)) => Some(a.cmp(b)),
            (PropValue::Float(a), PropValue::Float(b)) => a.partial_cmp(b),
            (PropValue::Str(a), PropValue::Str(b)) => Some(a.cmp(b)),
            (PropValue::Bool(a), PropValue::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Short tag used in diagnostics and the wire codec.
    pub fn type_name(&self) -> &'static str {
        match self {
            PropValue::Int(_) => "int",
            PropValue::Float(_) => "float",
            PropValue::Str(_) => "str",
            PropValue::Bool(_) => "bool",
        }
    }

    /// The integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x}"),
            PropValue::Str(s) => write!(f, "{s:?}"),
            PropValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<i32> for PropValue {
    fn from(v: i32) -> Self {
        PropValue::Int(v as i64)
    }
}
impl From<u32> for PropValue {
    fn from(v: u32) -> Self {
        PropValue::Int(v as i64)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::float(v)
    }
}
impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Str(v.to_string())
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Str(v)
    }
}
impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_type_ordering() {
        assert_eq!(
            PropValue::Int(1).partial_cmp_same_type(&PropValue::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            PropValue::str("b").partial_cmp_same_type(&PropValue::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(
            PropValue::Bool(true).partial_cmp_same_type(&PropValue::Bool(true)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn cross_type_is_incomparable() {
        assert_eq!(
            PropValue::Int(1).partial_cmp_same_type(&PropValue::str("1")),
            None
        );
        assert_eq!(
            PropValue::Bool(true).partial_cmp_same_type(&PropValue::Int(1)),
            None
        );
    }

    #[test]
    fn nan_normalized() {
        assert_eq!(PropValue::float(f64::NAN), PropValue::Float(0.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(PropValue::from(5i32), PropValue::Int(5));
        assert_eq!(PropValue::from("x"), PropValue::str("x"));
        assert_eq!(PropValue::from(true), PropValue::Bool(true));
        assert_eq!(PropValue::Int(3).as_int(), Some(3));
        assert_eq!(PropValue::str("y").as_str(), Some("y"));
        assert_eq!(PropValue::Int(3).as_str(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PropValue::Int(7).to_string(), "7");
        assert_eq!(PropValue::str("a").to_string(), "\"a\"");
    }
}
