#![warn(missing_docs)]

//! # gt-graph — property graph model, storage layout, and partitioning
//!
//! The data model of the GraphTrek reproduction: directed property graphs
//! whose vertices and edges carry arbitrary typed attributes (Fig. 1 of the
//! paper — users, executions, and files connected by `run`/`exe`/`read`/
//! `write` edges with per-entity annotations).
//!
//! The crate provides three layers:
//!
//! * **Model** ([`model`], [`value`], [`filter`]) — [`VertexId`],
//!   [`Vertex`], [`Edge`], typed [`PropValue`]s, and the paper's property
//!   filters (`EQ` / `IN` / `RANGE`, AND-composed; §III).
//! * **Storage** ([`storage`], [`codec`]) — [`GraphPartition`]: one
//!   server's shard persisted in a [`gt_kvstore::Store`] using the layout
//!   of §VI: a vertex's attributes and its edges are *adjacent, sorted
//!   key-value pairs* (edge keys share the `src|label` prefix so iterating
//!   one edge type is a sequential scan), and vertex types get separate
//!   namespaces via per-type membership indexes.
//! * **Partitioning** ([`partition`]) — the edge-cut hash partitioner the
//!   paper evaluates ("we focus on the edge-cut partition, as most graph
//!   databases do", §VI), placing each vertex (and its out-edges) on
//!   `hash(vid) mod n_servers`.
//!
//! [`InMemoryGraph`] is a reference in-memory representation used by the
//! synthetic generators and by the single-threaded traversal oracle that
//! the engine equivalence tests compare against.

pub mod codec;
pub mod filter;
pub mod memory;
pub mod model;
pub mod partition;
pub mod storage;
pub mod value;

pub use filter::{Cond, FilterSet, PropFilter};
pub use memory::InMemoryGraph;
pub use model::{Edge, Props, Vertex, VertexId};
pub use partition::{splitmix64, EdgeCutPartitioner, ServerId};
pub use storage::{GraphPartition, RawTriple, CREATED_SEQ_PROP};
pub use value::PropValue;
