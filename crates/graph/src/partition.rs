//! Edge-cut graph partitioning.
//!
//! The paper evaluates the common edge-cut strategy, "which places the
//! vertices across different servers by their hash values" (§VI); a
//! vertex's out-edges live with the vertex. The hash is splitmix64 so
//! placement is uniform even for dense sequential ids, and deterministic
//! across runs so experiments are repeatable.

use crate::model::VertexId;
use serde::{Deserialize, Serialize};

/// Index of a backend server within a cluster, in `0..n_servers`.
pub type ServerId = usize;

/// Stateless hash partitioner mapping vertices to servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCutPartitioner {
    /// Number of backend servers in the cluster.
    pub n_servers: usize,
}

/// splitmix64 finalizer — cheap, high-quality mixing of sequential ids.
/// Public so higher layers (placement maps) can reproduce the exact same
/// vertex→partition assignment the seed cluster used.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl EdgeCutPartitioner {
    /// Create a partitioner over `n_servers` servers (must be ≥ 1).
    pub fn new(n_servers: usize) -> Self {
        assert!(n_servers >= 1, "cluster needs at least one server");
        EdgeCutPartitioner { n_servers }
    }

    /// The server owning `vid` (and all of its out-edges).
    pub fn owner(&self, vid: VertexId) -> ServerId {
        (splitmix64(vid.0) % self.n_servers as u64) as ServerId
    }

    /// Group vertex ids by owning server; returns `n_servers` buckets.
    pub fn group_by_owner(&self, vids: impl IntoIterator<Item = VertexId>) -> Vec<Vec<VertexId>> {
        let mut buckets = vec![Vec::new(); self.n_servers];
        for vid in vids {
            buckets[self.owner(vid)].push(vid);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_in_range() {
        let p = EdgeCutPartitioner::new(7);
        for i in 0..1000u64 {
            let o = p.owner(VertexId(i));
            assert!(o < 7);
            assert_eq!(o, p.owner(VertexId(i)), "must be deterministic");
        }
    }

    #[test]
    fn single_server_owns_everything() {
        let p = EdgeCutPartitioner::new(1);
        assert_eq!(p.owner(VertexId(12345)), 0);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let p = EdgeCutPartitioner::new(8);
        let mut counts = [0usize; 8];
        for i in 0..80_000u64 {
            counts[p.owner(VertexId(i))] += 1;
        }
        for &c in &counts {
            // Expect 10k ± 10%.
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn group_by_owner_covers_all_inputs() {
        let p = EdgeCutPartitioner::new(4);
        let vids: Vec<VertexId> = (0..100u64).map(VertexId).collect();
        let buckets = p.group_by_owner(vids.iter().copied());
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 100);
        for (s, bucket) in buckets.iter().enumerate() {
            for vid in bucket {
                assert_eq!(p.owner(*vid), s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        EdgeCutPartitioner::new(0);
    }
}
