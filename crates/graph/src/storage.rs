//! One server's persisted graph shard.
//!
//! [`GraphPartition`] realizes the storage layout of §VI over a
//! [`gt_kvstore::Store`]:
//!
//! * namespace `verts` — key `be64(vid)` → `(vtype, props)`; a vertex's
//!   attributes are one sequential KV pair.
//! * namespace `edges` — key `be64(src) | label | be64(dst)` → edge props;
//!   "the same type of edges are stored together", so iterating the
//!   `read` edges of a vertex is a single prefix scan.
//! * namespace `vt-<type>` — membership index per vertex type
//!   ("different types of vertices are mapped into key-value pairs in
//!   separate namespaces"), serving typed entry-point selection
//!   (`GTravel.v().va('type', EQ, 'Execution')`).

use crate::codec;
use crate::memory::InMemoryGraph;
use crate::model::{Edge, Props, Vertex, VertexId};
use crate::partition::{EdgeCutPartitioner, ServerId};
use crate::value::PropValue;
use gt_kvstore::{Namespace, ReadView, Result, Store, WriteBatch};
use std::sync::Arc;

/// Number of operations grouped per bulk-load batch.
const LOAD_BATCH: usize = 1024;

/// Reserved property stamped on vertices and edges at ingest when
/// snapshot versioning is on: the sequence number of the write that
/// *created* the entity (preserved across later upserts). GTravel's
/// `created_after(seq)` predicate filters on it.
pub const CREATED_SEQ_PROP: &str = "__created_seq";

/// One exported `(namespace, key, value)` row — the wire form of a shard
/// migration snapshot ([`GraphPartition::export_where`] /
/// [`GraphPartition::import_raw`]). `None` is a tombstone *version*:
/// with snapshot versioning on, keys are raw stamped internal keys and a
/// migration must carry deletes so they neither resurrect older values
/// on the target nor disappear for pinned mid-travel views.
pub type RawTriple = (String, Vec<u8>, Option<Vec<u8>>);

/// One backend server's shard of the property graph.
pub struct GraphPartition {
    store: Arc<Store>,
    verts: Namespace,
    edges: Namespace,
}

impl std::fmt::Debug for GraphPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphPartition")
            .field("dir", self.store.dir())
            .finish_non_exhaustive()
    }
}

impl GraphPartition {
    /// Open (or create) a partition inside `store`.
    pub fn open(store: Arc<Store>) -> Result<Self> {
        let verts = store.namespace("verts")?;
        let edges = store.namespace("edges")?;
        Ok(GraphPartition {
            store,
            verts,
            edges,
        })
    }

    fn type_ns(&self, vtype: &str) -> Result<Namespace> {
        // Vertex types become namespace directory names; non-alphanumeric
        // bytes are escaped to keep any type name valid.
        let mut name = String::with_capacity(3 + vtype.len());
        name.push_str("vt-");
        for b in vtype.bytes() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' {
                name.push(b as char);
            } else {
                name.push_str(&format!("_{b:02x}"));
            }
        }
        self.store.namespace(&name)
    }

    /// Insert or replace a vertex (attributes + type-index entry). With
    /// snapshot versioning on, the write is stamped at a freshly
    /// allocated sequence number.
    pub fn put_vertex(&self, v: &Vertex) -> Result<()> {
        match self.store.alloc_seq() {
            Some(seq) => self.put_vertex_at(v, seq),
            None => {
                self.verts
                    .put(codec::vertex_key(v.id).to_vec(), codec::encode_vertex(v))?;
                self.type_ns(&v.vtype)?
                    .put(codec::vertex_key(v.id).to_vec(), bytes::Bytes::new())?;
                Ok(())
            }
        }
    }

    /// Insert or replace a vertex, stamping every touched namespace at
    /// `seq` (one logical operation = one version across `verts` and the
    /// type index). Stamps [`CREATED_SEQ_PROP`] into the record,
    /// preserving the stamp of an existing version on upsert.
    pub fn put_vertex_at(&self, v: &Vertex, seq: u64) -> Result<()> {
        let mut v2 = v.clone();
        if v2.props.get(CREATED_SEQ_PROP).is_none() {
            let created = self
                .get_vertex_at(v.id, ReadView::LATEST)?
                .and_then(|old| old.props.get(CREATED_SEQ_PROP).cloned())
                .unwrap_or(PropValue::Int(seq as i64));
            v2.props.set(CREATED_SEQ_PROP, created);
        }
        let mut vb = WriteBatch::with_capacity(1);
        vb.put(codec::vertex_key(v2.id).to_vec(), codec::encode_vertex(&v2));
        self.verts.write_batch_at(vb, seq)?;
        let mut tb = WriteBatch::with_capacity(1);
        tb.put(codec::vertex_key(v2.id).to_vec(), bytes::Bytes::new());
        self.type_ns(&v2.vtype)?.write_batch_at(tb, seq)?;
        Ok(())
    }

    /// Insert or replace an edge (stamped when versioning is on).
    pub fn put_edge(&self, e: &Edge) -> Result<()> {
        match self.store.alloc_seq() {
            Some(seq) => self.put_edge_at(e, seq),
            None => self.edges.put(
                codec::edge_key(e.src, &e.label, e.dst),
                bytes::Bytes::from(codec::encode_props(&e.props)),
            ),
        }
    }

    /// Insert or replace an edge at `seq`, stamping
    /// [`CREATED_SEQ_PROP`] (preserved across upserts like vertices).
    pub fn put_edge_at(&self, e: &Edge, seq: u64) -> Result<()> {
        let key = codec::edge_key(e.src, &e.label, e.dst);
        let mut props = e.props.clone();
        if props.get(CREATED_SEQ_PROP).is_none() {
            let created = self
                .edges
                .get_at(&key, ReadView::LATEST)?
                .and_then(|old| codec::decode_props(&old))
                .and_then(|p| p.get(CREATED_SEQ_PROP).cloned())
                .unwrap_or(PropValue::Int(seq as i64));
            props.set(CREATED_SEQ_PROP, created);
        }
        let mut b = WriteBatch::with_capacity(1);
        b.put(key, bytes::Bytes::from(codec::encode_props(&props)));
        self.edges.write_batch_at(b, seq)
    }

    /// Fetch a vertex with its attributes. This is the "vertex visit" the
    /// traversal engine accounts as one storage access.
    pub fn get_vertex(&self, id: VertexId) -> Result<Option<Vertex>> {
        if self.store.versioning_enabled() {
            return self.get_vertex_at(id, ReadView::LATEST);
        }
        Ok(self
            .verts
            .get(&codec::vertex_key(id))?
            .and_then(|data| codec::decode_vertex(id, &data)))
    }

    /// Fetch a vertex as visible at `view`.
    pub fn get_vertex_at(&self, id: VertexId, view: ReadView) -> Result<Option<Vertex>> {
        if !self.store.versioning_enabled() {
            return self.get_vertex(id);
        }
        Ok(self
            .verts
            .get_at(&codec::vertex_key(id), view)?
            .and_then(|data| codec::decode_vertex(id, &data)))
    }

    /// Outgoing edges of `src` carrying `label`, as `(dst, props)` pairs
    /// in destination order — one sequential prefix scan.
    pub fn edges_out(&self, src: VertexId, label: &str) -> Result<Vec<(VertexId, Props)>> {
        self.edges_out_at(src, label, ReadView::LATEST)
    }

    /// Outgoing edges of `src` with `label`, as visible at `view`.
    pub fn edges_out_at(
        &self,
        src: VertexId,
        label: &str,
        view: ReadView,
    ) -> Result<Vec<(VertexId, Props)>> {
        let prefix = codec::edge_label_prefix(src, label);
        let mut out = Vec::new();
        for (k, v) in self.scan_edges(&prefix, view)? {
            if let (Some((_, _, dst)), Some(props)) =
                (codec::decode_edge_key(&k), codec::decode_props(&v))
            {
                out.push((dst, props));
            }
        }
        Ok(out)
    }

    /// Every outgoing edge of `src`, all labels.
    pub fn all_edges_out(&self, src: VertexId) -> Result<Vec<(String, VertexId, Props)>> {
        self.all_edges_out_at(src, ReadView::LATEST)
    }

    /// Every outgoing edge of `src`, as visible at `view`.
    pub fn all_edges_out_at(
        &self,
        src: VertexId,
        view: ReadView,
    ) -> Result<Vec<(String, VertexId, Props)>> {
        let prefix = codec::edge_src_prefix(src);
        let mut out = Vec::new();
        for (k, v) in self.scan_edges(&prefix, view)? {
            if let (Some((_, label, dst)), Some(props)) =
                (codec::decode_edge_key(&k), codec::decode_props(&v))
            {
                out.push((label, dst, props));
            }
        }
        Ok(out)
    }

    fn scan_edges(&self, prefix: &[u8], view: ReadView) -> Result<Vec<(Vec<u8>, bytes::Bytes)>> {
        if self.store.versioning_enabled() {
            self.edges.scan_prefix_at(prefix, view)
        } else {
            self.edges.scan_prefix(prefix)
        }
    }

    /// Ids of every local vertex with the given type, ascending.
    pub fn vertices_of_type(&self, vtype: &str) -> Result<Vec<VertexId>> {
        self.vertices_of_type_at(vtype, ReadView::LATEST)
    }

    /// Ids of every local vertex with the given type visible at `view`.
    pub fn vertices_of_type_at(&self, vtype: &str, view: ReadView) -> Result<Vec<VertexId>> {
        let ns = self.type_ns(vtype)?;
        let entries = if self.store.versioning_enabled() {
            ns.scan_prefix_at(b"", view)?
        } else {
            ns.scan_prefix(b"")?
        };
        Ok(entries
            .into_iter()
            .filter_map(|(k, _)| k.as_slice().try_into().ok().map(VertexId::from_be_bytes))
            .collect())
    }

    /// Ids of every local vertex, ascending.
    pub fn all_vertex_ids(&self) -> Result<Vec<VertexId>> {
        self.all_vertex_ids_at(ReadView::LATEST)
    }

    /// Ids of every local vertex visible at `view`, ascending.
    pub fn all_vertex_ids_at(&self, view: ReadView) -> Result<Vec<VertexId>> {
        let entries = if self.store.versioning_enabled() {
            self.verts.scan_prefix_at(b"", view)?
        } else {
            self.verts.scan_prefix(b"")?
        };
        Ok(entries
            .into_iter()
            .filter_map(|(k, _)| k.as_slice().try_into().ok().map(VertexId::from_be_bytes))
            .collect())
    }

    /// Bulk-load vertices and edges with batched writes. With snapshot
    /// versioning on, the entire load is stamped at one freshly
    /// allocated sequence number — the initial graph is a single
    /// consistent version.
    pub fn load(
        &self,
        vertices: impl IntoIterator<Item = Vertex>,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<()> {
        let seq = self.store.alloc_seq();
        let write = |ns: &Namespace, batch: WriteBatch| match seq {
            Some(s) => ns.write_batch_at(batch, s),
            None => ns.write_batch(batch),
        };
        let mut vbatch = WriteBatch::with_capacity(LOAD_BATCH);
        for mut v in vertices {
            if let Some(s) = seq {
                if v.props.get(CREATED_SEQ_PROP).is_none() {
                    v.props.set(CREATED_SEQ_PROP, PropValue::Int(s as i64));
                }
            }
            vbatch.put(codec::vertex_key(v.id).to_vec(), codec::encode_vertex(&v));
            // The type index is written through its own namespace batch-of-one;
            // type namespaces are few, so per-op cost is negligible.
            let mut tb = WriteBatch::with_capacity(1);
            tb.put(codec::vertex_key(v.id).to_vec(), bytes::Bytes::new());
            write(&self.type_ns(&v.vtype)?, tb)?;
            if vbatch.len() >= LOAD_BATCH {
                write(&self.verts, std::mem::take(&mut vbatch))?;
            }
        }
        write(&self.verts, vbatch)?;
        let mut ebatch = WriteBatch::with_capacity(LOAD_BATCH);
        for mut e in edges {
            if let Some(s) = seq {
                if e.props.get(CREATED_SEQ_PROP).is_none() {
                    e.props.set(CREATED_SEQ_PROP, PropValue::Int(s as i64));
                }
            }
            ebatch.put(
                codec::edge_key(e.src, &e.label, e.dst),
                bytes::Bytes::from(codec::encode_props(&e.props)),
            );
            if ebatch.len() >= LOAD_BATCH {
                write(&self.edges, std::mem::take(&mut ebatch))?;
            }
        }
        write(&self.edges, ebatch)?;
        Ok(())
    }

    /// Flush and fully compact the partition, then drop caches — the
    /// paper's cold-start condition before each measured traversal.
    pub fn seal_cold(&self) -> Result<()> {
        self.store.flush_all()?;
        self.store.compact_all()?;
        self.store.drop_caches();
        Ok(())
    }

    /// Drop the shared block cache only.
    pub fn drop_caches(&self) {
        self.store.drop_caches();
    }

    /// Aggregate I/O statistics for this partition's store.
    pub fn io_stats(&self) -> gt_kvstore::iomodel::IoStatsSnapshot {
        self.store.io_stats()
    }

    /// The underlying store handle.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Export every live KV pair whose key's leading big-endian vertex id
    /// satisfies `keep`, across all namespaces (vertex attributes,
    /// out-edges keyed by source, type-index entries). The returned
    /// `(namespace, key, value)` triples are the wire form of a shard
    /// migration snapshot: every namespace's keys begin with the owning
    /// vertex id, so one predicate covers the whole layout.
    pub fn export_where(&self, keep: impl Fn(VertexId) -> bool) -> Result<Vec<RawTriple>> {
        let versioned = self.store.versioning_enabled();
        let mut out = Vec::new();
        for ns_name in self.store.list_namespaces() {
            let ns = self.store.namespace(&ns_name)?;
            if versioned {
                // Ship raw stamped internal keys — every version and
                // tombstone — so the target resolves any pinned view
                // exactly as the source would have.
                for (k, v) in ns.export_raw()? {
                    if let Some(vid) = vid_of_key(&k) {
                        if keep(vid) {
                            out.push((ns_name.clone(), k, v.map(|v| v.to_vec())));
                        }
                    }
                }
            } else {
                for (k, v) in ns.export_all()? {
                    if let Some(vid) = vid_of_key(&k) {
                        if keep(vid) {
                            out.push((ns_name.clone(), k, Some(v.to_vec())));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Apply raw exported triples. `bulk` routes through the
    /// segment-import fast path (snapshot phase of a migration); the
    /// normal write path otherwise (delta catch-up), so later mutations
    /// shadow the snapshot.
    pub fn import_raw(&self, triples: Vec<RawTriple>, bulk: bool) -> Result<()> {
        type NsPairs = Vec<(Vec<u8>, Option<bytes::Bytes>)>;
        let mut by_ns: std::collections::BTreeMap<String, NsPairs> =
            std::collections::BTreeMap::new();
        for (ns, k, v) in triples {
            by_ns
                .entry(ns)
                .or_default()
                .push((k, v.map(bytes::Bytes::from)));
        }
        for (ns_name, pairs) in by_ns {
            let ns = self.store.namespace(&ns_name)?;
            if bulk {
                ns.import_raw(pairs)?;
            } else {
                // Delta catch-up goes through the normal write path so it
                // shadows the snapshot segment. Keys arrive pre-stamped
                // under versioning, so the raw (non-restamping) batch is
                // correct in both modes.
                let mut batch = WriteBatch::with_capacity(pairs.len());
                for (k, v) in pairs {
                    match v {
                        Some(v) => {
                            batch.put(k, v);
                        }
                        None => {
                            batch.delete(k);
                        }
                    }
                }
                ns.write_batch(batch)?;
            }
        }
        Ok(())
    }
}

/// The vertex id a storage key belongs to (all graph namespaces lead with
/// the owning vertex's big-endian id).
fn vid_of_key(k: &[u8]) -> Option<VertexId> {
    k.get(..8)
        .and_then(|b| b.try_into().ok())
        .map(VertexId::from_be_bytes)
}

/// Split an in-memory graph across `n` freshly opened partitions using the
/// edge-cut partitioner: each vertex and its out-edges go to `owner(vid)`.
pub fn load_partitioned(
    graph: &InMemoryGraph,
    partitioner: EdgeCutPartitioner,
    partitions: &[GraphPartition],
) -> Result<()> {
    assert_eq!(partitions.len(), partitioner.n_servers);
    for (sid, part) in partitions.iter().enumerate() {
        let verts = graph
            .iter_vertices()
            .filter(|v| partitioner.owner(v.id) == sid)
            .cloned();
        let edges = graph
            .iter_edges()
            .filter(|e| partitioner.owner(e.src) == sid);
        part.load(verts, edges)?;
    }
    Ok(())
}

/// Replication-aware bulk load: server `s` receives every vertex (and its
/// out-edges, which live with the source) for which `holds(s, vid)` is
/// true. With a replication factor above one, several servers hold copies
/// of the same shard; `holds` is typically a placement map's holder test.
pub fn load_replicated(
    graph: &InMemoryGraph,
    partitions: &[GraphPartition],
    holds: impl Fn(ServerId, VertexId) -> bool,
) -> Result<()> {
    for (sid, part) in partitions.iter().enumerate() {
        let verts = graph.iter_vertices().filter(|v| holds(sid, v.id)).cloned();
        let edges = graph.iter_edges().filter(|e| holds(sid, e.src));
        part.load(verts, edges)?;
    }
    Ok(())
}

/// Which server owns each of `vids` under `partitioner` (helper mirroring
/// the coordinator's lookup of "where is this vertex stored").
pub fn owners(
    partitioner: EdgeCutPartitioner,
    vids: impl IntoIterator<Item = VertexId>,
) -> Vec<(VertexId, ServerId)> {
    vids.into_iter()
        .map(|v| (v, partitioner.owner(v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Props;
    use gt_kvstore::StoreConfig;

    fn open_tmp(name: &str) -> (GraphPartition, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "gtgraph-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(Store::open(StoreConfig::new(&dir)).unwrap());
        (GraphPartition::open(store).unwrap(), dir)
    }

    #[test]
    fn vertex_roundtrip() {
        let (p, dir) = open_tmp("vroundtrip");
        let v = Vertex::new(42u64, "User", Props::new().with("name", "sam"));
        p.put_vertex(&v).unwrap();
        assert_eq!(p.get_vertex(VertexId(42)).unwrap(), Some(v));
        assert_eq!(p.get_vertex(VertexId(43)).unwrap(), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn typed_edge_scan_is_label_scoped() {
        let (p, dir) = open_tmp("escan");
        for i in 0..5u64 {
            p.put_edge(&Edge::new(
                1u64,
                "read",
                10 + i,
                Props::new().with("i", i as i64),
            ))
            .unwrap();
        }
        p.put_edge(&Edge::new(1u64, "run", 99u64, Props::new()))
            .unwrap();
        p.put_edge(&Edge::new(2u64, "read", 50u64, Props::new()))
            .unwrap();
        let reads = p.edges_out(VertexId(1), "read").unwrap();
        assert_eq!(reads.len(), 5);
        assert!(reads.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(p.edges_out(VertexId(1), "run").unwrap().len(), 1);
        assert_eq!(p.edges_out(VertexId(1), "write").unwrap().len(), 0);
        let all = p.all_edges_out(VertexId(1)).unwrap();
        assert_eq!(all.len(), 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn label_prefix_does_not_leak_across_labels() {
        let (p, dir) = open_tmp("labelleak");
        // "re" is a prefix of "read": make sure scans don't conflate them.
        p.put_edge(&Edge::new(1u64, "re", 5u64, Props::new()))
            .unwrap();
        p.put_edge(&Edge::new(1u64, "read", 6u64, Props::new()))
            .unwrap();
        assert_eq!(p.edges_out(VertexId(1), "re").unwrap().len(), 1);
        assert_eq!(p.edges_out(VertexId(1), "read").unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn type_index_tracks_types() {
        let (p, dir) = open_tmp("types");
        p.put_vertex(&Vertex::new(1u64, "User", Props::new()))
            .unwrap();
        p.put_vertex(&Vertex::new(2u64, "File", Props::new()))
            .unwrap();
        p.put_vertex(&Vertex::new(3u64, "File", Props::new()))
            .unwrap();
        assert_eq!(
            p.vertices_of_type("File").unwrap(),
            vec![VertexId(2), VertexId(3)]
        );
        assert_eq!(p.vertices_of_type("User").unwrap(), vec![VertexId(1)]);
        assert!(p.vertices_of_type("Missing").unwrap().is_empty());
        assert_eq!(p.all_vertex_ids().unwrap().len(), 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn weird_type_names_are_escaped() {
        let (p, dir) = open_tmp("weirdtype");
        p.put_vertex(&Vertex::new(1u64, "a type/with:stuff", Props::new()))
            .unwrap();
        assert_eq!(
            p.vertices_of_type("a type/with:stuff").unwrap(),
            vec![VertexId(1)]
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bulk_load_partitioned_covers_graph() {
        let mut g = InMemoryGraph::new();
        for i in 0..40u64 {
            g.add_vertex(Vertex::new(i, "N", Props::new().with("i", i as i64)));
        }
        for i in 0..39u64 {
            g.add_edge(Edge::new(i, "next", i + 1, Props::new()));
        }
        let partitioner = EdgeCutPartitioner::new(3);
        let mut parts = Vec::new();
        let mut dirs = Vec::new();
        for s in 0..3 {
            let (p, d) = open_tmp(&format!("bulk{s}"));
            parts.push(p);
            dirs.push(d);
        }
        load_partitioned(&g, partitioner, &parts).unwrap();
        // Every vertex must be findable on its owner, with its edges.
        for i in 0..40u64 {
            let owner = partitioner.owner(VertexId(i));
            let v = parts[owner].get_vertex(VertexId(i)).unwrap();
            assert!(v.is_some(), "vertex {i} missing on owner {owner}");
            if i < 39 {
                let e = parts[owner].edges_out(VertexId(i), "next").unwrap();
                assert_eq!(e.len(), 1);
                assert_eq!(e[0].0, VertexId(i + 1));
            }
            // And absent from non-owners.
            for (s, p) in parts.iter().enumerate() {
                if s != owner {
                    assert!(p.get_vertex(VertexId(i)).unwrap().is_none());
                }
            }
        }
        let total: usize = parts
            .iter()
            .map(|p| p.all_vertex_ids().unwrap().len())
            .sum();
        assert_eq!(total, 40);
        for d in dirs {
            std::fs::remove_dir_all(d).ok();
        }
    }

    #[test]
    fn export_import_moves_a_shard_completely() {
        let (src, sdir) = open_tmp("mig-src");
        let (dst, ddir) = open_tmp("mig-dst");
        for i in 0..30u64 {
            src.put_vertex(&Vertex::new(
                i,
                if i % 2 == 0 { "File" } else { "User" },
                Props::new().with("i", i as i64),
            ))
            .unwrap();
        }
        for i in 0..29u64 {
            src.put_edge(&Edge::new(i, "next", i + 1, Props::new().with("w", 1i64)))
                .unwrap();
        }
        // Move the even vertices (and their out-edges + type entries).
        let dump = src.export_where(|vid| vid.0 % 2 == 0).unwrap();
        dst.import_raw(dump, true).unwrap();
        for i in (0..30u64).step_by(2) {
            let v = dst.get_vertex(VertexId(i)).unwrap();
            assert!(v.is_some(), "vertex {i} missing after import");
            if i < 29 {
                let e = dst.edges_out(VertexId(i), "next").unwrap();
                assert_eq!(e.len(), 1, "edge of {i} missing after import");
            }
        }
        assert!(dst.get_vertex(VertexId(1)).unwrap().is_none());
        assert_eq!(
            dst.vertices_of_type("File").unwrap().len(),
            15,
            "type index must travel with the shard"
        );
        // Delta phase: a later write-path import shadows the snapshot.
        let newer = Vertex::new(0u64, "File", Props::new().with("i", 999i64));
        let delta = vec![(
            "verts".to_string(),
            codec::vertex_key(newer.id).to_vec(),
            Some(codec::encode_vertex(&newer).to_vec()),
        )];
        dst.import_raw(delta, false).unwrap();
        assert_eq!(dst.get_vertex(VertexId(0)).unwrap(), Some(newer));
        std::fs::remove_dir_all(sdir).ok();
        std::fs::remove_dir_all(ddir).ok();
    }

    #[test]
    fn load_replicated_places_copies_on_every_holder() {
        let mut g = InMemoryGraph::new();
        for i in 0..20u64 {
            g.add_vertex(Vertex::new(i, "N", Props::new()));
        }
        for i in 0..19u64 {
            g.add_edge(Edge::new(i, "next", i + 1, Props::new()));
        }
        let partitioner = EdgeCutPartitioner::new(3);
        let mut parts = Vec::new();
        let mut dirs = Vec::new();
        for s in 0..3 {
            let (p, d) = open_tmp(&format!("repl{s}"));
            parts.push(p);
            dirs.push(d);
        }
        // rf=2: owner plus the next server on the ring hold each vertex.
        let holds = |sid: usize, vid: VertexId| {
            let o = partitioner.owner(vid);
            sid == o || sid == (o + 1) % 3
        };
        load_replicated(&g, &parts, holds).unwrap();
        for i in 0..20u64 {
            let mut copies = 0;
            for p in &parts {
                if p.get_vertex(VertexId(i)).unwrap().is_some() {
                    copies += 1;
                }
            }
            assert_eq!(copies, 2, "vertex {i} must exist on exactly 2 holders");
        }
        for d in dirs {
            std::fs::remove_dir_all(d).ok();
        }
    }

    fn open_tmp_versioned(
        name: &str,
    ) -> (
        GraphPartition,
        std::sync::Arc<std::sync::atomic::AtomicU64>,
        std::path::PathBuf,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "gtgraph-v-{}-{name}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let clock = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let store =
            Arc::new(Store::open(StoreConfig::new(&dir).version_clock(clock.clone())).unwrap());
        (GraphPartition::open(store).unwrap(), clock, dir)
    }

    #[test]
    fn versioned_partition_reads_resolve_by_view() {
        let (p, _clock, dir) = open_tmp_versioned("views");
        p.put_vertex(&Vertex::new(1u64, "User", Props::new().with("name", "a")))
            .unwrap();
        let s1 = p.store().current_seq();
        p.put_edge(&Edge::new(1u64, "read", 2u64, Props::new()))
            .unwrap();
        p.put_vertex(&Vertex::new(2u64, "File", Props::new()))
            .unwrap();
        let s2 = p.store().current_seq();
        p.put_vertex(&Vertex::new(1u64, "User", Props::new().with("name", "b")))
            .unwrap();

        // View at s1: only vertex 1's first version exists.
        let v1 = p
            .get_vertex_at(VertexId(1), ReadView::at(s1))
            .unwrap()
            .unwrap();
        assert_eq!(v1.props.get("name"), Some(&PropValue::Str("a".into())));
        assert!(p
            .get_vertex_at(VertexId(2), ReadView::at(s1))
            .unwrap()
            .is_none());
        assert!(p
            .edges_out_at(VertexId(1), "read", ReadView::at(s1))
            .unwrap()
            .is_empty());
        assert_eq!(
            p.all_vertex_ids_at(ReadView::at(s1)).unwrap(),
            vec![VertexId(1)]
        );
        assert_eq!(
            p.vertices_of_type_at("File", ReadView::at(s1)).unwrap(),
            Vec::<VertexId>::new()
        );

        // View at s2: both vertices and the edge, name still "a".
        let v1 = p
            .get_vertex_at(VertexId(1), ReadView::at(s2))
            .unwrap()
            .unwrap();
        assert_eq!(v1.props.get("name"), Some(&PropValue::Str("a".into())));
        assert_eq!(
            p.edges_out_at(VertexId(1), "read", ReadView::at(s2))
                .unwrap()
                .len(),
            1
        );
        assert_eq!(p.all_vertex_ids_at(ReadView::at(s2)).unwrap().len(), 2);

        // Latest: the upsert is visible, created stamp preserved.
        let v1 = p.get_vertex(VertexId(1)).unwrap().unwrap();
        assert_eq!(v1.props.get("name"), Some(&PropValue::Str("b".into())));
        assert_eq!(
            v1.props.get(CREATED_SEQ_PROP),
            Some(&PropValue::Int(s1 as i64))
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn versioned_export_preserves_views_on_target() {
        let (src, clock, sdir) = open_tmp_versioned("vexp");
        src.put_vertex(&Vertex::new(1u64, "N", Props::new().with("x", 1i64)))
            .unwrap();
        let s1 = src.store().current_seq();
        src.put_vertex(&Vertex::new(1u64, "N", Props::new().with("x", 2i64)))
            .unwrap();
        src.store().flush_all().unwrap();

        let dir2 = sdir.with_extension("dst");
        std::fs::remove_dir_all(&dir2).ok();
        let store2 =
            Arc::new(Store::open(StoreConfig::new(&dir2).version_clock(clock.clone())).unwrap());
        let dst = GraphPartition::open(store2).unwrap();
        dst.import_raw(src.export_where(|_| true).unwrap(), true)
            .unwrap();

        let old = dst
            .get_vertex_at(VertexId(1), ReadView::at(s1))
            .unwrap()
            .unwrap();
        assert_eq!(old.props.get("x"), Some(&PropValue::Int(1)));
        let new = dst.get_vertex(VertexId(1)).unwrap().unwrap();
        assert_eq!(new.props.get("x"), Some(&PropValue::Int(2)));
        std::fs::remove_dir_all(sdir).ok();
        std::fs::remove_dir_all(dir2).ok();
    }

    #[test]
    fn versioned_load_is_one_consistent_version() {
        let (p, _clock, dir) = open_tmp_versioned("vload");
        let mut g = InMemoryGraph::new();
        for i in 0..10u64 {
            g.add_vertex(Vertex::new(i, "N", Props::new()));
        }
        for i in 0..9u64 {
            g.add_edge(Edge::new(i, "next", i + 1, Props::new()));
        }
        p.load(g.iter_vertices().cloned(), g.iter_edges()).unwrap();
        let s = p.store().current_seq();
        assert_eq!(p.all_vertex_ids_at(ReadView::at(s)).unwrap().len(), 10);
        assert!(p.all_vertex_ids_at(ReadView::at(s - 1)).unwrap().is_empty());
        assert_eq!(
            p.edges_out_at(VertexId(0), "next", ReadView::at(s))
                .unwrap()
                .len(),
            1
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn seal_cold_compacts_and_clears() {
        let (p, dir) = open_tmp("seal");
        for i in 0..100u64 {
            p.put_vertex(&Vertex::new(i, "N", Props::new())).unwrap();
        }
        p.seal_cold().unwrap();
        // After sealing, the first read is cold.
        let before = p.io_stats();
        p.get_vertex(VertexId(0)).unwrap();
        let after = p.io_stats();
        assert!(after.cold > before.cold, "expected a cold read after seal");
        std::fs::remove_dir_all(dir).ok();
    }
}
