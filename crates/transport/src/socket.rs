//! Real socket backend: length-prefixed frames over TCP or Unix domain
//! sockets.
//!
//! A [`SocketMesh`] realizes the same dense endpoint-id address space as
//! the simulated fabric (`0..n_endpoints`), but endpoints live in OS
//! processes. Each *process* owns one listening socket; a static
//! `home` table maps every endpoint id to its hosting process, so any
//! endpoint can address any other without discovery.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [from: u32 LE] [to: u32 LE] [payload: len-8 bytes]
//! ```
//!
//! `len` counts everything after itself (so `len >= 8`); the payload is
//! the [`WireCodec`](crate::WireCodec) encoding of the message. Frames
//! above [`MAX_FRAME`] bytes or that fail to decode are counted as drops
//! and the rest of the stream is still consumed — a misbehaving peer
//! cannot panic a server.
//!
//! ## Connection management
//!
//! Outbound: one writer thread per *remote process*, fed by an unbounded
//! outbox. Connections are opened lazily on first send and re-opened with
//! exponential backoff (10 ms doubling to 500 ms) after any failure; the
//! frame being written when a connection dies is retransmitted on the
//! next connection, so startup order between processes does not matter.
//! Local destinations take the same path through the real socket — a
//! single-process "loopback mesh" measures true kernel round-trips.
//!
//! Inbound: an accept loop spawns one reader thread per connection;
//! frames are routed to per-endpoint inboxes by their `to` field.
//! Inbound connections are read-only (the mesh never replies on them),
//! so a connection is a one-way pipe exactly like a fabric link.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gt_net::{Envelope, NetStats, RecvError, SendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::WireCodec;

/// Upper bound on a single frame (length prefix value). Frames claiming
/// more are treated as a malformed peer and the connection is dropped.
pub const MAX_FRAME: usize = 256 << 20;

const BACKOFF_START: Duration = Duration::from_millis(10);
const BACKOFF_CAP: Duration = Duration::from_millis(500);

/// Where a mesh process listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketAddrSpec {
    /// TCP, `host:port` (port 0 is rewritten to the bound port for the
    /// local process, which is how tests get ephemeral loopback meshes).
    Tcp(String),
    /// Unix domain socket at this path (unlinked on close).
    Uds(PathBuf),
}

impl SocketAddrSpec {
    /// Parse `tcp:host:port` or `uds:/path/to.sock`.
    pub fn parse(s: &str) -> Result<SocketAddrSpec, MeshError> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err(MeshError::Config(format!("empty tcp address in `{s}`")));
            }
            Ok(SocketAddrSpec::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("uds:") {
            if rest.is_empty() {
                return Err(MeshError::Config(format!("empty uds path in `{s}`")));
            }
            Ok(SocketAddrSpec::Uds(PathBuf::from(rest)))
        } else {
            Err(MeshError::Config(format!(
                "address `{s}` must start with `tcp:` or `uds:`"
            )))
        }
    }
}

impl std::fmt::Display for SocketAddrSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocketAddrSpec::Tcp(a) => write!(f, "tcp:{a}"),
            SocketAddrSpec::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// Static layout of a socket mesh: which process hosts which endpoint.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Total number of endpoints across all processes.
    pub n_endpoints: usize,
    /// `home[e]` = index into `processes` of the process hosting endpoint `e`.
    pub home: Vec<usize>,
    /// Listen address of each process.
    pub processes: Vec<SocketAddrSpec>,
    /// Which process *this* invocation is.
    pub me: usize,
}

impl MeshConfig {
    /// A mesh entirely inside one process: all `n` endpoints local,
    /// traffic over the loopback socket at `addr`.
    pub fn single_process(n: usize, addr: SocketAddrSpec) -> MeshConfig {
        MeshConfig {
            n_endpoints: n,
            home: vec![0; n],
            processes: vec![addr],
            me: 0,
        }
    }

    fn validate(&self) -> Result<(), MeshError> {
        if self.processes.is_empty() {
            return Err(MeshError::Config("no processes in mesh".into()));
        }
        if self.me >= self.processes.len() {
            return Err(MeshError::Config(format!(
                "process index {} out of range ({} processes)",
                self.me,
                self.processes.len()
            )));
        }
        if self.home.len() != self.n_endpoints {
            return Err(MeshError::Config(format!(
                "home table has {} entries for {} endpoints",
                self.home.len(),
                self.n_endpoints
            )));
        }
        if let Some(bad) = self.home.iter().find(|&&p| p >= self.processes.len()) {
            return Err(MeshError::Config(format!(
                "home process {bad} out of range"
            )));
        }
        Ok(())
    }

    fn local_ids(&self) -> Vec<usize> {
        (0..self.n_endpoints)
            .filter(|&e| self.home[e] == self.me)
            .collect()
    }
}

/// Error starting or configuring a mesh.
#[derive(Debug)]
pub enum MeshError {
    /// The [`MeshConfig`] is inconsistent or an address failed to parse.
    Config(String),
    /// Binding the listen socket failed.
    Io(std::io::Error),
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::Config(s) => write!(f, "mesh config: {s}"),
            MeshError::Io(e) => write!(f, "mesh io: {e}"),
        }
    }
}

impl std::error::Error for MeshError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeshError::Config(_) => None,
            MeshError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for MeshError {
    fn from(e: std::io::Error) -> Self {
        MeshError::Io(e)
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

fn connect(addr: &SocketAddrSpec) -> std::io::Result<Stream> {
    match addr {
        SocketAddrSpec::Tcp(a) => {
            let s = TcpStream::connect(a)?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        }
        SocketAddrSpec::Uds(p) => Ok(Stream::Uds(UnixStream::connect(p)?)),
    }
}

struct MeshShared<M> {
    cfg: MeshConfig,
    /// Local endpoint inboxes; cleared on close so receivers observe
    /// `Closed` once drained.
    inboxes: RwLock<HashMap<usize, Sender<Envelope<M>>>>,
    /// One outbox per process (pre-framed bytes); the empty frame is the
    /// shutdown wake-up.
    outboxes: Vec<Sender<Vec<u8>>>,
    stats: Arc<NetStats>,
    closed: AtomicBool,
}

/// Handle to a running mesh (this process's share of it). The mesh's
/// threads hold references too, so shutdown is explicit: call
/// [`SocketMesh::close`] when done (the engine does this when a cluster
/// is dropped).
pub struct SocketMesh<M> {
    shared: Arc<MeshShared<M>>,
}

impl<M> Clone for SocketMesh<M> {
    fn clone(&self) -> Self {
        SocketMesh {
            shared: self.shared.clone(),
        }
    }
}

impl<M> std::fmt::Debug for SocketMesh<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketMesh")
            .field("n_endpoints", &self.shared.cfg.n_endpoints)
            .field("me", &self.shared.cfg.me)
            .finish()
    }
}

/// One local endpoint of a [`SocketMesh`]. Clones share the inbox, like
/// fabric endpoints.
pub struct SocketEndpoint<M> {
    id: usize,
    rx: Receiver<Envelope<M>>,
    shared: Arc<MeshShared<M>>,
}

impl<M> Clone for SocketEndpoint<M> {
    fn clone(&self) -> Self {
        SocketEndpoint {
            id: self.id,
            rx: self.rx.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl<M> std::fmt::Debug for SocketEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketEndpoint")
            .field("id", &self.id)
            .finish()
    }
}

impl<M: Send + WireCodec + 'static> SocketMesh<M> {
    /// Bind this process's listener, spawn the accept loop and one writer
    /// per process, and return endpoints for every id homed here (in
    /// ascending id order).
    ///
    /// If the local address is `tcp:…:0`, the config is rewritten with
    /// the actually-bound port so single-process meshes can use ephemeral
    /// ports. Remote processes need not be up yet: frames queue in the
    /// writer until their listener appears.
    pub fn start(
        mut cfg: MeshConfig,
    ) -> Result<(SocketMesh<M>, Vec<SocketEndpoint<M>>), MeshError> {
        cfg.validate()?;
        let listener = match &cfg.processes[cfg.me] {
            SocketAddrSpec::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                let actual = l.local_addr()?;
                cfg.processes[cfg.me] = SocketAddrSpec::Tcp(actual.to_string());
                Listener::Tcp(l)
            }
            SocketAddrSpec::Uds(p) => {
                // A stale socket file from a crashed predecessor blocks
                // bind; remove it (no other listener can hold it if the
                // deployment assigns unique paths).
                let _ = std::fs::remove_file(p);
                Listener::Uds(UnixListener::bind(p)?)
            }
        };

        let mut inboxes = HashMap::new();
        let mut rxs = Vec::new();
        for &e in &cfg.local_ids() {
            let (tx, rx) = unbounded();
            inboxes.insert(e, tx);
            rxs.push((e, rx));
        }

        let mut outboxes = Vec::with_capacity(cfg.processes.len());
        let mut out_rxs = Vec::with_capacity(cfg.processes.len());
        for _ in 0..cfg.processes.len() {
            let (tx, rx) = unbounded::<Vec<u8>>();
            outboxes.push(tx);
            out_rxs.push(rx);
        }

        let stats = Arc::new(NetStats::new(cfg.n_endpoints));
        let shared = Arc::new(MeshShared {
            cfg,
            inboxes: RwLock::new(inboxes),
            outboxes,
            stats,
            closed: AtomicBool::new(false),
        });

        for (p, rx) in out_rxs.into_iter().enumerate() {
            let addr = shared.cfg.processes[p].clone();
            let sh = shared.clone();
            std::thread::Builder::new()
                .name(format!("gt-mesh-w{p}"))
                .spawn(move || writer_loop(rx, addr, sh))
                .map_err(MeshError::Io)?;
        }
        {
            let sh = shared.clone();
            std::thread::Builder::new()
                .name("gt-mesh-accept".into())
                .spawn(move || accept_loop(listener, sh))
                .map_err(MeshError::Io)?;
        }

        let mesh = SocketMesh {
            shared: shared.clone(),
        };
        let endpoints = rxs
            .into_iter()
            .map(|(id, rx)| SocketEndpoint {
                id,
                rx,
                shared: shared.clone(),
            })
            .collect();
        Ok((mesh, endpoints))
    }

    /// The (possibly port-rewritten) address this process listens on.
    pub fn local_addr(&self) -> SocketAddrSpec {
        self.shared.cfg.processes[self.shared.cfg.me].clone()
    }

    /// Traffic counters (send-side, this process only).
    pub fn stats(&self) -> Arc<NetStats> {
        self.shared.stats.clone()
    }

    /// Shut the mesh down: subsequent sends fail with `Closed`, local
    /// inboxes drain then report `Closed`, and the accept/writer threads
    /// exit. Idempotent.
    pub fn close(&self) {
        close_shared(&self.shared);
    }
}

fn close_shared<M>(shared: &MeshShared<M>) {
    if shared.closed.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.inboxes.write().clear();
    // Wake every writer with the empty shutdown frame.
    for tx in &shared.outboxes {
        let _ = tx.send(Vec::new());
    }
    // Wake the accept loop; it checks `closed` after each accept.
    let _ = connect(&shared.cfg.processes[shared.cfg.me]);
    if let SocketAddrSpec::Uds(p) = &shared.cfg.processes[shared.cfg.me] {
        let _ = std::fs::remove_file(p);
    }
}

impl<M: Send + WireCodec + 'static> SocketEndpoint<M> {
    /// This endpoint's mesh-wide address.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Total endpoints across all processes.
    pub fn n_endpoints(&self) -> usize {
        self.shared.cfg.n_endpoints
    }

    /// Encode and enqueue `msg` for endpoint `to`. Never blocks on the
    /// network: frames queue in the writer for `to`'s process and survive
    /// reconnects.
    pub fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        let sh = &self.shared;
        if to >= sh.cfg.n_endpoints {
            return Err(SendError::UnknownEndpoint);
        }
        if sh.closed.load(Ordering::SeqCst) {
            return Err(SendError::Closed);
        }
        let mut frame = Vec::with_capacity(64);
        frame.extend_from_slice(&[0u8; 4]); // length placeholder
        frame.extend_from_slice(&(self.id as u32).to_le_bytes());
        frame.extend_from_slice(&(to as u32).to_le_bytes());
        msg.encode(&mut frame);
        let len = (frame.len() - 4) as u32;
        frame[0..4].copy_from_slice(&len.to_le_bytes());
        sh.stats.record(self.id, to, frame.len());
        sh.outboxes[sh.cfg.home[to]]
            .send(frame)
            .map_err(|_| SendError::Closed)
    }

    /// Block until a message arrives (or the mesh closes).
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Closed)
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Messages waiting in this endpoint's inbox.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Traffic counters of the hosting process's mesh.
    pub fn stats(&self) -> Arc<NetStats> {
        self.shared.stats.clone()
    }
}

/// Outbound side: own the connection to one process, retransmitting the
/// in-flight frame across reconnects.
fn writer_loop<M>(rx: Receiver<Vec<u8>>, addr: SocketAddrSpec, shared: Arc<MeshShared<M>>) {
    let mut conn: Option<Stream> = None;
    let mut backoff = BACKOFF_START;
    loop {
        let frame = match rx.recv() {
            Ok(f) => f,
            Err(_) => return,
        };
        if frame.is_empty() {
            // Shutdown wake-up.
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            continue;
        }
        loop {
            if shared.closed.load(Ordering::SeqCst) {
                return;
            }
            if conn.is_none() {
                match connect(&addr) {
                    Ok(s) => {
                        conn = Some(s);
                        backoff = BACKOFF_START;
                    }
                    Err(_) => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        continue;
                    }
                }
            }
            let ok = match conn.as_mut() {
                Some(s) => s.write_all(&frame).and_then(|()| s.flush()).is_ok(),
                None => false,
            };
            if ok {
                break;
            }
            conn = None; // reconnect and retransmit this frame
        }
    }
}

/// Accept loop: one reader thread per inbound connection.
fn accept_loop<M: Send + WireCodec + 'static>(listener: Listener, shared: Arc<MeshShared<M>>) {
    loop {
        let stream = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
        };
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let sh = shared.clone();
        let spawned = std::thread::Builder::new()
            .name("gt-mesh-r".into())
            .spawn(move || reader_loop(stream, sh));
        if spawned.is_err() {
            // Out of threads: drop the connection; the peer's writer will
            // reconnect with backoff.
            continue;
        }
    }
}

/// Inbound side: parse frames off one connection, route to local inboxes.
fn reader_loop<M: Send + WireCodec + 'static>(mut stream: Stream, shared: Arc<MeshShared<M>>) {
    let mut header = [0u8; 4];
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            return;
        }
        if stream.read_exact(&mut header).is_err() {
            return; // EOF or reset: peer will reconnect if it cares
        }
        let len = u32::from_le_bytes(header) as usize;
        if !(8..=MAX_FRAME).contains(&len) {
            return; // malformed peer; closing forces it to reconnect
        }
        let mut body = vec![0u8; len];
        if stream.read_exact(&mut body).is_err() {
            return;
        }
        let from = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
        let to = u32::from_le_bytes([body[4], body[5], body[6], body[7]]) as usize;
        let Some(msg) = M::decode(&body[8..]) else {
            shared.stats.record_drop();
            continue;
        };
        let delivered = match shared.inboxes.read().get(&to) {
            Some(tx) => tx.send(Envelope { from, to, msg }).is_ok(),
            None => false,
        };
        if !delivered {
            shared.stats.record_drop();
        }
    }
}

impl<M: Send + WireCodec + 'static> crate::Transport<M> for SocketEndpoint<M> {
    fn id(&self) -> usize {
        SocketEndpoint::id(self)
    }
    fn n_endpoints(&self) -> usize {
        SocketEndpoint::n_endpoints(self)
    }
    fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        SocketEndpoint::send(self, to, msg)
    }
    fn recv(&self) -> Result<Envelope<M>, RecvError> {
        SocketEndpoint::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        SocketEndpoint::recv_timeout(self, timeout)
    }
    fn try_recv(&self) -> Option<Envelope<M>> {
        SocketEndpoint::try_recv(self)
    }
    fn pending(&self) -> usize {
        SocketEndpoint::pending(self)
    }
    fn stats(&self) -> Arc<NetStats> {
        SocketEndpoint::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_mesh(n: usize) -> (SocketMesh<u64>, Vec<SocketEndpoint<u64>>) {
        let cfg = MeshConfig::single_process(n, SocketAddrSpec::Tcp("127.0.0.1:0".into()));
        SocketMesh::start(cfg).expect("start tcp mesh")
    }

    #[test]
    fn tcp_loopback_round_trip_in_order() {
        let (mesh, eps) = tcp_mesh(2);
        for i in 0..100u64 {
            eps[0].send(1, i).expect("send");
        }
        for i in 0..100u64 {
            let env = eps[1]
                .recv_timeout(Duration::from_secs(5))
                .expect("recv in time");
            assert_eq!(env.from, 0);
            assert_eq!(env.to, 1);
            assert_eq!(env.msg, i);
        }
        mesh.close();
    }

    #[test]
    fn uds_round_trip() {
        let dir = std::env::temp_dir().join(format!("gt-mesh-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("uds-rt.sock");
        let cfg = MeshConfig::single_process(2, SocketAddrSpec::Uds(path.clone()));
        let (mesh, eps) = SocketMesh::<String>::start(cfg).expect("start uds mesh");
        eps[1].send(0, "hello".to_string()).expect("send");
        let env = eps[0]
            .recv_timeout(Duration::from_secs(5))
            .expect("recv in time");
        assert_eq!(env.msg, "hello");
        assert_eq!(env.from, 1);
        mesh.close();
        assert!(!path.exists(), "socket file unlinked on close");
    }

    #[test]
    fn send_before_remote_listener_queues_and_delivers() {
        // Process 0 hosts endpoint 0, process 1 hosts endpoint 1; start
        // process 0 first and send immediately — frames must queue until
        // process 1 binds.
        let l = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        let addr1 = l.local_addr().expect("probe addr").to_string();
        drop(l); // race-prone in general, fine for a single test process

        let cfg0 = MeshConfig {
            n_endpoints: 2,
            home: vec![0, 1],
            processes: vec![
                SocketAddrSpec::Tcp("127.0.0.1:0".into()),
                SocketAddrSpec::Tcp(addr1.clone()),
            ],
            me: 0,
        };
        let (mesh0, eps0) = SocketMesh::<u64>::start(cfg0).expect("start mesh0");
        eps0[0].send(1, 42).expect("send queues");

        std::thread::sleep(Duration::from_millis(50)); // let backoff cycle
        let cfg1 = MeshConfig {
            n_endpoints: 2,
            home: vec![0, 1],
            processes: vec![mesh0.local_addr(), SocketAddrSpec::Tcp(addr1)],
            me: 1,
        };
        let (mesh1, eps1) = SocketMesh::<u64>::start(cfg1).expect("start mesh1");
        let env = eps1[0]
            .recv_timeout(Duration::from_secs(10))
            .expect("delivered after reconnect");
        assert_eq!(env.msg, 42);
        mesh0.close();
        mesh1.close();
    }

    #[test]
    fn close_makes_sends_fail_and_recv_report_closed() {
        let (mesh, eps) = tcp_mesh(2);
        mesh.close();
        assert_eq!(eps[0].send(1, 7u64), Err(SendError::Closed));
        // Inbox senders were dropped; after draining, recv reports Closed.
        let mut saw_closed = false;
        for _ in 0..100 {
            match eps[1].recv_timeout(Duration::from_millis(50)) {
                Err(RecvError::Closed) => {
                    saw_closed = true;
                    break;
                }
                Err(RecvError::Timeout) => continue,
                Ok(_) => continue,
            }
        }
        assert!(saw_closed);
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let (mesh, eps) = tcp_mesh(1);
        assert_eq!(eps[0].send(9, 1u64), Err(SendError::UnknownEndpoint));
        mesh.close();
    }

    #[test]
    fn stats_count_send_side_bytes() {
        let (mesh, eps) = tcp_mesh(2);
        eps[0].send(1, 5u64).expect("send");
        let env = eps[1].recv_timeout(Duration::from_secs(5)).expect("recv");
        assert_eq!(env.msg, 5);
        let stats = mesh.stats();
        assert!(stats.messages(0, 1) >= 1);
        mesh.close();
    }
}
