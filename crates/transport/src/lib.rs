#![warn(missing_docs)]

//! # gt-transport — pluggable message transport
//!
//! The engine's servers exchange [`gt_net::Envelope`]s. Historically the
//! only carrier was `gt-net`'s simulated in-process [`Fabric`](gt_net::Fabric)
//! (latency model, chaos shim, timer wheel). This crate abstracts the
//! carrier behind the [`Transport`] trait and adds a second backend: a
//! real socket mesh ([`socket::SocketMesh`]) speaking length-prefixed
//! frames over TCP or Unix domain sockets, so a cluster can run as N OS
//! processes.
//!
//! The two backends are unified by [`Conduit`], a closed enum that the
//! engine threads hold instead of a concrete `Endpoint`. A `Conduit` is
//! cheap to clone and exposes exactly the fabric `Endpoint` API
//! (`send`/`recv`/`recv_timeout`/`try_recv`/`id`/`n_endpoints`/`pending`/
//! `stats`), so server and cluster code is transport-agnostic.
//!
//! Messages crossing a socket must serialize: the [`WireCodec`] trait is
//! the (dependency-free) binary codec contract. The in-process fabric
//! never invokes it — values move by channel — which is why the chaos and
//! latency simulations are byte-identical to before this crate existed.

pub mod socket;

use std::sync::Arc;
use std::time::Duration;

pub use gt_net::{Endpoint, Envelope, NetStats, RecvError, SendError, WireSize};
pub use socket::{MeshConfig, MeshError, SocketAddrSpec, SocketEndpoint, SocketMesh};

/// Binary serialization contract for messages that may cross a socket.
///
/// Encoding is infallible (append to a buffer); decoding is total over
/// arbitrary bytes and returns `None` on malformed input — a socket peer
/// can send garbage, and a decode failure must be a counted drop, never a
/// panic.
pub trait WireCodec: Sized {
    /// Append this value's binary form to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value from exactly `buf`. `None` if malformed.
    fn decode(buf: &[u8]) -> Option<Self>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// The carrier abstraction: one addressable party on some message
/// substrate. Implemented by the simulated fabric's [`Endpoint`], the
/// socket mesh's [`SocketEndpoint`], and the [`Conduit`] that unifies
/// them.
///
/// Semantics shared by every backend:
/// * `send` never blocks on the receiver and never fails transiently —
///   a down peer means frames queue (socket) or drop (isolated fabric
///   endpoint), not an error.
/// * `recv`/`recv_timeout` blocks; [`RecvError::Closed`] means the
///   substrate is gone and no more messages will ever arrive.
/// * `stats` exposes the substrate's traffic counters.
pub trait Transport<M> {
    /// This endpoint's address (dense ids `0..n_endpoints`).
    fn id(&self) -> usize;
    /// Number of endpoints on the substrate.
    fn n_endpoints(&self) -> usize;
    /// Send `msg` to endpoint `to` without blocking on the receiver.
    fn send(&self, to: usize, msg: M) -> Result<(), SendError>;
    /// Block until a message arrives.
    fn recv(&self) -> Result<Envelope<M>, RecvError>;
    /// Block up to `timeout` for a message.
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError>;
    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope<M>>;
    /// Messages currently queued for this endpoint.
    fn pending(&self) -> usize;
    /// Traffic counters of the underlying substrate.
    fn stats(&self) -> Arc<NetStats>;
}

impl<M: Send + WireSize + Clone + 'static> Transport<M> for Endpoint<M> {
    fn id(&self) -> usize {
        Endpoint::id(self)
    }
    fn n_endpoints(&self) -> usize {
        Endpoint::n_endpoints(self)
    }
    fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        Endpoint::send(self, to, msg)
    }
    fn recv(&self) -> Result<Envelope<M>, RecvError> {
        Endpoint::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        Endpoint::recv_timeout(self, timeout)
    }
    fn try_recv(&self) -> Option<Envelope<M>> {
        Endpoint::try_recv(self)
    }
    fn pending(&self) -> usize {
        Endpoint::pending(self)
    }
    fn stats(&self) -> Arc<NetStats> {
        Endpoint::stats(self)
    }
}

/// A transport endpoint that is either a simulated-fabric [`Endpoint`] or
/// a socket-mesh [`SocketEndpoint`]. Engine code holds a `Conduit` and
/// stays oblivious to which substrate carries its messages.
pub enum Conduit<M> {
    /// In-process simulated fabric (latency model, chaos, timer wheel).
    Fabric(Endpoint<M>),
    /// Real sockets: length-prefixed frames over TCP or UDS.
    Socket(SocketEndpoint<M>),
}

impl<M> Clone for Conduit<M> {
    fn clone(&self) -> Self {
        match self {
            Conduit::Fabric(e) => Conduit::Fabric(e.clone()),
            Conduit::Socket(e) => Conduit::Socket(e.clone()),
        }
    }
}

impl<M> std::fmt::Debug for Conduit<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conduit::Fabric(e) => f.debug_tuple("Conduit::Fabric").field(e).finish(),
            Conduit::Socket(e) => f.debug_tuple("Conduit::Socket").field(e).finish(),
        }
    }
}

impl<M: Send + WireSize + WireCodec + Clone + 'static> Conduit<M> {
    /// This endpoint's address.
    pub fn id(&self) -> usize {
        match self {
            Conduit::Fabric(e) => e.id(),
            Conduit::Socket(e) => e.id(),
        }
    }

    /// Number of endpoints on the substrate.
    pub fn n_endpoints(&self) -> usize {
        match self {
            Conduit::Fabric(e) => e.n_endpoints(),
            Conduit::Socket(e) => e.n_endpoints(),
        }
    }

    /// Send `msg` to endpoint `to` without blocking on the receiver.
    pub fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        match self {
            Conduit::Fabric(e) => e.send(to, msg),
            Conduit::Socket(e) => e.send(to, msg),
        }
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        match self {
            Conduit::Fabric(e) => e.recv(),
            Conduit::Socket(e) => e.recv(),
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        match self {
            Conduit::Fabric(e) => e.recv_timeout(timeout),
            Conduit::Socket(e) => e.recv_timeout(timeout),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self {
            Conduit::Fabric(e) => e.try_recv(),
            Conduit::Socket(e) => e.try_recv(),
        }
    }

    /// Messages currently queued for this endpoint.
    pub fn pending(&self) -> usize {
        match self {
            Conduit::Fabric(e) => e.pending(),
            Conduit::Socket(e) => e.pending(),
        }
    }

    /// Traffic counters of the underlying substrate.
    pub fn stats(&self) -> Arc<NetStats> {
        match self {
            Conduit::Fabric(e) => e.stats(),
            Conduit::Socket(e) => e.stats(),
        }
    }
}

impl<M: Send + WireSize + WireCodec + Clone + 'static> Transport<M> for Conduit<M> {
    fn id(&self) -> usize {
        Conduit::id(self)
    }
    fn n_endpoints(&self) -> usize {
        Conduit::n_endpoints(self)
    }
    fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        Conduit::send(self, to, msg)
    }
    fn recv(&self) -> Result<Envelope<M>, RecvError> {
        Conduit::recv(self)
    }
    fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        Conduit::recv_timeout(self, timeout)
    }
    fn try_recv(&self) -> Option<Envelope<M>> {
        Conduit::try_recv(self)
    }
    fn pending(&self) -> usize {
        Conduit::pending(self)
    }
    fn stats(&self) -> Arc<NetStats> {
        Conduit::stats(self)
    }
}

// --- minimal codecs used by transport-level tests -----------------------

impl WireCodec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(buf: &[u8]) -> Option<Self> {
        Some(buf.to_vec())
    }
}

impl WireCodec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(buf: &[u8]) -> Option<Self> {
        let arr: [u8; 8] = buf.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &[u8]) -> Option<Self> {
        String::from_utf8(buf.to_vec()).ok()
    }
}
