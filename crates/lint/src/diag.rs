//! Structured diagnostics: rule id, location, message, fix hint.

use std::fmt;
use std::path::PathBuf;

/// Names of every rule `gt-lint` knows about, in reporting order.
///
/// These double as the identifiers accepted by `--rules` and by the
/// `// gt-lint: allow(<rule>, "reason")` escape hatch.
pub const ALL_RULES: &[&str] = &[
    "lock-cycle",
    "guard-across-channel",
    "wildcard-arm",
    "unhandled-variant",
    "epoch-fence",
    "panic",
    "dead-counter",
    "unsurfaced-counter",
    "protocol-conformance",
    "guard-across-send",
    "atomic-ordering",
    "blocking-in-dispatcher",
    "bare-allow",
];

/// One finding: where, which rule, what is wrong, and how to fix it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// File the finding is anchored to.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allow it with a reason).
    pub hint: String,
}

impl Diagnostic {
    /// Build a diagnostic for `rule` at `file:line`.
    pub fn new(
        rule: &'static str,
        file: impl Into<PathBuf>,
        line: u32,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        write!(f, "    hint: {}", self.hint)
    }
}

/// Escape a string for a JSON string literal (quotes not included).
fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Normalized (forward-slash) path for machine output.
fn norm_path(d: &Diagnostic) -> String {
    d.file.to_string_lossy().replace('\\', "/")
}

/// Render diagnostics as a JSON array (hand-rolled: the workspace is
/// offline, so no serde). Stable field order, one object per line, for
/// golden tests and CI consumption.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"hint\":\"{}\"}}{}\n",
            json_esc(d.rule),
            json_esc(&norm_path(d)),
            d.line,
            json_esc(&d.message),
            json_esc(&d.hint),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// Render diagnostics as a minimal SARIF 2.1.0 log (one run, one result
/// per finding) — enough for code-scanning upload and IDE ingestion.
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut rules_seen: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    rules_seen.sort_unstable();
    rules_seen.dedup();
    let rules_json = rules_seen
        .iter()
        .map(|r| format!("{{\"id\":\"{}\"}}", json_esc(r)))
        .collect::<Vec<_>>()
        .join(",");
    let results = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                json_esc(d.rule),
                json_esc(&d.message),
                json_esc(&norm_path(d)),
                d.line
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"gt-lint\",\
         \"rules\":[{rules_json}]}}}},\"results\":[{results}]}}]}}"
    )
}

/// Render diagnostics as GitHub Actions workflow annotations
/// (`::error file=…,line=…,title=…::message`). The message collapses to
/// one line; the hint rides along after ` — `.
pub fn render_github(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| {
            let text = format!("{} — {}", d.message, d.hint)
                .replace('%', "%25")
                .replace('\r', "%0D")
                .replace('\n', "%0A");
            format!(
                "::error file={},line={},title=gt-lint[{}]::{}",
                norm_path(d),
                d.line,
                d.rule,
                text
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic::new("panic", "crates/x.rs", 7, "says \"hi\"", "drop it")
    }

    #[test]
    fn json_escapes_and_shapes() {
        let s = render_json(&[d()]);
        assert!(s.starts_with('['), "{s}");
        assert!(s.contains("\"rule\":\"panic\""));
        assert!(s.contains("says \\\"hi\\\""));
        assert!(s.trim_end().ends_with(']'));
        assert_eq!(render_json(&[]), "[\n]");
    }

    #[test]
    fn sarif_has_schema_and_result() {
        let s = render_sarif(&[d()]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"panic\""));
        assert!(s.contains("\"startLine\":7"));
    }

    #[test]
    fn github_annotations_escape_newlines() {
        let mut diag = d();
        diag.message = "line1\nline2".into();
        let s = render_github(&[diag]);
        assert!(s.starts_with("::error file=crates/x.rs,line=7,title=gt-lint[panic]::"));
        assert!(s.contains("line1%0Aline2"));
    }
}
