//! Structured diagnostics: rule id, location, message, fix hint.

use std::fmt;
use std::path::PathBuf;

/// Names of every rule `gt-lint` knows about, in reporting order.
///
/// These double as the identifiers accepted by `--rules` and by the
/// `// gt-lint: allow(<rule>, "reason")` escape hatch.
pub const ALL_RULES: &[&str] = &[
    "lock-cycle",
    "guard-across-channel",
    "wildcard-arm",
    "unhandled-variant",
    "epoch-fence",
    "panic",
    "dead-counter",
    "unsurfaced-counter",
];

/// One finding: where, which rule, what is wrong, and how to fix it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// File the finding is anchored to.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to allow it with a reason).
    pub hint: String,
}

impl Diagnostic {
    /// Build a diagnostic for `rule` at `file:line`.
    pub fn new(
        rule: &'static str,
        file: impl Into<PathBuf>,
        line: u32,
        message: impl Into<String>,
        hint: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            hint: hint.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        write!(f, "    hint: {}", self.hint)
    }
}
