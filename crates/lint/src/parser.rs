//! Shallow structural parser on top of the token stream.
//!
//! gt-lint does not need a real AST. The rules work on three structural
//! facts: where functions are (name, params, body as token ranges), where
//! `match` expressions and their arms are, and how deeply nested in braces
//! each token sits. `#[cfg(test)]` items are stripped up front so test-only
//! code is never audited as production code.

use crate::lexer::{self, Allow, PairDecl, Tok, TokKind};
use std::path::{Path, PathBuf};

/// One lexed and test-stripped source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path as given (kept relative for readable diagnostics).
    pub path: PathBuf,
    /// Tokens with `#[cfg(test)]` items removed.
    pub toks: Vec<Tok>,
    /// Allow directives found anywhere in the file (comments survive
    /// stripping because they are collected during lexing).
    pub allows: Vec<Allow>,
    /// Request→ack pair declarations found anywhere in the file.
    pub pairs: Vec<PairDecl>,
}

impl SourceFile {
    /// Lex `src` as the contents of `path`.
    pub fn from_source(path: &Path, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let toks = strip_test_items(lexed.toks);
        SourceFile {
            path: path.to_path_buf(),
            toks,
            allows: lexed.allows,
            pairs: lexed.pairs,
        }
    }

    /// Read and lex the file at `path`.
    pub fn read(path: &Path) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(path)?;
        Ok(SourceFile::from_source(path, &src))
    }
}

/// A function item: token ranges are half-open `[start, end)`.
#[derive(Debug, Clone)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// Tokens between the parameter parentheses (exclusive of them).
    pub params: (usize, usize),
    /// Tokens between the body braces (exclusive of them). Empty for
    /// bodyless trait-method declarations.
    pub body: (usize, usize),
    /// Line of the `fn` keyword.
    pub line: u32,
}

/// One `match` arm.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern tokens (including any `if` guard), `[start, end)`.
    pub pat: (usize, usize),
    /// Body tokens, `[start, end)` (outer braces included when present).
    pub body: (usize, usize),
    /// Line the pattern starts on.
    pub line: u32,
}

/// One `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Scrutinee tokens, `[start, end)`.
    pub scrutinee: (usize, usize),
    /// The arms in source order.
    pub arms: Vec<Arm>,
    /// Line of the `match` keyword.
    pub line: u32,
}

/// Brace depth of each token: the number of unclosed `{` strictly before
/// it (a closing `}` sits at the depth of its matching `{`).
pub fn brace_depths(toks: &[Tok]) -> Vec<u32> {
    let mut out = Vec::with_capacity(toks.len());
    let mut cur = 0u32;
    for t in toks {
        if t.is_punct('}') {
            cur = cur.saturating_sub(1);
        }
        out.push(cur);
        if t.is_punct('{') {
            cur += 1;
        }
    }
    out
}

/// Index of the close bracket matching the open bracket at `open`, or
/// `toks.len()` if unbalanced.
pub fn matching_close(toks: &[Tok], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// Remove `#[cfg(test)]` items (attribute, any stacked attributes, and the
/// following item through its closing brace or semicolon).
fn strip_test_items(toks: Vec<Tok>) -> Vec<Tok> {
    let mut keep = vec![true; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')')
            && toks[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further stacked attributes.
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            j = matching_close(&toks, j + 1, '[', ']') + 1;
        }
        // Skip the item itself: through a top-level `;` or a brace block.
        let mut brace = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                brace += 1;
            } else if toks[j].is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    j += 1;
                    break;
                }
            } else if toks[j].is_punct(';') && brace == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        for k in keep.iter_mut().take(j.min(toks.len())).skip(start) {
            *k = false;
        }
        i = j;
    }
    toks.into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

/// All function items in the token stream (module level and inside
/// `impl` blocks; bodies of earlier functions are skipped, so nested
/// helper fns are not double-reported).
pub fn functions(toks: &[Tok]) -> Vec<Func> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("fn") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Find the parameter list. Generic params in this workspace never
        // contain parentheses, so the first `(` opens the parameters.
        let mut j = i + 2;
        let mut ok = true;
        while j < toks.len() && !toks[j].is_punct('(') {
            if toks[j].is_punct('{') || toks[j].is_punct(';') {
                ok = false;
                break;
            }
            j += 1;
        }
        if !ok || j >= toks.len() {
            i += 1;
            continue;
        }
        let params_close = matching_close(toks, j, '(', ')');
        // Find the body: first `{` before any `;` ends the signature.
        let mut k = params_close + 1;
        let mut body = (params_close + 1, params_close + 1);
        while k < toks.len() {
            if toks[k].is_punct('{') {
                let close = matching_close(toks, k, '{', '}');
                body = (k + 1, close);
                k = close;
                break;
            }
            if toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        out.push(Func {
            name,
            params: (j + 1, params_close),
            body,
            line,
        });
        i = k.max(i + 2);
    }
    out
}

/// All `match` expressions whose `match` keyword lies in `[start, end)`.
/// Nested matches are reported separately (their arms also appear inside
/// the outer match's arm bodies).
pub fn matches_in(toks: &[Tok], start: usize, end: usize) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        if !toks[i].is_ident("match") {
            continue;
        }
        // Exclude `.match` field access (not valid Rust anyway) and the
        // `matches!` macro (different identifier, but be safe).
        if i > 0 && toks[i - 1].is_punct('.') {
            continue;
        }
        // Scrutinee runs to the first `{` outside parens/brackets.
        let mut p = 0i32;
        let mut b = 0i32;
        let mut open = None;
        for (j, t) in toks
            .iter()
            .enumerate()
            .take(end.min(toks.len()))
            .skip(i + 1)
        {
            if t.is_punct('(') {
                p += 1;
            } else if t.is_punct(')') {
                p -= 1;
            } else if t.is_punct('[') {
                b += 1;
            } else if t.is_punct(']') {
                b -= 1;
            } else if t.is_punct('{') && p == 0 && b == 0 {
                open = Some(j);
                break;
            } else if t.is_punct(';') && p == 0 && b == 0 {
                break; // not a match expression after all
            }
        }
        let Some(open) = open else { continue };
        let close = matching_close(toks, open, '{', '}');
        let arms = parse_arms(toks, open + 1, close);
        out.push(MatchExpr {
            scrutinee: (i + 1, open),
            arms,
            line: toks[i].line,
        });
    }
    out
}

/// Parse the arms between a match's braces.
fn parse_arms(toks: &[Tok], start: usize, end: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        while i < end && toks[i].is_punct(',') {
            i += 1;
        }
        if i >= end {
            break;
        }
        let pat_start = i;
        // Pattern (and optional guard) runs to `=>` at depth 0.
        let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
        let mut fat = None;
        while i < end {
            let t = &toks[i];
            if t.is_punct('(') {
                p += 1;
            } else if t.is_punct(')') {
                p -= 1;
            } else if t.is_punct('[') {
                b += 1;
            } else if t.is_punct(']') {
                b -= 1;
            } else if t.is_punct('{') {
                c += 1;
            } else if t.is_punct('}') {
                c -= 1;
            } else if t.is_punct('=')
                && p == 0
                && b == 0
                && c == 0
                && i + 1 < end
                && toks[i + 1].is_punct('>')
            {
                fat = Some(i);
                break;
            }
            i += 1;
        }
        let Some(fat) = fat else { break };
        let body_start = fat + 2;
        let body_end = if body_start < end && toks[body_start].is_punct('{') {
            matching_close(toks, body_start, '{', '}') + 1
        } else {
            let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
            let mut j = body_start;
            while j < end {
                let t = &toks[j];
                if t.is_punct('(') {
                    p += 1;
                } else if t.is_punct(')') {
                    p -= 1;
                } else if t.is_punct('[') {
                    b += 1;
                } else if t.is_punct(']') {
                    b -= 1;
                } else if t.is_punct('{') {
                    c += 1;
                } else if t.is_punct('}') {
                    c -= 1;
                } else if t.is_punct(',') && p == 0 && b == 0 && c == 0 {
                    break;
                }
                j += 1;
            }
            j
        };
        arms.push(Arm {
            pat: (pat_start, fat),
            body: (body_start, body_end.min(end)),
            line: toks[pat_start].line,
        });
        i = body_end.max(fat + 2);
    }
    arms
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(Path::new("t.rs"), src)
    }

    #[test]
    fn test_items_are_stripped() {
        let f = file(
            "fn prod() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn t() { y.expect(\"e\"); } }\n\
             fn prod2() {}",
        );
        let fns = functions(&f.toks);
        let names: Vec<_> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["prod", "prod2"]);
        assert!(!f.toks.iter().any(|t| t.is_ident("expect")));
    }

    #[test]
    fn functions_and_bodies() {
        let f = file("impl X { fn a(&self, n: u64) -> bool { n > 0 } fn b() {} }");
        let fns = functions(&f.toks);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        let (s, e) = fns[0].body;
        assert!(f.toks[s..e].iter().any(|t| t.is_ident("n")));
    }

    #[test]
    fn match_arms_parse() {
        let f = file(
            "fn d(m: Msg) { match m { Msg::A { x } if x > 0 => go(x), Msg::B => {} , _ => {} } }",
        );
        let fns = functions(&f.toks);
        let ms = matches_in(&f.toks, fns[0].body.0, fns[0].body.1);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].arms.len(), 3);
        let last = &ms[0].arms[2];
        assert_eq!(last.pat.1 - last.pat.0, 1);
        assert!(f.toks[last.pat.0].is_ident("_"));
    }
}
