//! A small extracted IR shared by the interprocedural rules.
//!
//! The per-function syntactic passes (panic discipline, wildcard arms, …)
//! work directly on the token stream. The protocol / atomic / blocking
//! rules need more: which `Msg` variants a function constructs and where
//! they flow, which functions forward a `Msg` parameter into a fabric
//! send, which struct fields are atomics, and what the `OrderedMutex`
//! rank table declares. This module extracts those facts once per file
//! set; the rules then reason over the summaries plus a name-based call
//! graph (same resolution discipline as `lock_order`: merged by name,
//! cut at the shared blocklist).
//!
//! Pattern vs. expression position for `Enum::Variant` tokens is decided
//! structurally: match-arm patterns, `if let`/`while let`/plain-`let`
//! destructuring patterns, and the second argument of `matches!` are
//! pattern ranges; every occurrence outside one is a construction.

use crate::lexer::{Tok, TokKind};
use crate::parser::{functions, matches_in, matching_close, SourceFile};
use crate::rules::lock_order::CALL_BLOCKLIST;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

/// Fabric/channel primitives a constructed message can be sent through.
pub const SEND_PRIMS: &[&str] = &["send", "try_send"];

/// Direct blocking primitives for the dispatcher rule.
pub const BLOCKING_PRIMS: &[&str] = &["sleep", "recv_timeout", "wait", "wait_for"];

/// One enum declaration.
#[derive(Debug)]
pub struct EnumInfo {
    /// File declaring it.
    pub file: PathBuf,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their declaration lines.
    pub variants: Vec<(String, u32)>,
}

/// A named call site inside one function body.
#[derive(Debug)]
pub struct CallSite {
    /// Callee identifier.
    pub name: String,
    /// Line of the callee token.
    pub line: u32,
    /// Identifier arguments at the top nesting level of the call.
    pub top_idents: Vec<String>,
}

/// One `Enum::Variant` occurrence in expression position.
#[derive(Debug)]
pub struct ConstructSite {
    /// Enum name.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Source line.
    pub line: u32,
    /// Names of calls whose argument parentheses enclose this site.
    pub enclosing_calls: Vec<String>,
    /// `let NAME = <this construction>…` binding, when present.
    pub let_bound: Option<String>,
}

/// One `Enum::Variant` occurrence in pattern position.
#[derive(Debug)]
pub struct PatternSite {
    /// Enum name.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// Source line.
    pub line: u32,
    /// A narrow pattern names at most [`NARROW_ARM_MAX`] variants of the
    /// enum (match arm) or is inherently specific (`if let`, `matches!`).
    /// Wide or-arms (journaling/forwarding matches) are not dispatch
    /// evidence.
    pub narrow: bool,
}

/// A match arm naming more than this many variants of one enum is a
/// forwarding/journaling arm, not a dispatch arm.
pub const NARROW_ARM_MAX: usize = 3;

/// Interprocedural summary of one function definition.
#[derive(Debug, Default)]
pub struct FnInfo {
    /// Defining file.
    pub file: PathBuf,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Callees by name (blocklist-filtered, like the lock analysis).
    pub callees: BTreeSet<String>,
    /// All named call sites (unfiltered names, for argument threading).
    pub calls: Vec<CallSite>,
    /// Audited-enum variant constructions.
    pub constructs: Vec<ConstructSite>,
    /// Audited-enum variant pattern occurrences.
    pub patterns: Vec<PatternSite>,
    /// Direct blocking-primitive call sites (spawned closures excluded).
    pub blocking: Vec<(String, u32)>,
    /// Body contains a raw `send`/`try_send` call.
    pub raw_send: bool,
    /// Signature takes a `Msg`-typed parameter (forwarder candidate).
    pub msg_param: bool,
    /// Body mentions a retry/timeout/backoff mechanism.
    pub retry_marker: bool,
}

/// Extracted IR over a file set.
#[derive(Debug, Default)]
pub struct Ir {
    /// Function summaries. Same-name definitions are kept separately and
    /// merged by the rules where merging over-approximates safely.
    pub fns: Vec<(String, FnInfo)>,
    /// Audited enum declarations by name.
    pub enums: BTreeMap<String, EnumInfo>,
    /// Declared request→ack pairs (`gt-lint: pair(Req -> Ack)`).
    pub pairs: Vec<(String, String)>,
}

impl Ir {
    /// Inverse call graph: callee name → caller names.
    pub fn callers(&self) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut out: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, fi) in &self.fns {
            for c in &fi.callees {
                out.entry(c.as_str()).or_default().insert(name.as_str());
            }
        }
        out
    }

    /// Forward call graph: caller name → callee names.
    pub fn callees(&self) -> BTreeMap<&str, BTreeSet<&str>> {
        let mut out: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, fi) in &self.fns {
            let e = out.entry(name.as_str()).or_default();
            e.extend(fi.callees.iter().map(|s| s.as_str()));
        }
        out
    }
}

/// Reachability closure of `roots` over `graph` (roots included).
pub fn closure<'a>(
    roots: impl IntoIterator<Item = &'a str>,
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> BTreeSet<&'a str> {
    let mut seen: BTreeSet<&str> = roots.into_iter().collect();
    let mut work: Vec<&str> = seen.iter().copied().collect();
    while let Some(n) = work.pop() {
        for &next in graph.get(n).into_iter().flatten() {
            if seen.insert(next) {
                work.push(next);
            }
        }
    }
    seen
}

/// Extract the IR for `files`, auditing the enums named in `audited`.
pub fn extract(files: &[&SourceFile], audited: &[&str]) -> Ir {
    let mut ir = Ir::default();
    // Pass 1: enum declarations and pair directives.
    for f in files {
        for (name, info) in enum_decls(f) {
            if audited.contains(&name.as_str()) {
                ir.enums.insert(name, info);
            }
        }
        for p in &f.pairs {
            ir.pairs.push((p.request.clone(), p.ack.clone()));
        }
    }
    // Pass 2: function summaries (need the variant sets from pass 1).
    for f in files {
        for func in functions(&f.toks) {
            let fi = analyze_fn(f, func.params, func.body, func.line, &ir.enums);
            ir.fns.push((func.name, fi));
        }
    }
    ir
}

/// All enum declarations in one file.
pub fn enum_decls(f: &SourceFile) -> Vec<(String, EnumInfo)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !toks[i].is_ident("enum") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i += 1;
            continue;
        }
        let close = matching_close(toks, j, '{', '}');
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Skip attributes on the variant.
            while k + 1 < close && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                k = matching_close(toks, k + 1, '[', ']') + 1;
            }
            if k >= close {
                break;
            }
            if toks[k].kind == TokKind::Ident {
                variants.push((toks[k].text.clone(), toks[k].line));
            }
            // Advance past this variant: its payload braces/parens, any
            // discriminant, up to the separating comma.
            let mut depth = 0i32;
            while k < close {
                let t = &toks[k];
                if t.is_punct('{') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    k += 1;
                    break;
                }
                k += 1;
            }
        }
        out.push((
            name,
            EnumInfo {
                file: f.path.clone(),
                line,
                variants,
            },
        ));
        i = close;
    }
    out
}

/// Retry/timeout vocabulary: an identifier mentioning any of these marks
/// the function as participating in a retry/timeout mechanism.
const RETRY_STEMS: &[&str] = &["retry", "backoff", "deadline", "renudge"];
const RETRY_IDENTS: &[&str] = &["recv_timeout", "elapsed", "retransmit"];

fn analyze_fn(
    f: &SourceFile,
    params: (usize, usize),
    body: (usize, usize),
    line: u32,
    enums: &BTreeMap<String, EnumInfo>,
) -> FnInfo {
    let toks = &f.toks;
    let mut fi = FnInfo {
        file: f.path.clone(),
        line,
        ..FnInfo::default()
    };
    fi.msg_param = toks[params.0..params.1.min(toks.len())]
        .iter()
        .any(|t| t.is_ident("Msg"));

    let (s, e) = (body.0, body.1.min(toks.len()));
    let pattern_ranges = pattern_ranges(toks, s, e);
    let in_pattern = |i: usize| pattern_ranges.iter().any(|&(a, b, _)| a <= i && i < b);
    let narrow_at = |i: usize| {
        pattern_ranges
            .iter()
            .find(|&&(a, b, _)| a <= i && i < b)
            .map(|&(_, _, narrow)| narrow)
            .unwrap_or(false)
    };

    // Call sites with argument ranges (for enclosing-call resolution).
    let mut calls: Vec<(String, usize, usize, u32)> = Vec::new();
    // Spawned-closure ranges: code inside runs on another thread, so it
    // is not part of this function for blocking-reachability purposes.
    let mut spawn_ranges: Vec<(usize, usize)> = Vec::new();

    let mut i = s;
    while i < e {
        let t = &toks[i];
        if t.kind == TokKind::Ident && i + 1 < e && toks[i + 1].is_punct('(') {
            let close = matching_close(toks, i + 1, '(', ')');
            if t.is_ident("spawn") {
                spawn_ranges.push((i + 1, close));
            } else if !matches!(
                t.text.as_str(),
                "if" | "while" | "for" | "match" | "matches" | "return" | "fn"
            ) {
                calls.push((t.text.clone(), i + 1, close, t.line));
            }
        }
        i += 1;
    }
    let in_spawn = |i: usize| spawn_ranges.iter().any(|&(a, b)| a <= i && i < b);

    for (name, open, close, cline) in &calls {
        let mut top_idents = Vec::new();
        let mut depth = 0i32;
        for t in toks.iter().take((*close).min(e)).skip(*open + 1) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokKind::Ident {
                top_idents.push(t.text.clone());
            }
        }
        fi.calls.push(CallSite {
            name: name.clone(),
            line: *cline,
            top_idents,
        });
        if SEND_PRIMS.contains(&name.as_str()) {
            fi.raw_send = true;
        }
        if !CALL_BLOCKLIST.contains(&name.as_str()) {
            fi.callees.insert(name.clone());
        }
    }

    // Token sweep: variant occurrences, blocking sites, retry markers.
    let mut i = s;
    while i < e {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let lower = t.text.to_ascii_lowercase();
            if RETRY_IDENTS.contains(&t.text.as_str())
                || RETRY_STEMS.iter().any(|st| lower.contains(st))
            {
                fi.retry_marker = true;
            }
            if BLOCKING_PRIMS.contains(&t.text.as_str())
                && i + 1 < e
                && toks[i + 1].is_punct('(')
                && !in_spawn(i)
            {
                fi.blocking.push((t.text.clone(), t.line));
            }
            // `Enum :: Variant` against a declared variant set.
            if enums.contains_key(&t.text)
                && i + 3 < e
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
                && toks[i + 3].kind == TokKind::Ident
            {
                let variant = &toks[i + 3].text;
                let known = enums[&t.text].variants.iter().any(|(v, _)| v == variant);
                if known {
                    if in_pattern(i) {
                        fi.patterns.push(PatternSite {
                            enum_name: t.text.clone(),
                            variant: variant.clone(),
                            line: toks[i + 3].line,
                            narrow: narrow_at(i),
                        });
                    } else {
                        let enclosing_calls = calls
                            .iter()
                            .filter(|(_, open, close, _)| *open < i && i < *close)
                            .map(|(n, _, _, _)| n.clone())
                            .collect();
                        fi.constructs.push(ConstructSite {
                            enum_name: t.text.clone(),
                            variant: variant.clone(),
                            line: toks[i + 3].line,
                            enclosing_calls,
                            let_bound: let_binding_back(toks, i, s),
                        });
                    }
                }
                i += 4;
                continue;
            }
        }
        i += 1;
    }
    fi
}

/// Pattern ranges `(start, end, narrow)` within `[s, e)`: match-arm
/// patterns, `if let`/`while let`/plain-`let` patterns, and the pattern
/// argument of `matches!`.
fn pattern_ranges(toks: &[Tok], s: usize, e: usize) -> Vec<(usize, usize, bool)> {
    let mut out = Vec::new();
    // Match arms: narrow iff the arm names few distinct variants.
    for m in matches_in(toks, s, e) {
        for arm in &m.arms {
            let mut named: BTreeSet<(String, String)> = BTreeSet::new();
            let mut i = arm.pat.0;
            while i + 3 < arm.pat.1 {
                if toks[i].kind == TokKind::Ident
                    && toks[i + 1].is_punct(':')
                    && toks[i + 2].is_punct(':')
                    && toks[i + 3].kind == TokKind::Ident
                {
                    named.insert((toks[i].text.clone(), toks[i + 3].text.clone()));
                    i += 4;
                    continue;
                }
                i += 1;
            }
            out.push((arm.pat.0, arm.pat.1, named.len() <= NARROW_ARM_MAX));
        }
    }
    // `if let` / `while let` / plain destructuring `let`: pattern runs
    // from after `let` to the first `=` at bracket depth 0.
    let mut i = s;
    while i < e {
        if toks[i].is_ident("let") {
            let start = i + 1;
            let (mut p, mut b) = (0i32, 0i32);
            let mut j = start;
            let mut eq = None;
            while j < e {
                let t = &toks[j];
                if t.is_punct('(') {
                    p += 1;
                } else if t.is_punct(')') {
                    p -= 1;
                } else if t.is_punct('[') {
                    b += 1;
                } else if t.is_punct(']') {
                    b -= 1;
                } else if t.is_punct('=') && p == 0 && b == 0 {
                    eq = Some(j);
                    break;
                } else if (t.is_punct(';') || t.is_punct('{')) && p == 0 && b == 0 {
                    break;
                }
                j += 1;
            }
            if let Some(eq) = eq {
                out.push((start, eq, true));
                i = eq;
                continue;
            }
        }
        // `matches!(scrutinee, PATTERN)`: pattern is after the first
        // top-level comma.
        if toks[i].is_ident("matches")
            && i + 2 < e
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('(')
        {
            let close = matching_close(toks, i + 2, '(', ')');
            let mut depth = 0i32;
            for (j, t) in toks.iter().enumerate().take(close.min(e)).skip(i + 3) {
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(',') && depth == 0 {
                    out.push((j + 1, close, true));
                    break;
                }
            }
            i = close;
            continue;
        }
        i += 1;
    }
    out
}

/// If the token at `i` begins the initializer of a `let` binding
/// (`let [mut] NAME = <expr-at-i>…`), return `NAME`. Walks back past
/// nothing — the construction must directly follow the `=`.
fn let_binding_back(toks: &[Tok], i: usize, body_start: usize) -> Option<String> {
    if i < body_start + 2 || !toks[i - 1].is_punct('=') {
        return None;
    }
    let name_idx = i - 2;
    if toks[name_idx].kind != TokKind::Ident {
        return None;
    }
    let mut k = name_idx;
    if k > body_start && toks[k - 1].is_ident("mut") {
        k -= 1;
    }
    if k > body_start && toks[k - 1].is_ident("let") {
        return Some(toks[name_idx].text.clone());
    }
    None
}

/// One `OrderedMutex::new(rank, "name", …)` construction site. The lexer
/// drops string contents, so the lock name is taken from the struct-field
/// initializer context (`name: OrderedMutex::new(…)`), which matches the
/// string in this workspace by construction.
#[derive(Debug)]
pub struct RankedLock {
    /// Field (= lock) name.
    pub name: String,
    /// Declared rank.
    pub rank: u64,
    /// File of the construction.
    pub file: PathBuf,
    /// Line of the construction.
    pub line: u32,
}

/// Harvest the `OrderedMutex` rank table from construction sites.
pub fn ranked_locks(files: &[&SourceFile]) -> Vec<RankedLock> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.toks;
        for i in 0..toks.len().saturating_sub(6) {
            if toks[i].kind == TokKind::Ident
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_ident("OrderedMutex")
                && toks[i + 3].is_punct(':')
                && toks[i + 4].is_punct(':')
                && toks[i + 5].is_ident("new")
                && toks[i + 6].is_punct('(')
                && i + 7 < toks.len()
                && toks[i + 7].kind == TokKind::Num
            {
                if let Ok(rank) = toks[i + 7].text.parse::<u64>() {
                    out.push(RankedLock {
                        name: toks[i].text.clone(),
                        rank,
                        file: f.path.clone(),
                        line: toks[i].line,
                    });
                }
            }
        }
    }
    out
}

/// One atomic struct field.
#[derive(Debug)]
pub struct AtomicField {
    /// Declaring struct.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Declaring file.
    pub file: PathBuf,
    /// Declaration line.
    pub line: u32,
}

/// Harvest `Atomic*`-typed struct fields from declarations in `files`.
pub fn atomic_fields(files: &[&SourceFile]) -> Vec<AtomicField> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.toks;
        let mut i = 0usize;
        while i + 2 < toks.len() {
            if !toks[i].is_ident("struct") || toks[i + 1].kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let strukt = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                if toks[j].is_punct(';') || toks[j].is_punct('(') {
                    break; // unit or tuple struct
                }
                j += 1;
            }
            if j >= toks.len() || !toks[j].is_punct('{') {
                i += 2;
                continue;
            }
            let close = matching_close(toks, j, '{', '}');
            let mut k = j + 1;
            while k < close {
                // Field: IDENT `:` <type tokens> up to a depth-0 comma.
                while k + 1 < close && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                    k = matching_close(toks, k + 1, '[', ']') + 1;
                }
                if k + 1 >= close {
                    break;
                }
                let field_ok = toks[k].kind == TokKind::Ident
                    && toks[k + 1].is_punct(':')
                    && !(k + 2 < close && toks[k + 2].is_punct(':'));
                if !field_ok {
                    k += 1;
                    continue;
                }
                let (field, fline) = (toks[k].text.clone(), toks[k].line);
                let mut depth = 0i32;
                let mut is_atomic = false;
                let mut m = k + 2;
                while m < close {
                    let t = &toks[m];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct(')')
                        || t.is_punct(']')
                        || t.is_punct('}')
                        || t.is_punct('>')
                    {
                        depth -= 1;
                    } else if t.is_punct(',') && depth <= 0 {
                        break;
                    }
                    if t.kind == TokKind::Ident && t.text.starts_with("Atomic") {
                        is_atomic = true;
                    }
                    m += 1;
                }
                if is_atomic {
                    out.push(AtomicField {
                        strukt: strukt.clone(),
                        field,
                        file: f.path.clone(),
                        line: fline,
                    });
                }
                k = m + 1;
            }
            i = close;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_source(Path::new("t.rs"), src)
    }

    #[test]
    fn constructions_and_patterns_are_separated() {
        let f = file(
            "enum Msg { A { x: u64 }, B, C }\n\
             fn send_side(ep: &Ep) { ep.send(0, Msg::A { x: 1 }); }\n\
             fn recv_side(m: Msg) { match m { Msg::A { x } => go(x), _ => {} } }\n\
             fn probe(m: &Msg) -> bool { matches!(m, Msg::B) }",
        );
        let ir = extract(&[&f], &["Msg"]);
        let all_constructs: Vec<_> = ir
            .fns
            .iter()
            .flat_map(|(_, fi)| fi.constructs.iter())
            .map(|c| c.variant.as_str())
            .collect();
        assert_eq!(all_constructs, vec!["A"]);
        let pats: Vec<_> = ir
            .fns
            .iter()
            .flat_map(|(_, fi)| fi.patterns.iter())
            .map(|p| (p.variant.as_str(), p.narrow))
            .collect();
        assert!(pats.contains(&("A", true)));
        assert!(pats.contains(&("B", true)));
    }

    #[test]
    fn wide_or_arms_are_not_narrow() {
        let f = file(
            "enum Msg { A, B, C, D, E }\n\
             fn forward(m: &Msg) { match m {\n\
               Msg::A | Msg::B | Msg::C | Msg::D => relay(m),\n\
               Msg::E => handle_e(),\n\
             } }",
        );
        let ir = extract(&[&f], &["Msg"]);
        let pats: Vec<_> = ir
            .fns
            .iter()
            .flat_map(|(_, fi)| fi.patterns.iter())
            .map(|p| (p.variant.as_str(), p.narrow))
            .collect();
        assert!(pats.contains(&("A", false)));
        assert!(pats.contains(&("E", true)));
    }

    #[test]
    fn enclosing_calls_and_let_bindings_thread_sends() {
        let f = file(
            "enum Msg { A, B }\n\
             fn f(ep: &Ep) { let m = Msg::A; ep.send(0, m); send_travel(ep, Msg::B); }",
        );
        let ir = extract(&[&f], &["Msg"]);
        let fi = &ir.fns.iter().find(|(n, _)| n == "f").unwrap().1;
        let a = fi.constructs.iter().find(|c| c.variant == "A").unwrap();
        assert_eq!(a.let_bound.as_deref(), Some("m"));
        let b = fi.constructs.iter().find(|c| c.variant == "B").unwrap();
        assert!(b.enclosing_calls.contains(&"send_travel".to_string()));
        assert!(fi.raw_send);
    }

    #[test]
    fn rank_table_and_atomic_fields_harvest() {
        let f = file(
            "struct Shared { q: OrderedMutex<Vec<u64>>, stop: AtomicBool }\n\
             fn mk() -> Shared { Shared { q: OrderedMutex::new(10, \"q\", Vec::new()),\n\
               stop: AtomicBool::new(false) } }",
        );
        let locks = ranked_locks(&[&f]);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].name, "q");
        assert_eq!(locks[0].rank, 10);
        let fields = atomic_fields(&[&f]);
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].strukt, "Shared");
        assert_eq!(fields[0].field, "stop");
    }

    #[test]
    fn blocking_sites_skip_spawned_closures() {
        let f = file(
            "fn h() { spawn(move || { sleep(D); }); x.recv_timeout(D); }\n\
             fn ok() { work(); }",
        );
        let ir = extract(&[&f], &[]);
        let h = &ir.fns.iter().find(|(n, _)| n == "h").unwrap().1;
        let names: Vec<_> = h.blocking.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["recv_timeout"]);
    }
}
