//! gt-lint — workspace-native static analysis for GraphTrek's concurrency
//! and protocol invariants.
//!
//! The rule families (see [`diag::ALL_RULES`]):
//!
//! | rule | enforces |
//! |------|----------|
//! | `lock-cycle` | no cycles in the static lock-acquisition graph |
//! | `guard-across-channel` | no guard live across a blocking `send`/`recv` |
//! | `wildcard-arm` | no silent `_ =>` arms in protocol dispatch |
//! | `unhandled-variant` | every `Msg`/`LedgerEvent` variant matched by name |
//! | `epoch-fence` | travel-scoped handlers fence before mutating |
//! | `panic` | no `unwrap`/`expect`/`panic!` in hot paths |
//! | `dead-counter`, `unsurfaced-counter` | every metrics counter incremented and surfaced |
//! | `protocol-conformance` | sent `Msg` variants dispatched; request→ack pairs acked + retried; no dead variants |
//! | `guard-across-send` | no ranked `OrderedMutex` guard live across a fabric send, interprocedurally |
//! | `atomic-ordering` | no `Relaxed` on handshake atomics (counters exempt) |
//! | `blocking-in-dispatcher` | nothing reachable from `handle_*` blocks the dispatcher |
//! | `bare-allow` | every `allow(...)` escape hatch carries a reason |
//!
//! The crate is self-contained (own lexer + shallow parser, no
//! dependencies) so it runs in the offline workspace. Diagnostics can be
//! suppressed line-by-line with `// gt-lint: allow(<rule>, "reason")` on
//! the offending line or the line above; the reason string is mandatory
//! (`bare-allow`). The protocol rules additionally read
//! `// gt-lint: pair(Req -> Ack)` directives declaring request→ack
//! pairings the `*Ack` naming convention cannot infer.

#![warn(missing_docs)]

pub mod diag;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use diag::{Diagnostic, ALL_RULES};

use parser::SourceFile;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to lint.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Audit the workspace rooted at this directory with the per-rule file
    /// sets the rules were designed for (server/cluster/queue for lock
    /// analysis, hot-path crates for panic hygiene, …).
    Workspace(PathBuf),
    /// Audit exactly these files (directories are walked for `*.rs`),
    /// applying every enabled rule to every file. Used for fixtures and
    /// for the nightly pass over `examples/` and `tests/`.
    Files(Vec<PathBuf>),
}

/// Hot-path files within `crates/core/src` for the `panic` rule. The
/// query layer (`lang`, `parse`, `oracle`) is exempt: it runs client-side
/// before submission, where a panic cannot kill a server thread.
const CORE_HOT: &[&str] = &[
    "server.rs",
    "cluster.rs",
    "coordinator.rs",
    "queue.rs",
    "message.rs",
    "metrics.rs",
    "cache.rs",
    "engine.rs",
    "faults.rs",
    "lib.rs",
];

/// Run the enabled rules and return unsuppressed diagnostics sorted by
/// file/line. `enabled` holds rule names from [`ALL_RULES`].
pub fn run(mode: &Mode, enabled: &BTreeSet<String>) -> Result<Vec<Diagnostic>, String> {
    let files = collect_files(mode)?;
    let mut parsed = Vec::new();
    for path in &files {
        let sf = SourceFile::read(path)
            .map_err(|e| format!("gt-lint: cannot read {}: {e}", path.display()))?;
        parsed.push(sf);
    }
    let sets = match mode {
        Mode::Workspace(_) => workspace_sets(&parsed),
        Mode::Files(_) => FileSets::all(&parsed),
    };

    let on = |rule: &str| enabled.contains(rule);
    let mut diags = Vec::new();
    if on("lock-cycle") || on("guard-across-channel") {
        let mut d = rules::lock_order::check(&sets.lock);
        d.retain(|d| on(d.rule));
        diags.extend(d);
    }
    if on("wildcard-arm") || on("unhandled-variant") {
        let mut d = rules::dispatch::check(&sets.dispatch);
        d.retain(|d| on(d.rule));
        diags.extend(d);
    }
    if on("epoch-fence") {
        diags.extend(rules::epoch_fence::check(&sets.fence));
    }
    if on("panic") {
        diags.extend(rules::panic_hygiene::check(&sets.panic));
    }
    if on("dead-counter") || on("unsurfaced-counter") {
        let mut d = rules::metrics_discipline::check(&sets.metrics_decl, &sets.metrics_use);
        d.retain(|d| on(d.rule));
        diags.extend(d);
    }
    if on("protocol-conformance") {
        diags.extend(rules::protocol::check(&sets.protocol));
    }
    if on("guard-across-send") {
        diags.extend(rules::guard_send::check(&sets.guard_send));
    }
    if on("atomic-ordering") {
        diags.extend(rules::atomic_ordering::check(&sets.atomic));
    }
    if on("blocking-in-dispatcher") {
        diags.extend(rules::blocking::check(&sets.blocking));
    }
    if on("bare-allow") {
        for f in &parsed {
            for a in f.allows.iter().filter(|a| !a.has_reason) {
                diags.push(Diagnostic::new(
                    "bare-allow",
                    &f.path,
                    a.line,
                    format!("`allow({})` has no reason string", a.rule),
                    "every escape hatch must say why it is safe: \
                     `// gt-lint: allow(rule, \"reason\")`",
                ));
            }
        }
    }

    // Allow-comment suppression: an allow on line L covers L and L+1.
    diags.retain(|d| {
        !parsed.iter().any(|f| {
            f.path == d.file
                && f.allows
                    .iter()
                    .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line))
        })
    });
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

/// Per-rule file subsets (borrowing from the parsed set).
struct FileSets<'a> {
    lock: Vec<&'a SourceFile>,
    dispatch: Vec<&'a SourceFile>,
    fence: Vec<&'a SourceFile>,
    panic: Vec<&'a SourceFile>,
    metrics_decl: Vec<&'a SourceFile>,
    metrics_use: Vec<&'a SourceFile>,
    protocol: Vec<&'a SourceFile>,
    guard_send: Vec<&'a SourceFile>,
    atomic: Vec<&'a SourceFile>,
    blocking: Vec<&'a SourceFile>,
}

impl<'a> FileSets<'a> {
    /// Every rule sees every file (fixture mode).
    fn all(parsed: &'a [SourceFile]) -> FileSets<'a> {
        let all: Vec<&SourceFile> = parsed.iter().collect();
        FileSets {
            lock: all.clone(),
            dispatch: all.clone(),
            fence: all.clone(),
            panic: all.clone(),
            metrics_decl: all.clone(),
            protocol: all.clone(),
            guard_send: all.clone(),
            atomic: all.clone(),
            blocking: all.clone(),
            metrics_use: all,
        }
    }
}

fn ends_with(p: &Path, suffix: &str) -> bool {
    p.to_string_lossy().replace('\\', "/").ends_with(suffix)
}

fn workspace_sets(parsed: &[SourceFile]) -> FileSets<'_> {
    let pick = |pred: &dyn Fn(&Path) -> bool| -> Vec<&SourceFile> {
        parsed.iter().filter(|f| pred(&f.path)).collect()
    };
    FileSets {
        lock: pick(&|p| {
            ["server.rs", "cluster.rs", "queue.rs"]
                .iter()
                .any(|n| ends_with(p, &format!("crates/core/src/{n}")))
        }),
        // Dispatch audit spans every crate that matches on a wire enum:
        // the fabric protocol (core), the client↔server proto frames
        // (proto, client), and the socket mesh + door (transport, core).
        dispatch: pick(&|p| {
            let s = p.to_string_lossy().replace('\\', "/");
            ends_with(p, ".rs")
                && [
                    "core/src",
                    "proto/src",
                    "client/src",
                    "server/src",
                    "transport/src",
                ]
                .iter()
                .any(|d| s.contains(d))
        }),
        fence: pick(&|p| ends_with(p, "crates/core/src/server.rs")),
        panic: pick(&|p| {
            CORE_HOT
                .iter()
                .any(|n| ends_with(p, &format!("crates/core/src/{n}")))
                || p.to_string_lossy()
                    .replace('\\', "/")
                    .contains("crates/net/src/")
        }),
        metrics_decl: pick(&|p| {
            ends_with(p, "crates/core/src/metrics.rs") || ends_with(p, "crates/net/src/stats.rs")
        }),
        metrics_use: pick(&|_| true),
        // The whole protocol surface: every sender and dispatcher lives in
        // core/src (clients in cluster.rs, servers in server.rs).
        protocol: pick(&|p| ends_with(p, ".rs") && p.to_string_lossy().contains("core/src")),
        // Server data plane only: client-side orchestration (cluster.rs)
        // holds the failover lock across handoff round-trips by design —
        // see the rule's module docs for the rationale.
        guard_send: pick(&|p| {
            ends_with(p, ".rs")
                && p.to_string_lossy().contains("core/src")
                && !ends_with(p, "cluster.rs")
        }),
        // Handshake atomics live in core (wseq/applied_w barriers, crash
        // flags), net (fabric stats), and kvstore (version clock, pins).
        atomic: pick(&|p| {
            let s = p.to_string_lossy().replace('\\', "/");
            s.contains("crates/core/src/")
                || s.contains("crates/net/src/")
                || s.contains("crates/kvstore/src/")
        }),
        blocking: pick(&|p| ends_with(p, "crates/core/src/server.rs")),
    }
}

/// Resolve the mode to a concrete file list.
fn collect_files(mode: &Mode) -> Result<Vec<PathBuf>, String> {
    match mode {
        Mode::Workspace(root) => {
            let mut out = Vec::new();
            for dir in [
                "crates/core/src",
                "crates/net/src",
                "crates/kvstore/src",
                "crates/transport/src",
                "crates/proto/src",
                "crates/server/src",
                "crates/client/src",
            ] {
                let d = root.join(dir);
                let mut files = rs_files_in(&d)
                    .map_err(|e| format!("gt-lint: cannot walk {}: {e}", d.display()))?;
                files.sort();
                out.extend(files);
            }
            if out.is_empty() {
                return Err(format!(
                    "gt-lint: no sources under {} (wrong --root?)",
                    root.display()
                ));
            }
            Ok(out)
        }
        Mode::Files(paths) => {
            let mut out = Vec::new();
            for p in paths {
                if p.is_dir() {
                    let mut files = rs_files_in(p)
                        .map_err(|e| format!("gt-lint: cannot walk {}: {e}", p.display()))?;
                    files.sort();
                    out.extend(files);
                } else if p.is_file() {
                    out.push(p.clone());
                } else {
                    return Err(format!("gt-lint: no such path: {}", p.display()));
                }
            }
            Ok(out)
        }
    }
}

/// All `*.rs` files under `dir`, recursively.
fn rs_files_in(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    Ok(out)
}
