//! CLI for gt-lint.
//!
//! ```text
//! gt-lint [--deny all] [--rules r1,r2,...] [--root DIR] [--format F] [PATH...]
//! ```
//!
//! With no paths, audits the workspace (rooted at `--root`, default `.`)
//! with the per-rule file sets. With paths, audits exactly those files —
//! used for fixtures and the per-push pass over `examples/` and `tests/`.
//!
//! `--format` selects the output: `text` (default, human-readable),
//! `json` (stable machine-readable array), `sarif` (SARIF 2.1.0 log),
//! or `github` (GitHub Actions `::error` annotations).
//!
//! Exit codes: 0 clean (or findings without `--deny all`), 1 denied
//! findings, 2 usage/IO error.

use gt_lint::diag::{render_github, render_json, render_sarif};
use gt_lint::{run, Mode, ALL_RULES};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
    Github,
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut rules: BTreeSet<String> = ALL_RULES.iter().map(|s| s.to_string()).collect();
    let mut root = PathBuf::from(".");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut format = Format::Text;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => match args.next().as_deref() {
                Some("all") => deny_all = true,
                other => return usage(&format!("--deny expects `all`, got {other:?}")),
            },
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some("github") => Format::Github,
                    other => {
                        return usage(&format!(
                            "--format expects text|json|sarif|github, got {other:?}"
                        ))
                    }
                };
            }
            "--rules" => {
                let Some(list) = args.next() else {
                    return usage("--rules expects a comma-separated list");
                };
                rules.clear();
                for r in list.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    if !ALL_RULES.contains(&r) {
                        return usage(&format!(
                            "unknown rule `{r}` (known: {})",
                            ALL_RULES.join(", ")
                        ));
                    }
                    rules.insert(r.to_string());
                }
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    return usage("--root expects a directory");
                };
                root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => return usage(&format!("unknown flag `{flag}`")),
            path => paths.push(PathBuf::from(path)),
        }
    }

    let mode = if paths.is_empty() {
        Mode::Workspace(root)
    } else {
        Mode::Files(paths)
    };

    match run(&mode, &rules) {
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
        Ok(diags) => {
            match format {
                Format::Text => {
                    if diags.is_empty() {
                        println!("gt-lint: clean ({} rules)", rules.len());
                    } else {
                        for d in &diags {
                            println!("{d}");
                        }
                        println!("gt-lint: {} finding(s)", diags.len());
                    }
                }
                Format::Json => println!("{}", render_json(&diags)),
                Format::Sarif => println!("{}", render_sarif(&diags)),
                Format::Github => {
                    if !diags.is_empty() {
                        println!("{}", render_github(&diags));
                    }
                    println!("gt-lint: {} finding(s)", diags.len());
                }
            }
            if deny_all && !diags.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
    }
}

const USAGE: &str =
    "usage: gt-lint [--deny all] [--rules r1,r2,...] [--root DIR] [--format F] [PATH...]
  no PATHs: audit the workspace under --root (default `.`)
  PATHs:    audit exactly these files/dirs with every enabled rule
  --format: text (default) | json | sarif | github";

fn usage(msg: &str) -> ExitCode {
    eprintln!("gt-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
