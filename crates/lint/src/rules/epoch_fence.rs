//! Rule `epoch-fence`: travel-scoped message handlers must consult the
//! travel-epoch fence before mutating per-travel state.
//!
//! After a coordinator failover, stale messages from the previous epoch
//! keep arriving. Any `handle_*` function that takes a `travel: TravelId`
//! and *creates or modifies* per-travel state (`insert`, `entry`, `push`,
//! `extend`, scratch-ledger mutators, …) without first checking
//! `is_retired`/`travel_epoch` can resurrect a travel that the fence
//! already killed. Pure-cleanup handlers (`remove`/`retain` only) are
//! exempt — tearing state down is safe at any epoch. Mutations through a
//! guard of the fence's own bookkeeping locks (`peer_epoch`,
//! `travel_epoch`, `retired`) are exempt too: updating the fence *is* the
//! fence.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::{functions, SourceFile};

/// Method names that create or modify per-travel state. The trailing
/// entries are the scratch-ledger/sync-state mutators specific to this
/// workspace; the set is deliberately explicit so the rule's reach is
/// reviewable in one place.
const MUTATORS: &[&str] = &[
    "insert",
    "entry",
    "push",
    "push_many",
    "push_back",
    "extend",
    "extend_from_slice",
    "observe",
    "step_done",
    "add_results",
    "exec_created",
    "exec_terminated",
    "apply",
];

/// Locks that *are* the fence; mutating through their guards is exempt.
const FENCE_LOCKS: &[&str] = &["peer_epoch", "travel_epoch", "retired"];

/// Idents that count as consulting the fence.
const FENCE_CALLS: &[&str] = &["is_retired", "travel_epoch_of"];

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.toks;
        for func in functions(toks) {
            if !func.name.starts_with("handle_") || !takes_travel_id(toks, func.params) {
                continue;
            }
            let (s, e) = func.body;
            let fence_guards = fence_guard_names(toks, s, e);
            let consult_at = first_consult(toks, s, e);
            for i in s..e.min(toks.len()) {
                let t = &toks[i];
                let is_mutation = t.kind == TokKind::Ident
                    && MUTATORS.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && i + 1 < toks.len()
                    && toks[i + 1].is_punct('(');
                if !is_mutation {
                    continue;
                }
                if receiver_is_fence_state(toks, i, &fence_guards) {
                    continue;
                }
                if consult_at.map(|c| c < i) != Some(true) {
                    out.push(Diagnostic::new(
                        "epoch-fence",
                        &f.path,
                        t.line,
                        format!(
                            "`{}` mutates per-travel state via `.{}()` before consulting the \
                             travel-epoch fence",
                            func.name, t.text
                        ),
                        "check `sh.is_retired(travel)` / compare the travel epoch before \
                         mutating, or add `// gt-lint: allow(epoch-fence, \"why\")`",
                    ));
                    break; // one finding per handler is enough
                }
            }
        }
    }
    out
}

/// Does the parameter list contain `travel : TravelId`?
fn takes_travel_id(toks: &[Tok], params: (usize, usize)) -> bool {
    let (s, e) = params;
    (s..e.min(toks.len()).saturating_sub(2)).any(|i| {
        toks[i].is_ident("travel") && toks[i + 1].is_punct(':') && toks[i + 2].is_ident("TravelId")
    })
}

/// Token index of the first fence consult in the body, if any. A consult
/// is a call to a fence helper, or a comparison involving an identifier
/// that contains "epoch".
fn first_consult(toks: &[Tok], s: usize, e: usize) -> Option<usize> {
    for i in s..e.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if FENCE_CALLS.contains(&t.text.as_str()) {
            return Some(i);
        }
        if t.text.contains("epoch") && is_compared(toks, i) {
            return Some(i);
        }
    }
    None
}

/// Is the identifier at `i` adjacent to a comparison operator
/// (`==`, `!=`, `<`, `>`, `<=`, `>=`)?
fn is_compared(toks: &[Tok], i: usize) -> bool {
    let after = |j: usize| -> bool {
        if j >= toks.len() {
            return false;
        }
        let a = &toks[j];
        if a.is_punct('<') || a.is_punct('>') {
            // `<` could open generics, but inside a handler body a `<`
            // next to an epoch value is always a comparison.
            return true;
        }
        (a.is_punct('=') || a.is_punct('!')) && j + 1 < toks.len() && toks[j + 1].is_punct('=')
    };
    let before = |j: usize| -> bool {
        if j == 0 {
            return false;
        }
        let a = &toks[j - 1];
        if a.is_punct('<') || a.is_punct('>') {
            return true;
        }
        a.is_punct('=') && j >= 2 && (toks[j - 2].is_punct('=') || toks[j - 2].is_punct('!'))
    };
    // The ident may be a field chain: `r.epoch ==` / `== r.epoch`.
    after(i + 1) || before(i)
}

/// Names bound as guards of fence-state locks:
/// `let [mut] NAME = <chain>.{peer_epoch|travel_epoch|retired}.lock()...`.
fn fence_guard_names(toks: &[Tok], s: usize, e: usize) -> Vec<String> {
    let mut out: Vec<String> = FENCE_LOCKS.iter().map(|s| s.to_string()).collect();
    let mut i = s;
    while i + 3 < e.min(toks.len()) {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks[j].is_ident("mut") {
                j += 1;
            }
            if toks[j].kind == TokKind::Ident && j + 1 < e && toks[j + 1].is_punct('=') {
                let name = toks[j].text.clone();
                // Scan the initializer (to `;`) for a fence lock name.
                let mut k = j + 2;
                let mut is_fence = false;
                while k < e.min(toks.len()) && !toks[k].is_punct(';') {
                    if toks[k].kind == TokKind::Ident
                        && FENCE_LOCKS.contains(&toks[k].text.as_str())
                    {
                        is_fence = true;
                    }
                    k += 1;
                }
                if is_fence {
                    out.push(name);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Walk the receiver chain left from the mutator at `i` (`base.field.
/// lock().entry(` → `base`, `field`, …) and report whether any link is a
/// fence-state lock or a guard bound from one.
fn receiver_is_fence_state(toks: &[Tok], i: usize, fence_guards: &[String]) -> bool {
    // toks[i-1] is the `.`; walk left over `ident`/`)`/`]` + `.` links.
    let mut j = i - 1; // at '.'
    while j > 0 {
        let prev = &toks[j - 1];
        if prev.kind == TokKind::Ident {
            if fence_guards.iter().any(|g| g == &prev.text) {
                return true;
            }
            if j >= 2 && toks[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
            return false;
        }
        if prev.is_punct(')') || prev.is_punct(']') {
            // Skip the bracketed group to its opener, then continue left.
            let close = j - 1;
            let (open_ch, close_ch) = if prev.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0i32;
            let mut k = close;
            loop {
                if toks[k].is_punct(close_ch) {
                    depth += 1;
                } else if toks[k].is_punct(open_ch) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            // Before the opener there may be a call target `ident(`.
            if k >= 1 && toks[k - 1].kind == TokKind::Ident {
                if fence_guards.iter().any(|g| g == &toks[k - 1].text) {
                    return true;
                }
                if k >= 2 && toks[k - 2].is_punct('.') {
                    j = k - 2;
                    continue;
                }
            }
            return false;
        }
        return false;
    }
    false
}
