//! Rule `blocking-in-dispatcher`: functions reachable from the message
//! dispatcher must not block.
//!
//! The dispatcher thread is the server's only consumer of its fabric
//! inbox: a `sleep`, `recv_timeout`, or condvar `wait` anywhere in a
//! `handle_*`/`dispatch_msg` call chain stalls every message behind it —
//! including the relay acks whose absence then triggers retransmission
//! storms against the stalled server. Roots are the dispatch entry
//! points themselves (`dispatch_msg` and every `handle_*`); the
//! dispatcher *loop* is deliberately not a root — parking in
//! `recv_timeout` while idle is its job. Spawned-closure bodies are
//! excluded (they block their own thread, not the dispatcher).

use crate::diag::Diagnostic;
use crate::ir;
use crate::parser::SourceFile;
use std::collections::BTreeMap;

/// Is `name` a dispatcher root?
fn is_root(name: &str) -> bool {
    name == "dispatch_msg" || name.starts_with("handle_")
}

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let ir = ir::extract(files, &[]);
    let callees = ir.callees();
    let roots: Vec<&str> = ir
        .fns
        .iter()
        .map(|(n, _)| n.as_str())
        .filter(|n| is_root(n))
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    // Which root reaches each function (first one wins, for the message).
    let mut reached_from: BTreeMap<&str, &str> = BTreeMap::new();
    for root in roots {
        for f in ir::closure([root], &callees) {
            reached_from.entry(f).or_insert(root);
        }
    }
    let mut out = Vec::new();
    for (name, fi) in &ir.fns {
        let Some(root) = reached_from.get(name.as_str()) else {
            continue;
        };
        for (prim, line) in &fi.blocking {
            let via = if name == root {
                String::new()
            } else {
                format!(" (reachable from dispatcher root `{root}`)")
            };
            out.push(Diagnostic::new(
                "blocking-in-dispatcher",
                &fi.file,
                *line,
                format!("`{name}`{via} calls blocking `{prim}` on the dispatcher thread"),
                "move the blocking work to a worker thread or make it event-driven \
                 (timers via the retransmit tick, waits via a message round-trip)",
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_source(Path::new("t.rs"), src);
        check(&[&f])
    }

    #[test]
    fn direct_and_transitive_blocking_fire() {
        let d = lint(
            "fn handle_submit(x: &X) { sleep(D); }\n\
             fn helper(x: &X) { x.cv.wait(g); }\n\
             fn handle_abort(x: &X) { helper(x); }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("handle_submit")));
        assert!(d.iter().any(|d| d
            .message
            .contains("`helper` (reachable from dispatcher root `handle_abort`)")));
    }

    #[test]
    fn dispatcher_loop_is_not_a_root() {
        let d = lint(
            "fn dispatcher_loop(rx: &Rx) { let m = rx.recv_timeout(D); }\n\
             fn unrelated() { sleep(D); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn spawned_closures_are_exempt() {
        let d = lint("fn handle_migrate(x: &X) { spawn(move || { sleep(D); }); }");
        assert!(d.is_empty(), "{d:?}");
    }
}
