//! Rule `protocol-conformance`: the wire protocol must be closed.
//!
//! Over the extracted IR of the protocol files, for the audited `Msg`
//! enum:
//!
//! * every variant that is *sent* (constructed inside the argument list
//!   of a fabric `send`, of a function that forwards a `Msg` parameter
//!   into one, or let-bound and later passed to one) must have a
//!   dispatch arm somewhere — a *narrow* pattern site (match arm naming
//!   few variants, `if let`, `matches!`); wide journaling/forwarding
//!   or-arms do not count as handling;
//! * every request in the pairing table (inferred `Foo`→`FooAck` plus
//!   declared `// gt-lint: pair(Req -> Ack)` directives) must have an
//!   ack path — the ack variant must itself be sent somewhere — and a
//!   retry/timeout/backoff site reachable from a sender of the request
//!   (the function itself, a transitive caller, or a transitive callee):
//!   a request with no timeout anywhere above it is an unbounded wait,
//!   and one with no ack is fire-and-forget pretending to be RPC;
//! * no variant may be constructed but never sent nor mentioned in any
//!   pattern — dead protocol surface that rots silently.

use crate::diag::Diagnostic;
use crate::ir::{self, Ir, SEND_PRIMS};
use crate::parser::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Enums audited as wire protocols.
const PROTOCOL_ENUMS: &[&str] = &["Msg"];

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let ir = ir::extract(files, PROTOCOL_ENUMS);
    let mut out = Vec::new();
    for enum_name in ir.enums.keys() {
        check_enum(&ir, enum_name, &mut out);
    }
    out
}

/// Functions that forward a `Msg` parameter into a raw send: a `Msg`
/// construction inside their argument list counts as sent.
fn forwarders(ir: &Ir) -> BTreeSet<&str> {
    // Transitive raw-send reachability over the name-based call graph.
    let callees = ir.callees();
    let direct: Vec<&str> = ir
        .fns
        .iter()
        .filter(|(_, fi)| fi.raw_send)
        .map(|(n, _)| n.as_str())
        .collect();
    // A function reaches a send iff it is in the closure of some
    // directly-sending function's *callers*… walking forward from each fn
    // is simpler: fn F reaches send iff closure({F}) meets `direct`.
    let direct_set: BTreeSet<&str> = direct.iter().copied().collect();
    ir.fns
        .iter()
        .filter(|(name, fi)| {
            fi.msg_param
                && ir::closure([name.as_str()], &callees)
                    .iter()
                    .any(|f| direct_set.contains(f))
        })
        .map(|(n, _)| n.as_str())
        .collect()
}

fn check_enum(ir: &Ir, enum_name: &str, out: &mut Vec<Diagnostic>) {
    let info = &ir.enums[enum_name];
    let fwd = forwarders(ir);

    // Classify every construction: sent / local-only.
    // sent[variant] -> (file, line, sender-fn) of the first send site.
    let mut sent: BTreeMap<&str, (std::path::PathBuf, u32, &str)> = BTreeMap::new();
    let mut senders: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut constructed: BTreeMap<&str, (std::path::PathBuf, u32)> = BTreeMap::new();
    for (fname, fi) in &ir.fns {
        // Identifiers passed as a top-level argument to a send primitive
        // or forwarder within this function.
        let mut sent_idents: BTreeSet<&str> = BTreeSet::new();
        for c in &fi.calls {
            if SEND_PRIMS.contains(&c.name.as_str()) || fwd.contains(c.name.as_str()) {
                sent_idents.extend(c.top_idents.iter().map(|s| s.as_str()));
            }
        }
        for c in fi.constructs.iter().filter(|c| c.enum_name == enum_name) {
            constructed
                .entry(c.variant.as_str())
                .or_insert_with(|| (fi.file.clone(), c.line));
            let via_call = c
                .enclosing_calls
                .iter()
                .any(|n| SEND_PRIMS.contains(&n.as_str()) || fwd.contains(n.as_str()));
            let via_binding = c
                .let_bound
                .as_deref()
                .is_some_and(|b| sent_idents.contains(b));
            if via_call || via_binding {
                sent.entry(c.variant.as_str())
                    .or_insert_with(|| (fi.file.clone(), c.line, fname.as_str()));
                senders.entry(c.variant.as_str()).or_default().insert(fname);
            }
        }
    }

    // Pattern evidence: narrow sites are dispatch, any site is a mention.
    let mut dispatched: BTreeSet<&str> = BTreeSet::new();
    let mut mentioned: BTreeSet<&str> = BTreeSet::new();
    for (_, fi) in &ir.fns {
        for p in fi.patterns.iter().filter(|p| p.enum_name == enum_name) {
            mentioned.insert(p.variant.as_str());
            if p.narrow {
                dispatched.insert(p.variant.as_str());
            }
        }
    }

    // 1. Sent but never dispatched.
    for (variant, (file, line, func)) in &sent {
        if !dispatched.contains(variant) {
            out.push(Diagnostic::new(
                "protocol-conformance",
                file,
                *line,
                format!(
                    "`{enum_name}::{variant}` is sent (in `{func}`) but no dispatch arm \
                     handles it"
                ),
                "add a handler arm for the variant (or a `matches!`/`if let` consumer); \
                 wide forwarding or-arms do not count as handling",
            ));
        }
    }

    // 2. Pairing table: inferred `Foo` -> `FooAck` plus declared pairs.
    let variant_names: BTreeSet<&str> = info.variants.iter().map(|(v, _)| v.as_str()).collect();
    let mut pairs: Vec<(String, String)> = ir.pairs.clone();
    for v in &variant_names {
        if let Some(stem) = v.strip_suffix("Ack") {
            if variant_names.contains(stem) {
                pairs.push((stem.to_string(), v.to_string()));
            }
        }
    }
    pairs.sort();
    pairs.dedup();
    let callers_graph = ir.callers();
    let callees_graph = ir.callees();
    let retry_fns: BTreeSet<&str> = ir
        .fns
        .iter()
        .filter(|(_, fi)| fi.retry_marker)
        .map(|(n, _)| n.as_str())
        .collect();
    for (req, ack) in &pairs {
        if !variant_names.contains(req.as_str()) || !variant_names.contains(ack.as_str()) {
            continue; // declared pair referencing another enum's variants
        }
        let Some((file, line, _)) = sent.get(req.as_str()) else {
            continue; // request never sent: the pair is inactive here
        };
        if !sent.contains_key(ack.as_str()) {
            out.push(Diagnostic::new(
                "protocol-conformance",
                file,
                *line,
                format!(
                    "request `{enum_name}::{req}` has no ack path: `{enum_name}::{ack}` \
                     is never sent"
                ),
                "send the ack from the handler, or drop the pair declaration if the \
                 request is genuinely one-way",
            ));
        }
        // Retry coverage: some sender of `req` must reach a retry/timeout
        // mechanism through itself, its callers, or its callees.
        let covered = senders.get(req.as_str()).is_some_and(|fs| {
            fs.iter().any(|f| {
                let up = ir::closure([*f], &callers_graph);
                let down = ir::closure([*f], &callees_graph);
                up.iter().chain(down.iter()).any(|g| retry_fns.contains(g))
            })
        });
        if !covered {
            out.push(Diagnostic::new(
                "protocol-conformance",
                file,
                *line,
                format!(
                    "request `{enum_name}::{req}` is sent with no reachable \
                     retry/timeout/backoff site — a lost message waits forever"
                ),
                "wrap the wait in a timeout (`recv_timeout`, a deadline loop) or \
                 re-send with backoff; the mechanism must be reachable from the \
                 sending function",
            ));
        }
    }

    // 3. Dead protocol: constructed but never sent nor mentioned.
    for (variant, (file, line)) in &constructed {
        if !sent.contains_key(variant) && !mentioned.contains(variant) {
            out.push(Diagnostic::new(
                "protocol-conformance",
                file,
                *line,
                format!(
                    "`{enum_name}::{variant}` is constructed but never sent and never \
                     matched — dead protocol surface"
                ),
                "delete the variant (and its construction) or wire it into a send \
                 and a dispatch arm",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_source(Path::new("t.rs"), src);
        check(&[&f])
    }

    #[test]
    fn sent_without_dispatch_fires() {
        let d = lint(
            "enum Msg { Ping, Pong }\n\
             fn a(ep: &Ep) { ep.send(0, Msg::Ping); ep.send(0, Msg::Pong); }\n\
             fn b(m: Msg) { if let Msg::Pong = m { hit(); } }",
        );
        assert!(d.iter().any(|d| d.message.contains("Msg::Ping")));
        assert!(!d.iter().any(|d| d.message.contains("`Msg::Pong` is sent")));
    }

    #[test]
    fn forwarded_sends_are_threaded() {
        let d = lint(
            "enum Msg { Ping }\n\
             fn fwd(ep: &Ep, m: Msg) { ep.send(0, m); }\n\
             fn a(ep: &Ep) { fwd(ep, Msg::Ping); }",
        );
        assert!(d.iter().any(|d| d.message.contains("`Msg::Ping` is sent")));
    }

    #[test]
    fn missing_retry_and_ack_fire() {
        let d = lint(
            "enum Msg { Req, ReqAck }\n\
             fn a(ep: &Ep) { ep.send(0, Msg::Req); }\n\
             fn b(m: Msg) { match m { Msg::Req => {}, Msg::ReqAck => {} } }",
        );
        assert!(d.iter().any(|d| d.message.contains("no ack path")));
        assert!(d.iter().any(|d| d.message.contains("retry/timeout")));
    }

    #[test]
    fn covered_pair_is_clean() {
        let d = lint(
            "enum Msg { Req, ReqAck }\n\
             fn a(ep: &Ep, rx: &Rx) { let deadline = now();\n\
               ep.send(0, Msg::Req); rx.recv_timeout(d); }\n\
             fn b(ep: &Ep, m: Msg) { match m {\n\
               Msg::Req => ep.send(1, Msg::ReqAck), Msg::ReqAck => {} } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn declared_pair_directive_is_enforced() {
        // `Reply` does not end in `Ack`, so only the directive makes this
        // a request→ack pair; its missing ack path must then fire.
        let d = lint(
            "// gt-lint: pair(Fetch -> Reply)\n\
             enum Msg { Fetch, Reply }\n\
             fn a(ep: &Ep) { ep.send(0, Msg::Fetch); }\n\
             fn b(m: Msg) { match m { Msg::Fetch => {}, Msg::Reply => {} } }",
        );
        assert!(
            d.iter()
                .any(|d| d.message.contains("no ack path") && d.message.contains("Reply")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|d| d.message.contains("retry/timeout")),
            "{d:?}"
        );
    }

    #[test]
    fn dead_variant_fires() {
        let d = lint(
            "enum Msg { Used, Dead }\n\
             fn a(ep: &Ep, rx: &Rx) { ep.send(0, Msg::Used); let _x = Msg::Dead; }\n\
             fn b(m: Msg) { if let Msg::Used = m {} }",
        );
        assert!(d.iter().any(|d| d.message.contains("dead protocol")));
    }
}
