//! Rule `panic`: no `unwrap()`/`expect()`/`panic!`-family macros in the
//! server/coordinator/relay hot paths.
//!
//! A panicking worker or dispatcher thread silently kills a server without
//! tripping the failure detector, which is exactly the failure mode the
//! status-tracing machinery exists to catch. Hot-path code must propagate
//! typed errors (or drop the message) instead. `debug_assert!` is fine —
//! it vanishes in release builds. Deliberate aborts (e.g. "a panicked
//! dispatcher is unrecoverable by design") use
//! `// gt-lint: allow(panic, "reason")`.

use crate::diag::Diagnostic;
use crate::parser::SourceFile;

const BANNED_METHODS: &[&str] = &["unwrap", "expect"];
const BANNED_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        let toks = &f.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `.unwrap(` / `.expect(` — method position only, so local
            // functions that merely *contain* "unwrap" are untouched.
            if BANNED_METHODS.iter().any(|m| t.is_ident(m))
                && i > 0
                && toks[i - 1].is_punct('.')
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('(')
            {
                out.push(Diagnostic::new(
                    "panic",
                    &f.path,
                    t.line,
                    format!(
                        "`.{}()` in a hot path can kill a server thread silently",
                        t.text
                    ),
                    "propagate a typed error (or drop the message) instead; if the abort is \
                     deliberate, add `// gt-lint: allow(panic, \"why\")`",
                ));
            }
            // `panic!(` / `unreachable!(` / `todo!(` / `unimplemented!(`.
            if BANNED_MACROS.iter().any(|m| t.is_ident(m))
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('!')
            {
                out.push(Diagnostic::new(
                    "panic",
                    &f.path,
                    t.line,
                    format!(
                        "`{}!` in a hot path can kill a server thread silently",
                        t.text
                    ),
                    "return an error for unexpected protocol states instead of aborting; if the \
                     abort is deliberate, add `// gt-lint: allow(panic, \"why\")`",
                ));
            }
        }
    }
    out
}
