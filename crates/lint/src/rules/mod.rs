//! The rule families. Each module exposes a `check` function over
//! pre-parsed [`crate::parser::SourceFile`]s and returns raw diagnostics;
//! allow-comment suppression happens in [`crate::run`].

pub mod atomic_ordering;
pub mod blocking;
pub mod dispatch;
pub mod epoch_fence;
pub mod guard_send;
pub mod lock_order;
pub mod metrics_discipline;
pub mod panic_hygiene;
pub mod protocol;
