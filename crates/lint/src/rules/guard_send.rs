//! Rule `guard-across-send`: no **ranked** `OrderedMutex` guard may be
//! live across a fabric send or blocking receive, directly or through a
//! call chain.
//!
//! `guard-across-channel` already flags any guard held across a blocking
//! channel op inside the three concurrency-critical files. This rule is
//! the interprocedural, rank-aware complement over the whole protocol
//! surface: it reuses the lock-order guard-liveness machinery but
//! restricts lock identity to names harvested from the global
//! `OrderedMutex` rank table, so renaming a local `Mutex` can't silence
//! it and helper files outside the lock files are covered. A ranked
//! guard held across a send couples the global lock order to fabric
//! backpressure — the cross-node deadlock shape the rank table exists to
//! prevent.
//!
//! Scope: the workspace file set covers the **server data plane**
//! (`server.rs`, `queue.rs`, `coordinator.rs`, …) and deliberately
//! excludes `cluster.rs`. The client orchestration thread there holds
//! `failover_lock` across entire handoff round-trips *on purpose* —
//! serializing whole failovers is that lock's job, and a client thread
//! blocking on its own round-trip cannot deadlock a server dispatcher
//! against fabric backpressure (those sites carry reviewed
//! `guard-across-channel` allows documenting the same decision). In
//! `Files` mode (fixtures, `tests/`, `examples/`) every file is checked.

use crate::diag::Diagnostic;
use crate::ir;
use crate::parser::SourceFile;
use crate::rules::lock_order::{collect_facts, transitive, Event};
use std::collections::BTreeSet;

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let ranked: BTreeSet<String> = ir::ranked_locks(files)
        .into_iter()
        .map(|l| l.name)
        .collect();
    if ranked.is_empty() {
        return Vec::new();
    }
    let fns = collect_facts(files);
    let (_, trans_chan) = transitive(&fns);

    let mut out = Vec::new();
    for (name, facts) in &fns {
        let mut flagged: BTreeSet<&str> = BTreeSet::new(); // one per (fn, lock)
        for ev in &facts.events {
            let (what, line, held): (String, u32, &[String]) = match ev {
                Event::Channel { what, line, held } => (what.clone(), *line, held),
                Event::Call { callee, line, held }
                    if trans_chan.get(callee).copied().unwrap_or(false) =>
                {
                    (format!("call to `{callee}`"), *line, held)
                }
                _ => continue,
            };
            for h in held.iter().filter(|h| ranked.contains(h.as_str())) {
                if flagged.insert(h.as_str()) {
                    out.push(Diagnostic::new(
                        "guard-across-send",
                        &facts.file,
                        line,
                        format!(
                            "`{name}` holds ranked `OrderedMutex` guard `{h}` across a \
                             fabric send/recv ({what})"
                        ),
                        "snapshot what you need, drop the guard, then send; ranked \
                         guards across fabric ops couple lock order to backpressure",
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_source(Path::new("t.rs"), src);
        check(&[&f])
    }

    #[test]
    fn ranked_guard_across_send_fires_interprocedurally() {
        let d = lint(
            "struct S { journal: OrderedMutex<u64> }\n\
             fn mk() -> S { S { journal: OrderedMutex::new(30, \"journal\", 0) } }\n\
             fn deep(ep: &Ep) { ep.send(0, 1); }\n\
             fn outer(s: &S, ep: &Ep) { let g = s.journal.lock(); deep(ep); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("journal"));
        assert!(d[0].rule == "guard-across-send");
    }

    #[test]
    fn unranked_guard_is_not_this_rules_business() {
        let d = lint(
            "struct S { journal: OrderedMutex<u64>, scratch: Mutex<u64> }\n\
             fn mk() -> S { S { journal: OrderedMutex::new(30, \"journal\", 0),\n\
               scratch: Mutex::new(0) } }\n\
             fn f(s: &S, ep: &Ep) { let g = s.scratch.lock(); ep.send(0, 1); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn dropped_guard_is_clean() {
        let d = lint(
            "struct S { journal: OrderedMutex<u64> }\n\
             fn mk() -> S { S { journal: OrderedMutex::new(30, \"journal\", 0) } }\n\
             fn f(s: &S, ep: &Ep) { let g = s.journal.lock(); drop(g); ep.send(0, 1); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
