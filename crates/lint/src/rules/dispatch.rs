//! Rules `wildcard-arm` and `unhandled-variant`: protocol dispatch must be
//! exhaustive by name.
//!
//! The wire protocol evolves one enum variant at a time. A `_ => {}` arm in
//! a dispatch match means a newly added `Msg`/`LedgerEvent` variant is
//! silently swallowed instead of being a compile/lint error — the exact bug
//! class that epoch fencing and failover recovery cannot survive. Two
//! checks:
//!
//! * **wildcard-arm** — in any match whose arm patterns name a protocol
//!   enum, a catch-all arm (`_` or a bare binding) whose body is a *silent
//!   default* (`{}`, `None`, `false`, `Ok(())`, …) is flagged. Catch-alls
//!   that forward (`other => handle_msg(sh, other)`) or return an error are
//!   legitimate and pass.
//! * **unhandled-variant** — every declared variant of an audited enum must
//!   appear as an enum-qualified pattern (`Msg::Foo { .. }`) somewhere in
//!   the audited files.

use crate::diag::Diagnostic;
use crate::parser::{functions, matches_in, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Enums whose dispatch must be exhaustive by name. `ClientMsg` and
/// `ServerMsg` are the front-door wire frames (gt-proto): a silently
/// swallowed frame variant is the same bug class on the client↔server
/// hop as a swallowed `Msg` is on the server↔server fabric.
const AUDITED_ENUMS: &[&str] = &["Msg", "LedgerEvent", "ClientMsg", "ServerMsg"];

/// Idents that may appear in a "silent default" arm body. Anything else
/// (function calls, error construction, field writes) makes the body
/// non-silent and therefore acceptable as a catch-all.
const SILENT_IDENTS: &[&str] = &[
    "None", "false", "true", "Ok", "Continue", "LoopCtl", "return", "continue", "break",
];

/// Run both dispatch rules. `decl_files` are searched for the enum
/// declarations; `files` for the matches.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Pass 1: harvest audited enum declarations (name -> variants + site).
    let mut enums: BTreeMap<String, (Vec<String>, std::path::PathBuf, u32)> = BTreeMap::new();
    for f in files {
        for (name, variants, line) in enum_decls(f) {
            if AUDITED_ENUMS.contains(&name.as_str()) {
                enums.insert(name, (variants, f.path.clone(), line));
            }
        }
    }

    // Pass 2: walk every match; collect handled variants and flag silent
    // catch-alls in protocol matches.
    let mut handled: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        let toks = &f.toks;
        for func in functions(toks) {
            for m in matches_in(toks, func.body.0, func.body.1) {
                let mut names_protocol_enum = false;
                for arm in &m.arms {
                    let (s, e) = arm.pat;
                    for i in s..e.min(toks.len()) {
                        // `Enum :: Variant` inside the pattern.
                        if toks[i].kind == crate::lexer::TokKind::Ident
                            && AUDITED_ENUMS.contains(&toks[i].text.as_str())
                            && i + 2 < e
                            && toks[i + 1].is_punct(':')
                            && toks[i + 2].is_punct(':')
                        {
                            names_protocol_enum = true;
                            if i + 3 < e && toks[i + 3].kind == crate::lexer::TokKind::Ident {
                                handled
                                    .entry(toks[i].text.clone())
                                    .or_default()
                                    .insert(toks[i + 3].text.clone());
                            }
                        }
                    }
                }
                if !names_protocol_enum {
                    continue;
                }
                for arm in &m.arms {
                    let (ps, pe) = arm.pat;
                    // Catch-all: a single bare identifier (`_` or a binding).
                    let is_catch_all =
                        pe - ps == 1 && toks[ps].kind == crate::lexer::TokKind::Ident;
                    if is_catch_all && body_is_silent(toks, arm.body) {
                        out.push(Diagnostic::new(
                            "wildcard-arm",
                            &f.path,
                            arm.line,
                            format!(
                                "catch-all `{} =>` in a protocol dispatch silently swallows \
                                 unlisted variants",
                                toks[ps].text
                            ),
                            "list the remaining variants explicitly so new protocol variants \
                             fail the lint, or add `// gt-lint: allow(wildcard-arm, \"why\")`",
                        ));
                    }
                }
            }
        }
    }

    // Pass 3: every declared variant must be handled somewhere.
    for (name, (variants, path, line)) in &enums {
        let seen = handled.get(name).cloned().unwrap_or_default();
        for v in variants {
            if !seen.contains(v) {
                out.push(Diagnostic::new(
                    "unhandled-variant",
                    path,
                    *line,
                    format!("variant `{name}::{v}` is never matched by name in dispatch code"),
                    format!(
                        "add an explicit `{name}::{v}` arm to the server/coordinator dispatch \
                         (or delete the variant if the protocol no longer uses it)"
                    ),
                ));
            }
        }
    }

    out
}

/// `enum Name { Variant, Variant(..), Variant { .. }, ... }` declarations.
fn enum_decls(f: &SourceFile) -> Vec<(String, Vec<String>, u32)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("enum") || toks[i + 1].kind != crate::lexer::TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        // Skip generics to the opening brace.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i += 1;
            continue;
        }
        let close = crate::parser::matching_close(toks, j, '{', '}');
        let mut variants = Vec::new();
        let mut k = j + 1;
        let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
        let mut expect_name = true;
        while k < close {
            let t = &toks[k];
            if t.is_punct('(') {
                p += 1;
            } else if t.is_punct(')') {
                p -= 1;
            } else if t.is_punct('[') {
                b += 1;
            } else if t.is_punct('{') {
                c += 1;
            } else if t.is_punct(']') {
                b -= 1;
            } else if t.is_punct('}') {
                c -= 1;
            } else if t.is_punct(',') && p == 0 && b == 0 && c == 0 {
                expect_name = true;
                k += 1;
                continue;
            } else if t.is_punct('#') && expect_name {
                // Variant attribute: skip `#[...]`.
                if k + 1 < close && toks[k + 1].is_punct('[') {
                    k = crate::parser::matching_close(toks, k + 1, '[', ']');
                }
            } else if expect_name && t.kind == crate::lexer::TokKind::Ident {
                variants.push(t.text.clone());
                expect_name = false;
            }
            k += 1;
        }
        out.push((name, variants, line));
        i = close;
    }
    out
}

/// True if the arm body does nothing observable: only unit/default values.
fn body_is_silent(toks: &[crate::lexer::Tok], body: (usize, usize)) -> bool {
    let (s, e) = body;
    let slice = &toks[s.min(toks.len())..e.min(toks.len())];
    if slice.is_empty() {
        return true;
    }
    slice.iter().all(|t| match t.kind {
        crate::lexer::TokKind::Ident => SILENT_IDENTS.contains(&t.text.as_str()),
        crate::lexer::TokKind::Punct => {
            matches!(t.text.as_str(), "(" | ")" | "{" | "}" | ";" | ",")
        }
        crate::lexer::TokKind::Num => t.text == "0",
        _ => false,
    })
}
