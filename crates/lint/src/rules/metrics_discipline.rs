//! Rules `dead-counter` and `unsurfaced-counter`: every atomic counter
//! declared in a metrics struct must be incremented somewhere in
//! production code *and* surfaced through a snapshot/read.
//!
//! Counters exist so experiments and the chaos suite can assert on them
//! (chaos-off runs require every fault counter to be exactly zero). A
//! counter nobody increments asserts nothing; a counter nobody reads is
//! invisible. Both rot silently — this rule makes them fail the build.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::parser::SourceFile;

/// Methods that count as incrementing a counter. Plain `store` does not —
/// `reset()` stores zero into everything, which must not mark a counter
/// as live.
const INC_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_or",
];

/// Methods that count as surfacing a counter.
const READ_METHODS: &[&str] = &["load"];

/// How many tokens after a field mention we search for an inc/read method
/// (covers `self.msgs[self.idx(a, b)].fetch_add(...)`-style chains).
const WINDOW: usize = 16;

/// Run the rules. `decl_files` hold the metrics structs; `use_files` are
/// scanned for increments and reads.
pub fn check(decl_files: &[&SourceFile], use_files: &[&SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for decl in decl_files {
        for (struct_name, fields) in atomic_structs(decl) {
            for (field, line) in fields {
                let incremented = use_files.iter().any(|f| mentions(f, &field, INC_METHODS));
                let surfaced = use_files.iter().any(|f| mentions(f, &field, READ_METHODS));
                if !incremented {
                    out.push(Diagnostic::new(
                        "dead-counter",
                        &decl.path,
                        line,
                        format!("counter `{struct_name}.{field}` is never incremented"),
                        "wire the counter into the code path it is meant to measure, or delete \
                         it (dead counters make zero-assertions in the chaos suite vacuous)",
                    ));
                } else if !surfaced {
                    out.push(Diagnostic::new(
                        "unsurfaced-counter",
                        &decl.path,
                        line,
                        format!("counter `{struct_name}.{field}` is incremented but never read"),
                        "surface it in the metrics snapshot (and the chaos dormancy \
                         assertions) or delete it",
                    ));
                }
            }
        }
    }
    out
}

/// Structs in `f` that declare at least one `Atomic*`-typed field, with
/// `(field_name, decl_line)` for each atomic field.
fn atomic_structs(f: &SourceFile) -> Vec<(String, Vec<(String, u32)>)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("struct") || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('{') {
            if toks[j].is_punct(';') {
                break; // tuple/unit struct — no named counters
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i += 2;
            continue;
        }
        let close = crate::parser::matching_close(toks, j, '{', '}');
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Field: [pub] name : <type tokens up to `,` at depth 0>.
            if toks[k].is_ident("pub") {
                k += 1;
                // `pub(crate)` etc.
                if k < close && toks[k].is_punct('(') {
                    k = crate::parser::matching_close(toks, k, '(', ')') + 1;
                }
                continue;
            }
            if toks[k].kind == TokKind::Ident && k + 1 < close && toks[k + 1].is_punct(':') {
                let fname = toks[k].text.clone();
                let fline = toks[k].line;
                // Type runs to the next `,` at bracket depth 0.
                let (mut p, mut a) = (0i32, 0i32);
                let mut t = k + 2;
                let mut atomic = false;
                while t < close {
                    let tok = &toks[t];
                    if tok.is_punct('(') {
                        p += 1;
                    } else if tok.is_punct(')') {
                        p -= 1;
                    } else if tok.is_punct('<') {
                        a += 1;
                    } else if tok.is_punct('>') {
                        a -= 1;
                    } else if tok.is_punct(',') && p == 0 && a <= 0 {
                        break;
                    } else if tok.kind == TokKind::Ident && tok.text.starts_with("Atomic") {
                        atomic = true;
                    }
                    t += 1;
                }
                if atomic {
                    fields.push((fname, fline));
                }
                k = t + 1;
                continue;
            }
            k += 1;
        }
        if !fields.is_empty() {
            out.push((name, fields));
        }
        i = close;
    }
    out
}

/// Does `f` contain `.field` followed within [`WINDOW`] tokens by one of
/// `methods`? The window tolerates indexing and iterator chains between
/// the field access and the atomic op.
fn mentions(f: &SourceFile, field: &str, methods: &[&str]) -> bool {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == field) {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue; // require field-access position
        }
        let end = (i + WINDOW).min(toks.len());
        if toks[i + 1..end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && methods.contains(&t.text.as_str()))
        {
            return true;
        }
    }
    false
}
