//! Rule `atomic-ordering`: atomics that participate in cross-thread
//! handshakes must not use `Ordering::Relaxed` on the publish or consume
//! side.
//!
//! A struct field of `Atomic*` type is a *handshake* atomic when some
//! load of it is consumed by a branch (`if`/`while`/`match`/`assert` in
//! the same statement, or a comparison right after the call), or when
//! any site uses `compare_exchange`(`_weak`) — an RMW handshake by
//! construction. For a handshake atomic, every `Relaxed` site is a
//! finding: a relaxed store publishes state the reader may never
//! observe in order, and a relaxed load consumes state with no
//! happens-before edge to the writes it gates.
//!
//! Pure counters are exempt by an allowlist of struct-name stems
//! (`*Metrics`, `*Stats`, `*Counters`): monotonically summed telemetry
//! has no consume side and `Relaxed` is exactly right there.

use crate::diag::Diagnostic;
use crate::ir;
use crate::lexer::TokKind;
use crate::parser::{matching_close, SourceFile};

/// Struct-name stems whose atomic fields are counter-only telemetry.
const COUNTER_STRUCT_STEMS: &[&str] = &["Metrics", "Stats", "Counters"];

/// Atomic access methods audited for ordering arguments.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
];

#[derive(Debug)]
struct Site {
    field: String,
    method: String,
    line: u32,
    relaxed: bool,
    branch_consumed: bool,
    file: std::path::PathBuf,
}

/// Run the rule over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let fields = ir::atomic_fields(files);
    if fields.is_empty() {
        return Vec::new();
    }
    // A field name declared both in a counter struct and a non-counter
    // struct stays audited (over-approximate toward finding).
    let audited: Vec<&str> = fields
        .iter()
        .map(|f| f.field.as_str())
        .filter(|f| {
            fields
                .iter()
                .filter(|g| g.field == *f)
                .any(|g| !COUNTER_STRUCT_STEMS.iter().any(|s| g.strukt.ends_with(s)))
        })
        .collect();

    let mut sites: Vec<Site> = Vec::new();
    for f in files {
        collect_sites(f, &audited, &mut sites);
    }

    // Handshake classification per field.
    let mut out = Vec::new();
    let mut fields_seen: Vec<&str> = sites.iter().map(|s| s.field.as_str()).collect();
    fields_seen.sort();
    fields_seen.dedup();
    for field in fields_seen {
        let of_field: Vec<&Site> = sites.iter().filter(|s| s.field == field).collect();
        let handshake = of_field.iter().any(|s| {
            (s.method == "load" && s.branch_consumed) || s.method.starts_with("compare_exchange")
        });
        if !handshake {
            continue;
        }
        for s in of_field.iter().filter(|s| s.relaxed) {
            let side = if s.method == "load" {
                "consume"
            } else {
                "publish"
            };
            out.push(Diagnostic::new(
                "atomic-ordering",
                &s.file,
                s.line,
                format!(
                    "handshake atomic `{field}` uses `Ordering::Relaxed` on a {side} \
                     side (`{}`)",
                    s.method
                ),
                "use Acquire for the consuming load, Release for the publishing \
                 store/RMW (or SeqCst to match the field's other sites); Relaxed is \
                 only for counters that no control flow consumes",
            ));
        }
    }
    out
}

/// Collect `.field.method(… Relaxed …)` sites for audited fields in `f`.
fn collect_sites(f: &SourceFile, audited: &[&str], out: &mut Vec<Site>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        // Shape: `.` FIELD `.` METHOD `(` …
        if !(toks[i].kind == TokKind::Ident
            && audited.contains(&toks[i].text.as_str())
            && i >= 1
            && toks[i - 1].is_punct('.')
            && i + 3 < toks.len()
            && toks[i + 1].is_punct('.')
            && toks[i + 2].kind == TokKind::Ident
            && ATOMIC_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct('('))
        {
            continue;
        }
        let method = toks[i + 2].text.clone();
        let close = matching_close(toks, i + 3, '(', ')');
        let relaxed = toks[i + 4..close.min(toks.len())]
            .iter()
            .any(|t| t.is_ident("Relaxed"));
        // Branch consumption: the statement the load sits in starts with a
        // branch keyword, or a comparison follows the call directly.
        let mut branch_consumed = false;
        if method == "load" {
            let mut j = i;
            while j > 0 {
                let t = &toks[j - 1];
                if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                    break;
                }
                if t.is_ident("if")
                    || t.is_ident("while")
                    || t.is_ident("match")
                    || (t.kind == TokKind::Ident && t.text.starts_with("assert"))
                    || t.is_punct('<')
                    || t.is_punct('>')
                    || (t.is_punct('=') && j >= 2 && toks[j - 2].is_punct('='))
                {
                    branch_consumed = true;
                    break;
                }
                j -= 1;
            }
            for t in toks.iter().skip(close + 1).take(3) {
                if t.is_punct('<')
                    || t.is_punct('>')
                    || t.is_punct('=')
                    || t.is_punct('!')
                    || t.is_ident("cmp")
                {
                    branch_consumed = true;
                    break;
                }
                if t.is_punct(';') || t.is_punct(',') || t.is_punct(')') {
                    break;
                }
            }
        }
        out.push(Site {
            field: toks[i].text.clone(),
            method,
            line: toks[i].line,
            relaxed,
            branch_consumed,
            file: f.path.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::from_source(Path::new("t.rs"), src);
        check(&[&f])
    }

    #[test]
    fn relaxed_handshake_load_fires() {
        let d = lint(
            "struct Shared { crashed: AtomicBool }\n\
             fn f(sh: &Shared) { if sh.crashed.load(Ordering::Relaxed) { return; } }\n\
             fn g(sh: &Shared) { sh.crashed.store(true, Ordering::SeqCst); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("consume"));
    }

    #[test]
    fn relaxed_cas_fires_on_publish_side() {
        let d = lint(
            "struct T { remaining: AtomicU64 }\n\
             fn f(t: &T) { let _ = t.remaining.compare_exchange(1, 0,\n\
               Ordering::Relaxed, Ordering::Relaxed); }",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("publish"));
    }

    #[test]
    fn counter_structs_are_exempt() {
        let d = lint(
            "struct IoMetrics { hits: AtomicU64 }\n\
             fn f(m: &IoMetrics) { m.hits.fetch_add(1, Ordering::Relaxed);\n\
               if m.hits.load(Ordering::Relaxed) > 0 { report(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn acquire_release_handshake_is_clean() {
        let d = lint(
            "struct Shared { ready: AtomicBool }\n\
             fn w(sh: &Shared) { sh.ready.store(true, Ordering::Release); }\n\
             fn r(sh: &Shared) { while !sh.ready.load(Ordering::Acquire) { hint(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
