//! Rules `lock-cycle` and `guard-across-channel`: static lock-acquisition
//! analysis over the concurrency-heavy files.
//!
//! The analysis simulates guard liveness token-by-token inside each
//! function: a `let g = x.lock();` guard lives to the end of its enclosing
//! block (or an explicit `drop(g)`), a chained temporary
//! (`x.lock().field`) lives to the end of its statement. While a guard is
//! live, three things produce facts:
//!
//! * acquiring another lock adds an edge `held → acquired` to the global
//!   acquisition-order graph;
//! * calling a function that (transitively) acquires locks adds the same
//!   edges, via a name-based call graph with a fixpoint over transitive
//!   acquisitions; the graph is cut at `spawn` (a new thread does not
//!   inherit the caller's guards) and at a blocklist of method names too
//!   generic to resolve by name (`push`, `get`, `wait`, …);
//! * a blocking channel `send`/`recv`(`_timeout`) — direct or transitive —
//!   is a `guard-across-channel` finding: a guard held across a blocking
//!   channel op couples lock order to message order, the classic
//!   distributed-deadlock shape. (`try_send`/`try_recv` never block and
//!   are exempt.)
//!
//! A cycle in the acquisition graph (including a self-edge) is a
//! `lock-cycle` finding. Lock identity is the field name before
//! `.lock()`/`.read()`/`.write()`, with `let Some(g) = &sh.ledger`-style
//! aliases resolved; this is intentionally simple — names are per-struct
//! unique in this workspace — and documented as a known limitation in
//! DESIGN.md.

use crate::diag::Diagnostic;
use crate::lexer::{Tok, TokKind};
use crate::parser::{brace_depths, functions, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

const LOCK_METHODS: &[&str] = &["lock", "read", "write"];
const CHANNEL_METHODS: &[&str] = &["send", "recv", "recv_timeout"];

/// Method/function names never resolved through the call graph: either
/// std-library methods that collide with workspace fn names, or cuts
/// (`spawn`: a new thread starts with no inherited guards).
pub(crate) const CALL_BLOCKLIST: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "send",
    "recv",
    "recv_timeout",
    "try_send",
    "try_recv",
    "len",
    "is_empty",
    "clear",
    "next",
    "take",
    "lock",
    "read",
    "write",
    "drop",
    "clone",
    "iter",
    "iter_mut",
    "extend",
    "contains",
    "contains_key",
    "wait",
    "wait_for",
    "notify_all",
    "notify_one",
    "spawn",
    "join",
    "new",
    "default",
    "fmt",
    "load",
    "store",
    "fetch_add",
    "fetch_max",
    "min",
    "max",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "retain",
    "drain",
    // Workspace-specific collisions: `Cluster::progress`/`Cluster::io_stats`
    // share names with `TravelLedger::progress`/`PartitionStore::io_stats`,
    // and `Cluster::current_seq` with `PartitionStore::current_seq`.
    "progress",
    "io_stats",
    "current_seq",
];

#[derive(Debug)]
pub(crate) enum Event {
    Acquire {
        lock: String,
        line: u32,
        held: Vec<String>,
    },
    Channel {
        what: String,
        line: u32,
        held: Vec<String>,
    },
    Call {
        callee: String,
        line: u32,
        held: Vec<String>,
    },
}

#[derive(Debug, Default)]
pub(crate) struct FnFacts {
    pub(crate) file: PathBuf,
    pub(crate) events: Vec<Event>,
    pub(crate) acquires: BTreeSet<String>,
    pub(crate) channels: bool,
    pub(crate) callees: BTreeSet<String>,
}

/// Pass 1: per-function guard/channel facts, merged by name. Same-name
/// functions (e.g. `close` on two queue types) are merged, which
/// over-approximates safely. Shared with `guard-across-send`.
pub(crate) fn collect_facts(files: &[&SourceFile]) -> BTreeMap<String, FnFacts> {
    let mut fns: BTreeMap<String, FnFacts> = BTreeMap::new();
    for f in files {
        let depths = brace_depths(&f.toks);
        for func in functions(&f.toks) {
            let facts = analyze_fn(f, &depths, func.body);
            let entry = fns.entry(func.name.clone()).or_insert_with(|| FnFacts {
                file: f.path.clone(),
                ..FnFacts::default()
            });
            entry.acquires.extend(facts.acquires.iter().cloned());
            entry.channels |= facts.channels;
            entry.callees.extend(facts.callees.iter().cloned());
            entry.events.extend(facts.events);
        }
    }
    fns
}

/// Pass 2: fixpoint for transitive acquisitions / channel ops.
pub(crate) fn transitive(
    fns: &BTreeMap<String, FnFacts>,
) -> (BTreeMap<String, BTreeSet<String>>, BTreeMap<String, bool>) {
    let mut trans_acq: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(n, f)| (n.clone(), f.acquires.clone()))
        .collect();
    let mut trans_chan: BTreeMap<String, bool> =
        fns.iter().map(|(n, f)| (n.clone(), f.channels)).collect();
    loop {
        let mut changed = false;
        for (name, facts) in fns {
            let mut acq = trans_acq[name].clone();
            let mut chan = trans_chan[name];
            for callee in &facts.callees {
                if let Some(a) = trans_acq.get(callee) {
                    for l in a.clone() {
                        acq.insert(l);
                    }
                }
                if trans_chan.get(callee).copied().unwrap_or(false) {
                    chan = true;
                }
            }
            if acq.len() != trans_acq[name].len() {
                trans_acq.insert(name.clone(), acq);
                changed = true;
            }
            if chan != trans_chan[name] {
                trans_chan.insert(name.clone(), chan);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (trans_acq, trans_chan)
}

/// Run both rules over `files`.
pub fn check(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let fns = collect_facts(files);
    let (trans_acq, trans_chan) = transitive(&fns);

    // Pass 3: edges + guard-across-channel findings.
    let mut edges: BTreeMap<(String, String), (PathBuf, u32)> = BTreeMap::new();
    let mut out = Vec::new();
    for (name, facts) in &fns {
        let mut flagged: BTreeSet<String> = BTreeSet::new(); // one per (fn, lock)
        for ev in &facts.events {
            match ev {
                Event::Acquire { lock, line, held } => {
                    for h in held {
                        edges
                            .entry((h.clone(), lock.clone()))
                            .or_insert((facts.file.clone(), *line));
                    }
                }
                Event::Channel { what, line, held } => {
                    for h in held {
                        if flagged.insert(h.clone()) {
                            out.push(guard_across_channel(name, h, what, &facts.file, *line));
                        }
                    }
                }
                Event::Call { callee, line, held } => {
                    if held.is_empty() {
                        continue;
                    }
                    if let Some(acq) = trans_acq.get(callee) {
                        for h in held {
                            for l in acq {
                                edges
                                    .entry((h.clone(), l.clone()))
                                    .or_insert((facts.file.clone(), *line));
                            }
                        }
                    }
                    if trans_chan.get(callee).copied().unwrap_or(false) {
                        for h in held {
                            if flagged.insert(h.clone()) {
                                out.push(guard_across_channel(
                                    name,
                                    h,
                                    &format!("call to `{callee}`"),
                                    &facts.file,
                                    *line,
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    // Pass 4: cycles in the acquisition graph.
    out.extend(find_cycles(&edges));
    out
}

fn guard_across_channel(
    func: &str,
    lock: &str,
    what: &str,
    file: &PathBuf,
    line: u32,
) -> Diagnostic {
    Diagnostic::new(
        "guard-across-channel",
        file,
        line,
        format!("`{func}` holds the `{lock}` guard across a blocking channel op ({what})"),
        "drop the guard (end its scope or `drop(g)`) before the channel op, or add \
         `// gt-lint: allow(guard-across-channel, \"why\")`",
    )
}

/// Simulate guard liveness over one function body.
fn analyze_fn(f: &SourceFile, depths: &[u32], body: (usize, usize)) -> FnFacts {
    struct Guard {
        lock: String,
        name: Option<String>,
        scope_end: usize,
    }
    let toks = &f.toks;
    let (s, e) = body;
    let mut facts = FnFacts {
        file: f.path.clone(),
        ..FnFacts::default()
    };
    let mut active: Vec<Guard> = Vec::new();
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();

    let mut i = s;
    while i < e.min(toks.len()) {
        active.retain(|g| g.scope_end > i);
        let t = &toks[i];

        // Alias: `let Some(NAME) = &chain.field` (no calls in initializer).
        if t.is_ident("let")
            && i + 4 < e
            && toks[i + 1].is_ident("Some")
            && toks[i + 2].is_punct('(')
            && toks[i + 3].kind == TokKind::Ident
            && toks[i + 4].is_punct(')')
            && i + 5 < e
            && toks[i + 5].is_punct('=')
        {
            let name = toks[i + 3].text.clone();
            let mut j = i + 6;
            let mut last_ident = None;
            let mut has_call = false;
            while j < e {
                let tj = &toks[j];
                if tj.is_punct(';') || tj.is_punct('{') || tj.is_ident("else") {
                    break;
                }
                if tj.is_punct('(') {
                    has_call = true;
                }
                if tj.kind == TokKind::Ident {
                    last_ident = Some(tj.text.clone());
                }
                j += 1;
            }
            if let (false, Some(l)) = (has_call, last_ident) {
                aliases.insert(name, l);
            }
            i += 6;
            continue;
        }

        // Explicit `drop(NAME)`.
        if t.is_ident("drop")
            && i + 3 < e
            && toks[i + 1].is_punct('(')
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is_punct(')')
        {
            let name = &toks[i + 2].text;
            active.retain(|g| g.name.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }

        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let called = i + 1 < toks.len() && toks[i + 1].is_punct('(');

        // Lock acquisition: `<recv>.lock()` / `.read()` / `.write()`.
        if t.kind == TokKind::Ident
            && LOCK_METHODS.contains(&t.text.as_str())
            && is_method
            && called
            && i + 2 < toks.len()
            && toks[i + 2].is_punct(')')
        {
            if let Some(lock) = receiver_lock_name(toks, i, &aliases) {
                let held: Vec<String> = active.iter().map(|g| g.lock.clone()).collect();
                facts.events.push(Event::Acquire {
                    lock: lock.clone(),
                    line: t.line,
                    held,
                });
                facts.acquires.insert(lock.clone());
                let bound = let_bound_name(toks, i, s);
                let scope_end = if bound.is_some() {
                    // Guard: lives to the end of the enclosing block.
                    let d = depths[i];
                    (i + 1..e).find(|&j| depths[j] < d).unwrap_or(e)
                } else {
                    // Temporary: lives to the end of the statement (a `;`
                    // at this depth, or entering/leaving a block).
                    let d = depths[i];
                    (i + 1..e)
                        .find(|&j| {
                            depths[j] < d
                                || (depths[j] == d
                                    && (toks[j].is_punct(';') || toks[j].is_punct('{')))
                        })
                        .unwrap_or(e)
                };
                active.push(Guard {
                    lock,
                    name: bound,
                    scope_end,
                });
            }
            i += 3;
            continue;
        }

        // Blocking channel op.
        if t.kind == TokKind::Ident
            && CHANNEL_METHODS.contains(&t.text.as_str())
            && is_method
            && called
        {
            facts.channels = true;
            facts.events.push(Event::Channel {
                what: format!("`.{}()`", t.text),
                line: t.line,
                held: active.iter().map(|g| g.lock.clone()).collect(),
            });
            i += 2;
            continue;
        }

        // Plain or method call, resolved by name unless blocklisted.
        if t.kind == TokKind::Ident
            && called
            && !CALL_BLOCKLIST.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            facts.callees.insert(t.text.clone());
            facts.events.push(Event::Call {
                callee: t.text.clone(),
                line: t.line,
                held: active.iter().map(|g| g.lock.clone()).collect(),
            });
        }
        i += 1;
    }
    facts
}

/// Lock identity of the receiver of the lock call at `i`: the identifier
/// before the final `.`, alias-resolved.
fn receiver_lock_name(
    toks: &[Tok],
    i: usize,
    aliases: &BTreeMap<String, String>,
) -> Option<String> {
    if i < 2 {
        return None;
    }
    let prev = &toks[i - 2];
    if prev.kind != TokKind::Ident {
        return None;
    }
    let name = aliases
        .get(&prev.text)
        .cloned()
        .unwrap_or_else(|| prev.text.clone());
    Some(name)
}

/// If the lock call at `i` is the whole initializer of a `let` binding
/// (`let [mut] NAME = <chain>.lock();`), return the bound name.
fn let_bound_name(toks: &[Tok], i: usize, body_start: usize) -> Option<String> {
    // Must be immediately followed by `;` (otherwise the guard is a
    // temporary inside a larger expression).
    if !(i + 3 < toks.len() && toks[i + 3].is_punct(';')) {
        return None;
    }
    // Walk the receiver chain left to `=`, then expect `let [mut] NAME`.
    let mut j = i - 1; // at '.'
    while j > body_start {
        let p = &toks[j - 1];
        if p.kind == TokKind::Ident || p.is_punct('.') || p.is_punct('&') {
            j -= 1;
            continue;
        }
        if p.is_punct(')') || p.is_punct(']') {
            // Bracketed link in the chain (indexing); walk past it.
            let close_ch = &p.text;
            let open_ch = if close_ch == ")" { "(" } else { "[" };
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].kind == TokKind::Punct && toks[k].text == *close_ch {
                    depth += 1;
                } else if toks[k].kind == TokKind::Punct && toks[k].text == open_ch {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == body_start {
                    return None;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        if p.is_punct('=') {
            // `==`/`=>`/`>=` never directly precede a guard chain here.
            if j >= 2 && toks[j - 2].kind == TokKind::Ident {
                let name_idx = j - 2;
                let mut k = name_idx;
                if k >= 1 && toks[k - 1].is_ident("mut") {
                    k -= 1;
                }
                if k >= 1 && toks[k - 1].is_ident("let") {
                    return Some(toks[name_idx].text.clone());
                }
            }
            return None;
        }
        return None;
    }
    None
}

/// Find elementary cycles (including self-edges) in the acquisition graph
/// and report each once.
fn find_cycles(edges: &BTreeMap<(String, String), (PathBuf, u32)>) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from each node, tracking the current path.
        let mut path: Vec<&str> = vec![start];
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)]; // (node idx in path, next child)
        while let Some((pi, ci)) = stack.pop() {
            let node = path[pi];
            let children = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if ci >= children.len() {
                path.truncate(pi);
                continue;
            }
            stack.push((pi, ci + 1));
            let child = children[ci];
            path.truncate(pi + 1);
            if let Some(pos) = path.iter().position(|&n| n == child) {
                // Cycle: path[pos..] + child.
                let mut cyc: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                let mut key = cyc.clone();
                key.sort();
                if seen_cycles.insert(key) {
                    cyc.push(child.to_string());
                    let mut sites = Vec::new();
                    for w in cyc.windows(2) {
                        if let Some((file, line)) = edges.get(&(w[0].clone(), w[1].clone())) {
                            sites.push(format!("{}:{}", file.display(), line));
                        }
                    }
                    let (file, line) = edges
                        .get(&(cyc[0].clone(), cyc[1].clone()))
                        .cloned()
                        .unwrap_or((PathBuf::from("<graph>"), 0));
                    out.push(Diagnostic::new(
                        "lock-cycle",
                        &file,
                        line,
                        format!(
                            "lock acquisition cycle: {} (edges at {})",
                            cyc.join(" -> "),
                            sites.join(", ")
                        ),
                        "pick one global acquisition order for these locks and restructure so \
                         every code path follows it (see OrderedMutex ranks in \
                         crates/core/src/lockorder.rs)",
                    ));
                }
                continue;
            }
            if path.len() > 16 {
                continue; // defensive bound; real graphs here are tiny
            }
            path.push(child);
            stack.push((pi + 1, 0));
        }
    }
    out
}
