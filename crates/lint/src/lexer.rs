//! A minimal Rust lexer — just enough fidelity for gt-lint's rules.
//!
//! Produces a flat token stream with line numbers. Comments are skipped
//! (so doc-example code never trips a rule), except that `// gt-lint:
//! allow(<rule>, "reason")` directives are collected so diagnostics on the
//! same or the following line can be suppressed. String/char literals
//! become single opaque tokens, which keeps every downstream heuristic
//! honest: a `"panic!"` inside a log message is not a `panic!` call.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (possibly split around `.`).
    Num,
    /// String literal (normal, raw, or byte), content dropped.
    Str,
    /// Character literal.
    CharLit,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`]/[`TokKind::CharLit`] this is a
    /// placeholder, not the literal's content.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Tok {
    /// True if the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if the token is punctuation with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// An `// gt-lint: allow(rule, "reason")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment appears on. Suppresses diagnostics on this line
    /// and the next (so the comment can sit above the offending line).
    pub line: u32,
    /// Rule name being allowed.
    pub rule: String,
    /// Whether a non-empty reason string follows the rule name. Allows
    /// without a reason are themselves a finding (`bare-allow`): the
    /// escape hatch must document why it is safe.
    pub has_reason: bool,
}

/// A `// gt-lint: pair(Request -> Ack)` directive: declares a
/// request→acknowledgment pairing for the protocol-conformance rule, for
/// pairs the `*Ack` naming convention cannot infer.
#[derive(Debug, Clone)]
pub struct PairDecl {
    /// Line the comment appears on.
    pub line: u32,
    /// Request variant name.
    pub request: String,
    /// Acknowledgment/reply variant name.
    pub ack: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// All allow directives found in comments.
    pub allows: Vec<Allow>,
    /// All request→ack pair declarations found in comments.
    pub pairs: Vec<PairDecl>,
}

/// Lex `src` into tokens plus allow directives.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. doc comments). Scan it for allow directives.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            collect_allows(&src[start..i], line, &mut out.allows);
            collect_pairs(&src[start..i], line, &mut out.pairs);
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            collect_allows(&src[start..i.min(src.len())], start_line, &mut out.allows);
            collect_pairs(&src[start..i.min(src.len())], start_line, &mut out.pairs);
            continue;
        }
        // Raw / byte string literals: r"..", r#".."#, br".., b"..".
        if let Some((next, lines)) = try_raw_or_byte_string(b, i) {
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: "\"raw\"".into(),
                line,
            });
            line += lines;
            i = next;
            continue;
        }
        // Normal string literal.
        if c == b'"' {
            i += 1;
            while i < b.len() {
                match b[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: "\"str\"".into(),
                line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            if let Some(next) = try_char_literal(b, i) {
                out.toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: "'c'".into(),
                    line,
                });
                i = next;
            } else {
                // Lifetime: consume ident chars after the quote.
                let start = i;
                i += 1;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: src[start..i].into(),
                    line,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: src[start..i].into(),
                line,
            });
            continue;
        }
        // Numeric literal (suffix letters folded in; `.` stays punct).
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (is_ident_byte(b[i]) || b[i].is_ascii_digit()) {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: src[start..i].into(),
                line,
            });
            continue;
        }
        // Anything else: single punctuation character.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Recognise `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `i`.
/// Returns `(index past the literal, newlines consumed)`.
fn try_raw_or_byte_string(b: &[u8], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    if j == i {
        return None; // neither b nor r prefix; plain strings handled elsewhere
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' || (!raw && hashes > 0) {
        return None;
    }
    if !raw {
        // b"..." — escapes behave like a normal string.
        j += 1;
        let mut lines = 0u32;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'"' => return Some((j + 1, lines)),
                b'\n' => {
                    lines += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        return Some((j, lines));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks.
    j += 1;
    let mut lines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            lines += 1;
            j += 1;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some((k, lines));
            }
        }
        j += 1;
    }
    Some((j, lines))
}

/// Recognise a char literal at `i` (which points at `'`). Returns the index
/// past it, or `None` if this is a lifetime.
fn try_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: skip the backslash + escape body up to closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return if j < b.len() { Some(j + 1) } else { None };
    }
    // `'x'` is a char literal; `'x` followed by anything else is a lifetime.
    // Multi-byte UTF-8 scalar: advance one scalar value.
    let mut k = j + 1;
    while k < b.len() && (b[k] & 0xC0) == 0x80 {
        k += 1;
    }
    if k < b.len() && b[k] == b'\'' {
        Some(k + 1)
    } else {
        None
    }
}

/// Scan a comment for `gt-lint: allow(rule, "reason")` directives.
fn collect_allows(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let needle = "gt-lint: allow(";
    let mut rest = comment;
    while let Some(pos) = rest.find(needle) {
        let after = &rest[pos + needle.len()..];
        let end = after.find(')').unwrap_or(after.len());
        let inner = &after[..end];
        // Rule name is everything before the first comma; the rest is the
        // human-readable reason. `bare-allow` fires when it is missing.
        let mut parts = inner.splitn(2, ',');
        let rule = parts.next().unwrap_or("").trim();
        let reason = parts.next().unwrap_or("").trim();
        if !rule.is_empty() {
            out.push(Allow {
                line,
                rule: rule.to_string(),
                has_reason: !reason.is_empty(),
            });
        }
        rest = &after[end..];
    }
}

/// Scan a comment for `gt-lint: pair(Request -> Ack)` directives.
fn collect_pairs(comment: &str, line: u32, out: &mut Vec<PairDecl>) {
    let needle = "gt-lint: pair(";
    let mut rest = comment;
    while let Some(pos) = rest.find(needle) {
        let after = &rest[pos + needle.len()..];
        let end = after.find(')').unwrap_or(after.len());
        let inner = &after[..end];
        if let Some((req, ack)) = inner.split_once("->") {
            let (req, ack) = (req.trim(), ack.trim());
            if !req.is_empty() && !ack.is_empty() {
                out.push(PairDecl {
                    line,
                    request: req.to_string(),
                    ack: ack.to_string(),
                });
            }
        }
        rest = &after[end..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let l = lex("// panic! in a comment\nlet s = \"unwrap()\"; x.lock();");
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
        assert!(!l.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.toks.iter().any(|t| t.is_ident("lock")));
    }

    #[test]
    fn lines_survive_raw_strings() {
        let l = lex("let s = r#\"a\nb\nc\"#;\nx.send(1);");
        let send = l.toks.iter().find(|t| t.is_ident("send")).unwrap();
        assert_eq!(send.line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::CharLit));
    }

    #[test]
    fn allow_directives_are_collected() {
        let l = lex("x();\n// gt-lint: allow(panic, \"startup only\")\ny.unwrap();");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rule, "panic");
        assert_eq!(l.allows[0].line, 2);
        assert!(l.allows[0].has_reason);
    }

    #[test]
    fn bare_allows_are_flagged_as_reasonless() {
        let l = lex("// gt-lint: allow(panic)\n// gt-lint: allow(lock-cycle,   )\n");
        assert_eq!(l.allows.len(), 2);
        assert!(!l.allows[0].has_reason);
        assert!(!l.allows[1].has_reason);
    }

    #[test]
    fn pair_directives_are_collected() {
        let l = lex("// gt-lint: pair(MigrateBegin -> MigrateAck)\nfn f() {}");
        assert_eq!(l.pairs.len(), 1);
        assert_eq!(l.pairs[0].request, "MigrateBegin");
        assert_eq!(l.pairs[0].ack, "MigrateAck");
    }
}
