//! Per-rule fixture tests: every gt-lint rule has at least one positive
//! fixture (the rule fires) and one negative fixture (it stays quiet),
//! plus binary-level exit-code checks and a workspace-clean gate.

use gt_lint::{run, Diagnostic, Mode, ALL_RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint one fixture with the given rules enabled.
fn lint(file: &str, rules: &[&str]) -> Vec<Diagnostic> {
    let enabled: BTreeSet<String> = rules.iter().map(|s| s.to_string()).collect();
    run(&Mode::Files(vec![fixture(file)]), &enabled)
        .unwrap_or_else(|e| panic!("linting {file}: {e}"))
}

fn rules_hit(file: &str, rules: &[&str]) -> BTreeSet<&'static str> {
    lint(file, rules).into_iter().map(|d| d.rule).collect()
}

#[test]
fn lock_cycle_fires_on_ab_ba() {
    assert!(rules_hit("lock_cycle_bad.rs", &["lock-cycle"]).contains("lock-cycle"));
}

#[test]
fn lock_cycle_quiet_on_consistent_order() {
    assert!(lint("lock_cycle_ok.rs", &["lock-cycle"]).is_empty());
}

#[test]
fn guard_across_channel_fires_on_live_guard() {
    assert!(rules_hit("guard_channel_bad.rs", &["guard-across-channel"])
        .contains("guard-across-channel"));
}

#[test]
fn guard_across_channel_quiet_after_drop() {
    assert!(lint("guard_channel_ok.rs", &["guard-across-channel"]).is_empty());
}

#[test]
fn wildcard_arm_fires_on_silent_catch_all() {
    assert!(rules_hit("wildcard_bad.rs", &["wildcard-arm"]).contains("wildcard-arm"));
}

#[test]
fn wildcard_arm_quiet_on_forwarding_catch_all() {
    assert!(lint("wildcard_ok.rs", &["wildcard-arm"]).is_empty());
}

#[test]
fn unhandled_variant_fires_on_missing_arm() {
    let diags = lint("missing_variant_bad.rs", &["unhandled-variant"]);
    assert_eq!(
        diags.len(),
        1,
        "exactly Msg::Gone should be flagged: {diags:?}"
    );
    assert!(diags[0].message.contains("Msg::Gone"));
}

#[test]
fn unhandled_variant_quiet_when_all_named() {
    assert!(lint("variant_ok.rs", &["unhandled-variant"]).is_empty());
}

#[test]
fn epoch_fence_fires_on_unfenced_mutation() {
    assert!(rules_hit("fence_bad.rs", &["epoch-fence"]).contains("epoch-fence"));
}

#[test]
fn epoch_fence_quiet_when_fence_consulted_first() {
    assert!(lint("fence_ok.rs", &["epoch-fence"]).is_empty());
}

#[test]
fn panic_fires_on_unwrap_and_panic_macro() {
    let diags = lint("panic_bad.rs", &["panic"]);
    assert!(
        diags.len() >= 2,
        "unwrap and panic! both flagged: {diags:?}"
    );
}

#[test]
fn panic_quiet_on_typed_errors_and_allow_comment() {
    assert!(lint("panic_ok.rs", &["panic"]).is_empty());
}

#[test]
fn counter_rules_fire_on_dead_and_unsurfaced() {
    let hit = rules_hit("counter_bad.rs", &["dead-counter", "unsurfaced-counter"]);
    assert!(hit.contains("dead-counter"), "hit: {hit:?}");
    assert!(hit.contains("unsurfaced-counter"), "hit: {hit:?}");
}

#[test]
fn counter_rules_quiet_when_bumped_and_read() {
    assert!(lint("counter_ok.rs", &["dead-counter", "unsurfaced-counter"]).is_empty());
}

#[test]
fn protocol_conformance_fires_on_all_three_shapes() {
    let diags = lint("protocol_bad.rs", &["protocol-conformance"]);
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("Orphan") && m.contains("no dispatch arm")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("no ack path") && m.contains("Reply")),
        "{msgs:?}"
    );
    assert!(msgs.iter().any(|m| m.contains("retry/timeout")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("Dead") && m.contains("dead protocol")),
        "{msgs:?}"
    );
}

#[test]
fn protocol_conformance_quiet_on_covered_pair() {
    assert!(lint("protocol_ok.rs", &["protocol-conformance"]).is_empty());
}

#[test]
fn guard_send_fires_interprocedurally() {
    let diags = lint("guard_send_bad.rs", &["guard-across-send"]);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "guard-across-send" && d.message.contains("journal")),
        "{diags:?}"
    );
}

#[test]
fn guard_send_quiet_when_guard_dropped_before_send() {
    assert!(lint("guard_send_ok.rs", &["guard-across-send"]).is_empty());
}

#[test]
fn atomic_ordering_fires_on_relaxed_handshake() {
    let diags = lint("atomic_bad.rs", &["atomic-ordering"]);
    assert!(
        diags.iter().any(|d| d.message.contains("ready")),
        "{diags:?}"
    );
}

#[test]
fn atomic_ordering_quiet_on_acq_rel_and_counters() {
    assert!(lint("atomic_ok.rs", &["atomic-ordering"]).is_empty());
}

#[test]
fn blocking_fires_direct_and_through_helper() {
    let diags = lint("blocking_bad.rs", &["blocking-in-dispatcher"]);
    assert!(
        diags.iter().any(|d| d.message.contains("handle_submit")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("`settle`") && d.message.contains("handle_abort")),
        "{diags:?}"
    );
}

#[test]
fn blocking_quiet_on_loop_and_spawned_worker() {
    assert!(lint("blocking_ok.rs", &["blocking-in-dispatcher"]).is_empty());
}

#[test]
fn bare_allow_fires_on_reasonless_escape_hatch() {
    let diags = lint("bare_allow_bad.rs", &["bare-allow", "panic"]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "bare-allow");
}

/// Every negative fixture stays clean even with *all* rules enabled, so a
/// fixture exercising one rule never trips another by accident.
#[test]
fn ok_fixtures_clean_under_all_rules() {
    for f in [
        "lock_cycle_ok.rs",
        "guard_channel_ok.rs",
        "wildcard_ok.rs",
        "variant_ok.rs",
        "fence_ok.rs",
        "panic_ok.rs",
        "counter_ok.rs",
        "protocol_ok.rs",
        "guard_send_ok.rs",
        "atomic_ok.rs",
        "blocking_ok.rs",
    ] {
        let diags = lint(f, ALL_RULES);
        assert!(diags.is_empty(), "{f} should be clean, got: {diags:?}");
    }
}

/// The binary exits non-zero (`--deny all`) on every positive fixture and
/// zero on every negative one.
#[test]
fn binary_exit_codes_match_fixture_polarity() {
    let bad = [
        "lock_cycle_bad.rs",
        "guard_channel_bad.rs",
        "wildcard_bad.rs",
        "missing_variant_bad.rs",
        "fence_bad.rs",
        "panic_bad.rs",
        "counter_bad.rs",
        "protocol_bad.rs",
        "guard_send_bad.rs",
        "atomic_bad.rs",
        "blocking_bad.rs",
        "bare_allow_bad.rs",
    ];
    for f in bad {
        let st = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
            .args(["--deny", "all"])
            .arg(fixture(f))
            .status()
            .expect("spawn gt-lint");
        assert_eq!(st.code(), Some(1), "{f} must fail --deny all");
    }
    let st = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
        .args(["--deny", "all"])
        .arg(fixture("panic_ok.rs"))
        .status()
        .expect("spawn gt-lint");
    assert_eq!(st.code(), Some(0), "panic_ok.rs must pass --deny all");
}

/// Golden test for the machine-readable output: CI consumes `--format
/// json`, so its exact shape (field order, one object per line, stable
/// paths) is contract, not implementation detail.
#[test]
fn json_output_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
        .args(["--format", "json", "--rules", "bare-allow"])
        .arg(fixture("bare_allow_bad.rs"))
        .output()
        .expect("spawn gt-lint");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let path = fixture("bare_allow_bad.rs");
    let path = path.to_string_lossy().replace('\\', "/");
    let golden = format!(
        "[\n  {{\"rule\":\"bare-allow\",\"file\":\"{path}\",\"line\":8,\
         \"message\":\"`allow(panic)` has no reason string\",\
         \"hint\":\"every escape hatch must say why it is safe: \
         `// gt-lint: allow(rule, \\\"reason\\\")`\"}}\n]\n",
    );
    assert_eq!(stdout, golden);

    // A clean run still emits a (valid, empty) JSON array.
    let out = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
        .args(["--format", "json", "--rules", "panic"])
        .arg(fixture("panic_ok.rs"))
        .output()
        .expect("spawn gt-lint");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "[\n]\n");
}

/// Regression gate for the global `OrderedMutex` rank table: every ranked
/// lock in the workspace keeps a unique name and a unique rank, so a new
/// lock can't silently shadow an existing rank (the runtime checker only
/// catches *orders actually exercised*; this covers the table itself).
#[test]
fn rank_table_has_unique_names_and_ranks() {
    use gt_lint::ir::ranked_locks;
    use gt_lint::parser::SourceFile;
    use std::collections::BTreeMap;

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/src");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&root).expect("read core/src") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            files.push(SourceFile::read(&path).expect("parse"));
        }
    }
    let refs: Vec<&SourceFile> = files.iter().collect();
    let locks = ranked_locks(&refs);
    // 23, not 24: the server ledger lock is built through `.map(...)`
    // rather than struct-field syntax, so the field-context harvest
    // (deliberately) skips it.
    assert!(
        locks.len() >= 23,
        "rank table shrank? found {} ranked locks",
        locks.len()
    );
    let mut by_name: BTreeMap<&str, &str> = BTreeMap::new();
    let mut by_rank: BTreeMap<u64, &str> = BTreeMap::new();
    for l in &locks {
        let file = l.file.file_name().unwrap().to_str().unwrap();
        if let Some(prev) = by_name.insert(&l.name, file) {
            panic!("duplicate lock name `{}` in {prev} and {file}", l.name);
        }
        if let Some(prev) = by_rank.insert(l.rank, &l.name) {
            panic!(
                "rank {} assigned to both `{prev}` and `{}` — ranks are a \
                 single global order, pick an unused one",
                l.rank, l.name
            );
        }
    }
}

/// The CI gate in library form: the workspace itself ships lint-clean.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let enabled: BTreeSet<String> = ALL_RULES.iter().map(|s| s.to_string()).collect();
    let diags = run(&Mode::Workspace(root), &enabled).expect("workspace lint");
    assert!(diags.is_empty(), "workspace findings: {diags:#?}");
}
