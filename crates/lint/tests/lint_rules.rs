//! Per-rule fixture tests: every gt-lint rule has at least one positive
//! fixture (the rule fires) and one negative fixture (it stays quiet),
//! plus binary-level exit-code checks and a workspace-clean gate.

use gt_lint::{run, Diagnostic, Mode, ALL_RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint one fixture with the given rules enabled.
fn lint(file: &str, rules: &[&str]) -> Vec<Diagnostic> {
    let enabled: BTreeSet<String> = rules.iter().map(|s| s.to_string()).collect();
    run(&Mode::Files(vec![fixture(file)]), &enabled)
        .unwrap_or_else(|e| panic!("linting {file}: {e}"))
}

fn rules_hit(file: &str, rules: &[&str]) -> BTreeSet<&'static str> {
    lint(file, rules).into_iter().map(|d| d.rule).collect()
}

#[test]
fn lock_cycle_fires_on_ab_ba() {
    assert!(rules_hit("lock_cycle_bad.rs", &["lock-cycle"]).contains("lock-cycle"));
}

#[test]
fn lock_cycle_quiet_on_consistent_order() {
    assert!(lint("lock_cycle_ok.rs", &["lock-cycle"]).is_empty());
}

#[test]
fn guard_across_channel_fires_on_live_guard() {
    assert!(rules_hit("guard_channel_bad.rs", &["guard-across-channel"])
        .contains("guard-across-channel"));
}

#[test]
fn guard_across_channel_quiet_after_drop() {
    assert!(lint("guard_channel_ok.rs", &["guard-across-channel"]).is_empty());
}

#[test]
fn wildcard_arm_fires_on_silent_catch_all() {
    assert!(rules_hit("wildcard_bad.rs", &["wildcard-arm"]).contains("wildcard-arm"));
}

#[test]
fn wildcard_arm_quiet_on_forwarding_catch_all() {
    assert!(lint("wildcard_ok.rs", &["wildcard-arm"]).is_empty());
}

#[test]
fn unhandled_variant_fires_on_missing_arm() {
    let diags = lint("missing_variant_bad.rs", &["unhandled-variant"]);
    assert_eq!(
        diags.len(),
        1,
        "exactly Msg::Gone should be flagged: {diags:?}"
    );
    assert!(diags[0].message.contains("Msg::Gone"));
}

#[test]
fn unhandled_variant_quiet_when_all_named() {
    assert!(lint("variant_ok.rs", &["unhandled-variant"]).is_empty());
}

#[test]
fn epoch_fence_fires_on_unfenced_mutation() {
    assert!(rules_hit("fence_bad.rs", &["epoch-fence"]).contains("epoch-fence"));
}

#[test]
fn epoch_fence_quiet_when_fence_consulted_first() {
    assert!(lint("fence_ok.rs", &["epoch-fence"]).is_empty());
}

#[test]
fn panic_fires_on_unwrap_and_panic_macro() {
    let diags = lint("panic_bad.rs", &["panic"]);
    assert!(
        diags.len() >= 2,
        "unwrap and panic! both flagged: {diags:?}"
    );
}

#[test]
fn panic_quiet_on_typed_errors_and_allow_comment() {
    assert!(lint("panic_ok.rs", &["panic"]).is_empty());
}

#[test]
fn counter_rules_fire_on_dead_and_unsurfaced() {
    let hit = rules_hit("counter_bad.rs", &["dead-counter", "unsurfaced-counter"]);
    assert!(hit.contains("dead-counter"), "hit: {hit:?}");
    assert!(hit.contains("unsurfaced-counter"), "hit: {hit:?}");
}

#[test]
fn counter_rules_quiet_when_bumped_and_read() {
    assert!(lint("counter_ok.rs", &["dead-counter", "unsurfaced-counter"]).is_empty());
}

/// Every negative fixture stays clean even with *all* rules enabled, so a
/// fixture exercising one rule never trips another by accident.
#[test]
fn ok_fixtures_clean_under_all_rules() {
    for f in [
        "lock_cycle_ok.rs",
        "guard_channel_ok.rs",
        "wildcard_ok.rs",
        "variant_ok.rs",
        "fence_ok.rs",
        "panic_ok.rs",
        "counter_ok.rs",
    ] {
        let diags = lint(f, ALL_RULES);
        assert!(diags.is_empty(), "{f} should be clean, got: {diags:?}");
    }
}

/// The binary exits non-zero (`--deny all`) on every positive fixture and
/// zero on every negative one.
#[test]
fn binary_exit_codes_match_fixture_polarity() {
    let bad = [
        "lock_cycle_bad.rs",
        "guard_channel_bad.rs",
        "wildcard_bad.rs",
        "missing_variant_bad.rs",
        "fence_bad.rs",
        "panic_bad.rs",
        "counter_bad.rs",
    ];
    for f in bad {
        let st = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
            .args(["--deny", "all"])
            .arg(fixture(f))
            .status()
            .expect("spawn gt-lint");
        assert_eq!(st.code(), Some(1), "{f} must fail --deny all");
    }
    let st = Command::new(env!("CARGO_BIN_EXE_gt-lint"))
        .args(["--deny", "all"])
        .arg(fixture("panic_ok.rs"))
        .status()
        .expect("spawn gt-lint");
    assert_eq!(st.code(), Some(0), "panic_ok.rs must pass --deny all");
}

/// The CI gate in library form: the workspace itself ships lint-clean.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let enabled: BTreeSet<String> = ALL_RULES.iter().map(|s| s.to_string()).collect();
    let diags = run(&Mode::Workspace(root), &enabled).expect("workspace lint");
    assert!(diags.is_empty(), "workspace findings: {diags:#?}");
}
