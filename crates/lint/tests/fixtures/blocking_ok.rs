//! Fixture (negative, `blocking-in-dispatcher`): the dispatcher loop may
//! park in `recv_timeout` (that is its job), handlers stay event-driven,
//! and a spawned worker closure may block its own thread.
//!
//! Not compiled — parsed by gt-lint only.

fn dispatcher_loop(sh: &Shared) {
    let _ = sh.rx.recv_timeout(TICK);
}

fn handle_submit(sh: &Shared) {
    admit(sh);
    spawn(move || {
        sleep(WARMUP);
    });
}
