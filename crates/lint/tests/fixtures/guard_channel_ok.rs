//! Fixture (negative, `guard-across-channel`): the guard is dropped
//! before the blocking send, so no lock is held across the channel op.
//!
//! Not compiled — parsed by gt-lint only.

fn notify(sh: &Shared) {
    let g = sh.mailbox.lock();
    let n = g.len();
    drop(g);
    sh.ep.send(0, n);
}
