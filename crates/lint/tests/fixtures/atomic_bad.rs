//! Fixture (positive, `atomic-ordering`): a cross-thread handshake flag
//! is published and consumed with `Ordering::Relaxed` — the consumer
//! branches on the load, so the ordering is load-bearing.
//!
//! Not compiled — parsed by gt-lint only.

struct Handshake {
    ready: AtomicBool,
}

fn publish(h: &Handshake) {
    h.ready.store(true, Ordering::Relaxed);
}

fn consume(h: &Handshake) {
    if h.ready.load(Ordering::Relaxed) {
        proceed();
    }
}
