//! Fixture (negative, `panic`): typed-error propagation passes outright;
//! a deliberate abort passes through the allow escape hatch with a reason.
//!
//! Not compiled — parsed by gt-lint only.

fn apply(v: Option<u64>) -> Result<u64, ApplyError> {
    v.ok_or(ApplyError::Missing)
}

fn deliberate(v: Option<u64>) -> u64 {
    // gt-lint: allow(panic, "fixture: abort here is deliberate and documented")
    v.unwrap()
}
