//! Fixture (negative, `lock-cycle`): both paths follow the same global
//! acquisition order, so the acquisition graph is acyclic.
//!
//! Not compiled — parsed by gt-lint only.

fn ordered_a(sh: &Shared) {
    let a = sh.alpha.lock();
    let b = sh.beta.lock();
    drop(b);
    drop(a);
}

fn ordered_b(sh: &Shared) {
    let a = sh.alpha.lock();
    let b = sh.beta.lock();
    drop(b);
    drop(a);
}
