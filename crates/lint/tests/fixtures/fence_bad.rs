//! Fixture (positive, `epoch-fence`): a travel-scoped handler mutates
//! per-travel state without consulting the travel-epoch fence first — a
//! stale post-failover message could resurrect a retired travel.
//!
//! Not compiled — parsed by gt-lint only.

fn handle_visit(sh: &Shared, travel: TravelId, vertex: u64) {
    sh.cache.lock().insert((travel, vertex), true);
}
