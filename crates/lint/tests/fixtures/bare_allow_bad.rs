//! Fixture (positive, `bare-allow`): an escape hatch with no reason
//! string — the suppression still works, but the bare allow itself is
//! flagged.
//!
//! Not compiled — parsed by gt-lint only.

fn hot_path(v: Option<u64>) -> u64 {
    // gt-lint: allow(panic)
    v.unwrap()
}
