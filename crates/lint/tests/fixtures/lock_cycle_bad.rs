//! Fixture (positive, `lock-cycle`): two paths acquire the same pair of
//! locks in opposite orders, the textbook AB/BA deadlock.
//!
//! Not compiled — parsed by gt-lint only.

fn path_a(sh: &Shared) {
    let a = sh.alpha.lock();
    let b = sh.beta.lock();
    drop(b);
    drop(a);
}

fn path_b(sh: &Shared) {
    let b = sh.beta.lock();
    let a = sh.alpha.lock();
    drop(a);
    drop(b);
}
