//! Fixture (positive, `wildcard-arm`): a protocol dispatch with a silent
//! `_ => {}` catch-all — a newly added `Msg` variant would be swallowed.
//!
//! Not compiled — parsed by gt-lint only.

fn dispatch(m: Msg) {
    match m {
        Msg::Ping { .. } => reply(),
        _ => {}
    }
}
