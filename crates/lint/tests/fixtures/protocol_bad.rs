//! Fixture (positive, `protocol-conformance`): `Msg::Orphan` is sent but
//! no dispatch arm handles it; `Msg::Req` is sent with a declared ack
//! (`Msg::Reply`) that is never sent back and without any reachable
//! retry/timeout site; `Msg::Dead` is constructed but never sent nor
//! matched.
//!
//! Not compiled — parsed by gt-lint only.

// gt-lint: pair(Req -> Reply)
enum Msg {
    Orphan,
    Req,
    Reply,
    Dead,
}

fn client(ep: &Ep) {
    ep.send(0, Msg::Orphan);
    ep.send(0, Msg::Req);
    let _stale = Msg::Dead;
}

fn dispatch_msg(m: Msg) {
    match m {
        Msg::Req => {}
        Msg::Reply => {}
    }
}
