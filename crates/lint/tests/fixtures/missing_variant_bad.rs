//! Fixture (positive, `unhandled-variant`): `Msg::Gone` is declared but
//! never matched by name anywhere — only swept up by the binding arm.
//!
//! Not compiled — parsed by gt-lint only.

enum Msg {
    Ping,
    Pong,
    Gone,
}

fn dispatch(m: Msg) {
    match m {
        Msg::Ping => reply(),
        Msg::Pong => reply(),
        other => escalate(other),
    }
}
