//! Fixture (negative, `unhandled-variant`): every declared variant of the
//! protocol enum appears as an enum-qualified pattern.
//!
//! Not compiled — parsed by gt-lint only.

enum Msg {
    Ping,
    Pong,
    Gone,
}

fn dispatch(m: Msg) {
    match m {
        Msg::Ping => reply(),
        Msg::Pong => reply(),
        Msg::Gone => retire(),
    }
}
