//! Fixture (negative, `epoch-fence`): the handler checks the fence before
//! touching per-travel state, so stale traffic cannot resurrect a travel.
//!
//! Not compiled — parsed by gt-lint only.

fn handle_visit(sh: &Shared, travel: TravelId, vertex: u64) {
    if sh.is_retired(travel) {
        return;
    }
    sh.cache.lock().insert((travel, vertex), true);
}
