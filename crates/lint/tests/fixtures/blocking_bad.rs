//! Fixture (positive, `blocking-in-dispatcher`): a `handle_*` dispatcher
//! entry point blocks directly, and another blocks through a helper.
//!
//! Not compiled — parsed by gt-lint only.

fn handle_submit(sh: &Shared) {
    sleep(BACKOFF);
    admit(sh);
}

fn settle(sh: &Shared) {
    let _ = sh.rx.recv_timeout(DEADLINE);
}

fn handle_abort(sh: &Shared) {
    settle(sh);
}
