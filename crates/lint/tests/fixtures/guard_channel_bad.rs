//! Fixture (positive, `guard-across-channel`): a mutex guard stays live
//! across a blocking channel send, coupling lock order to message order.
//!
//! Not compiled — parsed by gt-lint only.

fn notify(sh: &Shared) {
    let g = sh.mailbox.lock();
    sh.ep.send(0, wake_message());
    drop(g);
}
