//! Fixture (positive, `guard-across-send`): a guard of a *ranked*
//! `OrderedMutex` stays live across a fabric send reached through a
//! helper call — the interprocedural case the intra-file rule misses.
//!
//! Not compiled — parsed by gt-lint only.

struct Shared {
    journal: OrderedMutex<Journal>,
}

fn build() -> Shared {
    Shared {
        journal: OrderedMutex::new(30, "journal", Journal::default()),
    }
}

fn forward(ep: &Ep) {
    ep.send(0, payload());
}

fn record_and_send(sh: &Shared, ep: &Ep) {
    let g = sh.journal.lock();
    forward(ep);
    drop(g);
}
