//! Fixture (negative, `guard-across-send`): the ranked guard is dropped
//! before the send; an unranked helper mutex across the send is the
//! sibling rule's business, not this one's.
//!
//! Not compiled — parsed by gt-lint only.

struct Shared {
    journal: OrderedMutex<Journal>,
}

fn build() -> Shared {
    Shared {
        journal: OrderedMutex::new(30, "journal", Journal::default()),
    }
}

fn record_then_send(sh: &Shared, ep: &Ep) {
    let payload = {
        let g = sh.journal.lock();
        g.render()
    };
    ep.send(0, payload);
}
