//! Fixture (negative, counter rules): the counter is incremented on its
//! code path and surfaced through a snapshot read.
//!
//! Not compiled — parsed by gt-lint only.

struct Metrics {
    live: AtomicU64,
}

fn bump(m: &Metrics) {
    m.live.fetch_add(1, Ordering::Relaxed);
}

fn snapshot(m: &Metrics) -> u64 {
    m.live.load(Ordering::Relaxed)
}
