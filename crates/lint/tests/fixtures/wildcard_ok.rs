//! Fixture (negative, `wildcard-arm`): the catch-all forwards to another
//! handler instead of silently dropping, which is a legitimate shape.
//!
//! Not compiled — parsed by gt-lint only.

fn dispatch(m: Msg) -> LoopCtl {
    match m {
        Msg::Ping { .. } => LoopCtl::Continue,
        other => handle_rest(other),
    }
}
