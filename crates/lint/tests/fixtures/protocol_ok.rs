//! Fixture (negative, `protocol-conformance`): every sent variant has a
//! dispatch arm, the declared `Req -> Reply` pair has an ack path and a
//! retry/timeout site at the sender, and nothing is constructed without
//! being sent or matched.
//!
//! Not compiled — parsed by gt-lint only.

// gt-lint: pair(Req -> Reply)
enum Msg {
    Req,
    Reply,
}

fn client(ep: &Ep, rx: &Rx) {
    let deadline = now();
    ep.send(0, Msg::Req);
    let _ = rx.recv_timeout(deadline);
}

fn dispatch_msg(ep: &Ep, m: Msg) {
    match m {
        Msg::Req => ep.send(1, Msg::Reply),
        Msg::Reply => {}
    }
}
