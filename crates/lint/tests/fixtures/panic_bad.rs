//! Fixture (positive, `panic`): `.unwrap()` and `panic!` in what gt-lint
//! treats as hot-path code — either one silently kills a server thread.
//!
//! Not compiled — parsed by gt-lint only.

fn apply(v: Option<u64>) -> u64 {
    v.unwrap()
}

fn boom() {
    panic!("protocol violation");
}
