//! Fixture (positive, `dead-counter` + `unsurfaced-counter`): `dead` is
//! declared but never incremented; `hidden` is incremented but never read
//! by a snapshot, so nothing can assert on it.
//!
//! Not compiled — parsed by gt-lint only.

struct Metrics {
    dead: AtomicU64,
    hidden: AtomicU64,
}

fn bump(m: &Metrics) {
    m.hidden.fetch_add(1, Ordering::Relaxed);
}
