//! Fixture (negative, `atomic-ordering`): the handshake flag uses
//! acquire/release pairing, and the `Relaxed` traffic is confined to a
//! counters struct no control flow consumes.
//!
//! Not compiled — parsed by gt-lint only.

struct Handshake {
    ready: AtomicBool,
}

struct QueueMetrics {
    pops: AtomicU64,
}

fn publish(h: &Handshake) {
    h.ready.store(true, Ordering::Release);
}

fn consume(h: &Handshake, m: &QueueMetrics) {
    if h.ready.load(Ordering::Acquire) {
        m.pops.fetch_add(1, Ordering::Relaxed);
    }
}

fn snapshot(m: &QueueMetrics) -> u64 {
    m.pops.load(Ordering::Relaxed)
}
