//! `repro` — regenerate every table and figure of the GraphTrek paper.
//!
//! ```text
//! repro <experiment…> [--quick] [--scale N] [--degree D] [--repeats R]
//!       [--servers 2,4,8,16,32] [--out DIR]
//!
//! experiments: table1 fig7 fig8 fig9 fig10 fig11 table2 table3 ablation all
//! ```
//!
//! Results are printed as paper-style tables and also written as JSON to
//! `--out` (default `bench_results/`). `EXPERIMENTS.md` records a full
//! run's paper-vs-measured comparison.

use graphtrek::prelude::*;
use gt_bench::{fig11_faults, measure, rmat_query, scratch, Campaign, LoadedCluster, RunRecord};
use gt_darshan::DarshanConfig;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut campaign = Campaign::default_small();
    let mut out_dir = PathBuf::from("bench_results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => campaign = Campaign::tiny(),
            "--scale" => {
                i += 1;
                campaign.rmat_scale = args[i].parse().expect("--scale N");
            }
            "--degree" => {
                i += 1;
                campaign.out_degree = args[i].parse().expect("--degree D");
            }
            "--repeats" => {
                i += 1;
                campaign.repeats = args[i].parse().expect("--repeats R");
            }
            "--servers" => {
                i += 1;
                campaign.servers = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--servers list"))
                    .collect();
            }
            "--async-max" => {
                i += 1;
                campaign.async_max_servers = args[i].parse().expect("--async-max N");
            }
            "--darshan-divisor" => {
                i += 1;
                campaign.darshan_divisor = args[i].parse().expect("--darshan-divisor N");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro <table1|fig7|fig8|fig9|fig10|fig11|table2|table3|ablation|all>…\n\
                     flags: --quick --scale N --degree D --repeats R --servers a,b,c --darshan-divisor N --out DIR"
                );
                return;
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = [
            "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "table3", "ablation",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    std::fs::create_dir_all(&out_dir).ok();
    println!(
        "campaign: RMAT scale {} (2^{} vertices, avg degree {}), servers {:?}, {} repeats",
        campaign.rmat_scale,
        campaign.rmat_scale,
        campaign.out_degree,
        campaign.servers,
        campaign.repeats
    );

    for exp in &experiments {
        match exp.as_str() {
            "table1" => table1(&campaign, &out_dir),
            "fig7" => fig7(&campaign, &out_dir),
            "fig8" => rmat_figure("fig8", 2, &campaign, &out_dir),
            "fig9" => rmat_figure("fig9", 4, &campaign, &out_dir),
            "fig10" => rmat_figure("fig10", 8, &campaign, &out_dir),
            "fig11" => fig11(&campaign, &out_dir),
            "table2" => table2(&campaign, &out_dir),
            "table3" => table3(&campaign, &out_dir),
            "ablation" => ablation(&campaign, &out_dir),
            other => eprintln!("unknown experiment {other:?} (see --help)"),
        }
    }
}

fn save(out_dir: &std::path::Path, name: &str, records: &[RunRecord]) {
    let path = out_dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(records) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warn: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warn: could not serialize {name}: {e}"),
    }
}

/// Sweep server counts × engines over an `steps`-step RMAT-1 traversal.
fn rmat_sweep(
    experiment: &str,
    steps: u16,
    engines: &[EngineKind],
    campaign: &Campaign,
    with_faults: bool,
) -> Vec<RunRecord> {
    let rmat = campaign.rmat1();
    let g = gt_rmat::generate(&rmat);
    let q = rmat_query(&rmat, steps, 42);
    let mut records = Vec::new();
    for &n in &campaign.servers {
        let loaded =
            LoadedCluster::load(&g, n, &scratch(&format!("{experiment}-{n}")), campaign.io);
        for &kind in engines {
            if kind == EngineKind::AsyncPlain && n > campaign.async_max_servers {
                println!(
                    "  {:<10} {:>2} servers:          -  (plain-async cascade not simulable at this host scale; see EXPERIMENTS.md)",
                    kind.label(),
                    n
                );
                continue;
            }
            let faults = if with_faults {
                fig11_faults(campaign, n, steps)
            } else {
                FaultPlan::none()
            };
            let rec = measure(
                experiment,
                &loaded,
                kind,
                &q,
                steps,
                campaign,
                faults,
                |e| e,
            );
            println!(
                "  {:<10} {:>2} servers: {:>10.1} ms  (|result|={}, real={}, combined={}, redundant={})",
                rec.engine,
                n,
                rec.mean_ms,
                rec.result_vertices,
                rec.totals.real_io,
                rec.totals.combined,
                rec.totals.redundant
            );
            records.push(rec);
        }
        loaded.cleanup();
    }
    records
}

fn print_matrix(title: &str, records: &[RunRecord]) {
    let mut engines: Vec<&str> = Vec::new();
    for r in records {
        if !engines.contains(&r.engine.as_str()) {
            engines.push(r.engine.as_str());
        }
    }
    let mut by_server: BTreeMap<usize, BTreeMap<&str, f64>> = BTreeMap::new();
    for r in records {
        by_server
            .entry(r.servers)
            .or_default()
            .insert(r.engine.as_str(), r.mean_ms);
    }
    println!("\n{title}");
    print!("{:>12}", "No. Servers");
    for e in &engines {
        print!("{e:>12}");
    }
    println!();
    for (n, row) in &by_server {
        print!("{n:>12}");
        for e in &engines {
            match row.get(e) {
                Some(ms) => print!("{:>10.1}ms", ms),
                None => print!("{:>12}", "-"),
            }
        }
        println!();
    }
    println!();
}

/// Table I — Sync-GT vs Async-GT vs GraphTrek, 8-step traversal on RMAT-1.
fn table1(campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== Table I: 8-step traversal on RMAT-1, all three engines ===");
    let records = rmat_sweep("table1", 8, &EngineKind::all(), campaign, false);
    print_matrix(
        "TABLE I — PERFORMANCE COMPARISON ON RMAT-1 GRAPH (8-step)",
        &records,
    );
    save(out_dir, "table1", &records);
}

/// Fig. 7 — per-server visit breakdown of an 8-step GraphTrek traversal.
fn fig7(campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== Fig. 7: per-server visit statistics (8-step, GraphTrek) ===");
    let n = *campaign.servers.last().unwrap_or(&32);
    let rmat = campaign.rmat1();
    let g = gt_rmat::generate(&rmat);
    let q = rmat_query(&rmat, 8, 42);
    let loaded = LoadedCluster::load(&g, n, &scratch("fig7"), campaign.io);
    let rec = measure(
        "fig7",
        &loaded,
        EngineKind::GraphTrek,
        &q,
        8,
        campaign,
        FaultPlan::none(),
        |e| e,
    );
    loaded.cleanup();
    // Servers reordered for presentation, exactly like the paper's figure:
    // descending by combined visits so the "slow, high-degree" servers
    // appear first.
    let mut rows: Vec<(usize, (u64, u64, u64))> =
        rec.per_server.iter().copied().enumerate().collect();
    rows.sort_by_key(|(_, (_, c, _))| std::cmp::Reverse(*c));
    println!("FIG. 7 — visits per server (sorted by combined visits)");
    println!(
        "{:>6} {:>12} {:>14} {:>16}",
        "server", "real I/O", "combined", "redundant"
    );
    for (s, (real, combined, redundant)) in &rows {
        println!("{s:>6} {real:>12} {combined:>14} {redundant:>16}");
    }
    let t = &rec.totals;
    println!(
        "totals: real={} combined={} redundant={} (sum={} == received requests)",
        t.real_io,
        t.combined,
        t.redundant,
        t.real_io + t.combined + t.redundant
    );
    save(out_dir, "fig7", &[rec]);
}

/// Figs. 8/9/10 — N-step traversal, Sync-GT vs GraphTrek.
fn rmat_figure(name: &str, steps: u16, campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== {name}: {steps}-step traversal on RMAT-1, Sync-GT vs GraphTrek ===");
    let records = rmat_sweep(
        name,
        steps,
        &[EngineKind::Sync, EngineKind::GraphTrek],
        campaign,
        false,
    );
    print_matrix(
        &format!("FIG — {steps}-step graph traversal on RMAT-1"),
        &records,
    );
    // Relative improvement per server count (paper: ~5% at 2 → ~24% at 32
    // for the 8-step case).
    let mut by_server: BTreeMap<usize, BTreeMap<String, f64>> = BTreeMap::new();
    for r in &records {
        by_server
            .entry(r.servers)
            .or_default()
            .insert(r.engine.clone(), r.mean_ms);
    }
    for (n, row) in &by_server {
        if let (Some(sync), Some(gt)) = (row.get("Sync-GT"), row.get("GraphTrek")) {
            println!(
                "  {n:>2} servers: GraphTrek vs Sync-GT = {:+.1}%",
                (sync - gt) / sync * 100.0
            );
        }
    }
    save(out_dir, name, &records);
}

/// Fig. 11 — 8-step traversal with simulated external stragglers.
fn fig11(campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== Fig. 11: 8-step traversal with external stragglers ===");
    println!(
        "  (three stragglers, {:?} delay x {} vertex accesses, steps 1/3/7)",
        campaign.straggler_delay, campaign.straggler_count
    );
    let records = rmat_sweep(
        "fig11",
        8,
        &[EngineKind::Sync, EngineKind::GraphTrek],
        campaign,
        true,
    );
    print_matrix(
        "FIG. 11 — performance with simulated external stragglers",
        &records,
    );
    let mut by_server: BTreeMap<usize, BTreeMap<String, f64>> = BTreeMap::new();
    for r in &records {
        by_server
            .entry(r.servers)
            .or_default()
            .insert(r.engine.clone(), r.mean_ms);
    }
    for (n, row) in &by_server {
        if let (Some(sync), Some(gt)) = (row.get("Sync-GT"), row.get("GraphTrek")) {
            println!(
                "  {n:>2} servers: speedup = {:.2}x (paper: ~2x at 32)",
                sync / gt
            );
        }
    }
    save(out_dir, "fig11", &records);
}

/// Table II — statistics of the (synthetic) rich-metadata graph.
fn table2(campaign: &Campaign, _out_dir: &std::path::Path) {
    println!("\n=== Table II: rich metadata graph statistics ===");
    let cfg = DarshanConfig::table2_scaled(campaign.darshan_divisor);
    let d = gt_darshan::generate(&cfg);
    println!(
        "TABLE II — STATISTICS OF RICH METADATA GRAPH (divisor = {}; paper row in parens)",
        campaign.darshan_divisor
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12}",
        "Users", "Jobs", "Executions", "Files", "Edges"
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12}",
        d.stats.users, d.stats.jobs, d.stats.executions, d.stats.files, d.stats.edges
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12} {:>12}",
        "(177)", "(47600)", "(123.4M)", "(34.6M)", "(239.8M)"
    );
    println!(
        "shape checks: execs/job = {:.0} (paper {:.0}), execs/files = {:.2} (paper {:.2})",
        d.stats.executions as f64 / d.stats.jobs as f64,
        123.4e6 / 47_600.0,
        d.stats.executions as f64 / d.stats.files as f64,
        123.4 / 34.6
    );
}

/// Table III — the §VII-D influence-audit query on the Darshan graph.
fn table3(campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== Table III: audit query on the Darshan-style graph ===");
    let cfg = DarshanConfig::table2_scaled(campaign.darshan_divisor);
    let d = gt_darshan::generate(&cfg);
    println!(
        "  graph: {} users / {} jobs / {} executions / {} files / {} edges",
        d.stats.users, d.stats.jobs, d.stats.executions, d.stats.files, d.stats.edges
    );
    // "Running this request for a randomized user on 32 servers."
    let n = *campaign.servers.last().unwrap_or(&32);
    let suspect = d.layout.user(d.stats.users / 2);
    let q = GTravel::v([suspect])
        .e("run")
        .ea(PropFilter::range("ts", 0i64, cfg.ts_range))
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn();
    let loaded = LoadedCluster::load(&d.graph, n, &scratch("table3"), campaign.io);
    let mut records = Vec::new();
    for kind in EngineKind::all() {
        let rec = measure(
            "table3",
            &loaded,
            kind,
            &q,
            5,
            campaign,
            FaultPlan::none(),
            |e| e,
        );
        println!(
            "  {:<10} {:>10.1} ms  (|result|={})",
            rec.engine, rec.mean_ms, rec.result_vertices
        );
        records.push(rec);
    }
    loaded.cleanup();
    println!("\nTABLE III — PERFORMANCE COMPARISON ON DARSHAN GRAPH ({n} servers)");
    print!("{:>12}", "No. Servers");
    for r in &records {
        print!("{:>12}", r.engine);
    }
    println!();
    print!("{n:>12}");
    for r in &records {
        print!("{:>10.1}ms", r.mean_ms);
    }
    println!("\n(paper: Sync 3575 ms / Async 4159 ms / GraphTrek 2839 ms)");
    save(out_dir, "table3", &records);
}

/// Ablation — decompose GraphTrek's gain into its two optimizations
/// (extends §VII-A's Async-GT comparison).
fn ablation(campaign: &Campaign, out_dir: &std::path::Path) {
    println!("\n=== Ablation: GraphTrek optimizations, 8-step RMAT-1 ===");
    let rmat = campaign.rmat1();
    let g = gt_rmat::generate(&rmat);
    let q = rmat_query(&rmat, 8, 42);
    let n = campaign.servers[campaign.servers.len() / 2];
    let loaded = LoadedCluster::load(&g, n, &scratch("ablation"), campaign.io);
    let variants: [(&str, EngineKind, Option<bool>, Option<bool>); 5] = [
        ("Sync-GT", EngineKind::Sync, None, None),
        ("Async (none)", EngineKind::AsyncPlain, None, None),
        ("Async +cache", EngineKind::AsyncPlain, Some(true), None),
        ("Async +merge", EngineKind::AsyncPlain, None, Some(true)),
        ("GraphTrek (both)", EngineKind::GraphTrek, None, None),
    ];
    let mut records = Vec::new();
    println!("  ({n} servers)");
    for (label, kind, cache, merge) in variants {
        let rec = measure(
            "ablation",
            &loaded,
            kind,
            &q,
            8,
            campaign,
            FaultPlan::none(),
            |mut e| {
                if let Some(c) = cache {
                    e = e.force_cache(c);
                }
                if let Some(m) = merge {
                    e = e.force_merging_queue(m);
                }
                e
            },
        );
        println!(
            "  {label:<18} {:>10.1} ms  (real={}, combined={}, redundant={})",
            rec.mean_ms, rec.totals.real_io, rec.totals.combined, rec.totals.redundant
        );
        records.push(rec);
    }
    loaded.cleanup();
    save(out_dir, "ablation", &records);
}
