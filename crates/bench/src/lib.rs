//! # gt-bench — experiment harness regenerating the paper's evaluation
//!
//! Each table and figure of the paper's §VII maps to one function here
//! (see `DESIGN.md`'s experiment index). The `repro` binary drives them
//! and prints paper-style rows; the Criterion benches under `benches/`
//! reuse the same workloads at reduced scale for statistical timing.
//!
//! Methodology notes (mirroring §VII):
//!
//! * the graph is held constant while the server count varies;
//! * every measured traversal starts **cold** (stores sealed + block
//!   caches dropped) so vertex visits hit the modeled disk;
//! * each configuration is repeated and the mean reported;
//! * one loaded partition set is shared by all three engines per server
//!   count, so every engine sees byte-identical storage.

use graphtrek::prelude::*;
use gt_graph::{EdgeCutPartitioner, GraphPartition, InMemoryGraph};
use gt_kvstore::{IoProfile, Store, StoreConfig};
use gt_net::NetConfig;
use gt_rmat::RmatConfig;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Scale knobs for a whole experiment campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// log2 vertices of the RMAT graphs (paper: 20).
    pub rmat_scale: u32,
    /// RMAT average out-degree (paper: 16).
    pub out_degree: u32,
    /// Attribute payload bytes (paper: 128).
    pub attr_bytes: usize,
    /// Server counts swept (paper: 2..32).
    pub servers: Vec<usize>,
    /// Measured repetitions per configuration.
    pub repeats: usize,
    /// Storage latency model.
    pub io: IoProfile,
    /// Network model.
    pub net: NetConfig,
    /// Worker threads per server.
    pub workers: usize,
    /// Darshan graph divisor for Table II/III (1 = paper scale).
    pub darshan_divisor: u64,
    /// Straggler delay for Fig. 11 (paper: 50 ms).
    pub straggler_delay: Duration,
    /// Straggler access count for Fig. 11 (paper: 500).
    pub straggler_count: u64,
    /// Largest server count at which the plain Async-GT baseline is run.
    ///
    /// Plain asynchronous traversal re-executes redundant visits, and on
    /// a host with few physical cores the resulting message churn is CPU
    /// work the simulation cannot parallelize away (the paper's testbed
    /// had 8 cores per backend node to absorb it). Beyond this bound the
    /// Async-GT cell is reported as "-"; see EXPERIMENTS.md.
    pub async_max_servers: usize,
}

impl Campaign {
    /// Laptop-scale defaults: the paper's setup compressed in graph size
    /// and per-access latency. Shapes, not absolutes. The cold-read cost
    /// is deliberately large relative to per-visit CPU time so that the
    /// traversal stays I/O-bound (the paper's regime) even when many
    /// simulated servers time-share few physical cores.
    pub fn default_small() -> Self {
        Campaign {
            rmat_scale: 11,
            out_degree: 16,
            attr_bytes: 64,
            servers: vec![2, 4, 8, 16, 32],
            repeats: 2,
            io: IoProfile {
                cold_read: Duration::from_millis(4),
                warm_read: Duration::from_micros(1),
                sequential_read: Duration::from_micros(20),
            },
            net: NetConfig::cluster(),
            workers: 2,
            darshan_divisor: 2_000,
            straggler_delay: Duration::from_millis(8),
            straggler_count: 100,
            async_max_servers: 8,
        }
    }

    /// Quick smoke-test scale (used by CI-style checks).
    pub fn tiny() -> Self {
        Campaign {
            rmat_scale: 9,
            out_degree: 8,
            attr_bytes: 32,
            servers: vec![2, 4],
            repeats: 1,
            darshan_divisor: 100_000,
            straggler_delay: Duration::from_micros(200),
            straggler_count: 40,
            ..Campaign::default_small()
        }
    }

    /// The RMAT-1 configuration at this campaign's scale.
    pub fn rmat1(&self) -> RmatConfig {
        RmatConfig {
            scale: self.rmat_scale,
            avg_out_degree: self.out_degree,
            attr_bytes: self.attr_bytes,
            ..RmatConfig::rmat1(self.rmat_scale)
        }
    }
}

/// One measured traversal configuration.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Experiment id ("table1", "fig8", …).
    pub experiment: String,
    /// Engine label ("Sync-GT" …).
    pub engine: String,
    /// Cluster size.
    pub servers: usize,
    /// Traversal steps.
    pub steps: u16,
    /// Per-repetition wall-clock milliseconds.
    pub samples_ms: Vec<f64>,
    /// Mean of `samples_ms`.
    pub mean_ms: f64,
    /// Result-set size (sanity: identical across engines).
    pub result_vertices: usize,
    /// Summed per-server counters after the final repetition.
    pub totals: VisitTotals,
    /// Per-server (real, combined, redundant) after the final repetition
    /// (Fig. 7 uses this).
    pub per_server: Vec<(u64, u64, u64)>,
}

/// Cluster-wide visit counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct VisitTotals {
    /// Real storage accesses.
    pub real_io: u64,
    /// Merged (combined) visits.
    pub combined: u64,
    /// Abandoned redundant visits.
    pub redundant: u64,
    /// Injected straggler delays.
    pub injected_delays: u64,
}

/// A loaded, sealed partition set reusable across engines.
pub struct LoadedCluster {
    /// One shard per server.
    pub partitions: Vec<Arc<GraphPartition>>,
    /// The placement function.
    pub partitioner: EdgeCutPartitioner,
    dir: PathBuf,
}

impl LoadedCluster {
    /// Load `graph` into `n_servers` fresh stores under `dir` and seal
    /// them cold.
    pub fn load(graph: &InMemoryGraph, n_servers: usize, dir: &Path, io: IoProfile) -> Self {
        std::fs::remove_dir_all(dir).ok();
        let partitioner = EdgeCutPartitioner::new(n_servers);
        let mut partitions = Vec::with_capacity(n_servers);
        for s in 0..n_servers {
            let scfg = StoreConfig {
                dir: dir.join(format!("server-{s}")),
                memtable_bytes: 32 << 20,
                bloom_bits_per_key: 10,
                // Deliberately small relative to the graph (the paper's
                // RocksDB block cache could not hold its 2^20-vertex
                // graph either): cross-step re-visits mostly miss, which
                // is precisely the I/O that execution merging saves.
                block_cache_runs: 16,
                io,
                sync_wal: false,
                auto_compact_segments: 0,
                version_clock: None,
            };
            let store = Arc::new(Store::open(scfg).expect("open store"));
            partitions.push(Arc::new(
                GraphPartition::open(store).expect("open partition"),
            ));
        }
        for (sid, part) in partitions.iter().enumerate() {
            let verts = graph
                .iter_vertices()
                .filter(|v| partitioner.owner(v.id) == sid)
                .cloned();
            let edges = graph
                .iter_edges()
                .filter(|e| partitioner.owner(e.src) == sid);
            part.load(verts, edges).expect("load shard");
        }
        for p in &partitions {
            p.seal_cold().expect("seal");
        }
        LoadedCluster {
            partitions,
            partitioner,
            dir: dir.to_path_buf(),
        }
    }

    /// Remove the on-disk stores.
    pub fn cleanup(self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// An `n`-step RMAT traversal query from a deterministic random source.
pub fn rmat_query(cfg: &RmatConfig, steps: u16, source_seed: u64) -> GTravel {
    let mut q = GTravel::v([gt_rmat::random_vertex(cfg, source_seed)]);
    for _ in 0..steps {
        q = q.e(gt_rmat::RMAT_ELABEL);
    }
    q
}

/// Run one engine configuration `repeats` times cold and collect stats.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    experiment: &str,
    loaded: &LoadedCluster,
    kind: EngineKind,
    query: &GTravel,
    steps: u16,
    campaign: &Campaign,
    faults: FaultPlan,
    engine_tweak: impl Fn(EngineConfig) -> EngineConfig,
) -> RunRecord {
    let ecfg = engine_tweak(
        EngineConfig::new(kind)
            .workers(campaign.workers)
            .net(campaign.net)
            .faults(faults),
    );
    let cluster =
        graphtrek::Cluster::from_partitions(loaded.partitions.clone(), loaded.partitioner, ecfg)
            .expect("cluster");
    let mut samples = Vec::with_capacity(campaign.repeats);
    let mut result_vertices = 0usize;
    for _ in 0..campaign.repeats {
        cluster.drop_storage_caches();
        cluster.reset_metrics();
        let r = cluster
            .submit_opts(query, Duration::from_secs(600), 0)
            .expect("traversal");
        samples.push(r.elapsed.as_secs_f64() * 1e3);
        result_vertices = r.vertices.len();
    }
    let metrics = cluster.metrics();
    let totals = VisitTotals {
        real_io: metrics.iter().map(|m| m.real_io_visits).sum(),
        combined: metrics.iter().map(|m| m.combined_visits).sum(),
        redundant: metrics.iter().map(|m| m.redundant_visits).sum(),
        injected_delays: metrics.iter().map(|m| m.injected_delays).sum(),
    };
    let per_server = metrics
        .iter()
        .map(|m| (m.real_io_visits, m.combined_visits, m.redundant_visits))
        .collect();
    cluster.shutdown();
    let mean_ms = samples.iter().sum::<f64>() / samples.len() as f64;
    RunRecord {
        experiment: experiment.to_string(),
        engine: kind.label().to_string(),
        servers: loaded.partitions.len(),
        steps,
        samples_ms: samples,
        mean_ms,
        result_vertices,
        totals,
        per_server,
    }
}

/// Fig. 11 fault plan at this campaign's scale: three stragglers placed
/// round-robin over three spread-out servers at steps 1/3/7 (§VII-C).
pub fn fig11_faults(campaign: &Campaign, n_servers: usize, depth: u16) -> FaultPlan {
    let picks: Vec<usize> = [0usize, 1, 2]
        .into_iter()
        .map(|i| (i * n_servers / 3).min(n_servers - 1))
        .collect();
    FaultPlan::round_robin_stragglers(
        &picks,
        depth,
        campaign.straggler_delay,
        campaign.straggler_count,
    )
}

/// Scratch directory for one experiment.
pub fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gt-bench-{}-{tag}", std::process::id()))
}

/// A ready-to-measure cluster + query pair for the Criterion benches.
///
/// Keeps the loaded partition set alive for the cluster's lifetime and
/// exposes [`BenchSetup::run_cold`], the measured unit: drop storage
/// caches, then submit the traversal once.
pub struct BenchSetup {
    /// The running cluster.
    pub cluster: graphtrek::Cluster,
    /// The traversal under test.
    pub query: GTravel,
    loaded: Option<LoadedCluster>,
}

impl BenchSetup {
    /// One cold traversal; returns its wall-clock time.
    pub fn run_cold(&self) -> Duration {
        self.cluster.drop_storage_caches();
        let r = self
            .cluster
            .submit_opts(&self.query, Duration::from_secs(600), 0)
            .expect("bench traversal");
        r.elapsed
    }

    /// Shut down and remove scratch state.
    pub fn teardown(mut self) {
        self.cluster.shutdown();
        if let Some(l) = self.loaded.take() {
            l.cleanup();
        }
    }
}

/// The reduced campaign used by `cargo bench` (Criterion drives the
/// repetitions, so each iteration must stay sub-second).
pub fn bench_campaign() -> Campaign {
    Campaign {
        rmat_scale: 9,
        out_degree: 8,
        attr_bytes: 32,
        servers: vec![2, 8],
        repeats: 1,
        io: IoProfile {
            cold_read: Duration::from_micros(300),
            warm_read: Duration::from_micros(1),
            sequential_read: Duration::from_micros(5),
        },
        darshan_divisor: 100_000,
        straggler_delay: Duration::from_micros(500),
        straggler_count: 60,
        ..Campaign::default_small()
    }
}

/// Build a bench setup over an RMAT-1 graph.
pub fn rmat_bench_setup(
    kind: EngineKind,
    n_servers: usize,
    steps: u16,
    faults: FaultPlan,
) -> BenchSetup {
    let campaign = bench_campaign();
    let rmat = campaign.rmat1();
    let g = gt_rmat::generate(&rmat);
    let loaded = LoadedCluster::load(
        &g,
        n_servers,
        &scratch(&format!("crit-{kind:?}-{n_servers}-{steps}")),
        campaign.io,
    );
    let cluster = graphtrek::Cluster::from_partitions(
        loaded.partitions.clone(),
        loaded.partitioner,
        EngineConfig::new(kind)
            .workers(campaign.workers)
            .net(campaign.net)
            .faults(faults),
    )
    .expect("cluster");
    BenchSetup {
        cluster,
        query: rmat_query(&rmat, steps, 42),
        loaded: Some(loaded),
    }
}

/// Build a bench setup over the synthetic Darshan graph with the
/// Table III audit query.
pub fn darshan_bench_setup(kind: EngineKind, n_servers: usize) -> BenchSetup {
    let campaign = bench_campaign();
    let cfg = gt_darshan::DarshanConfig::table2_scaled(campaign.darshan_divisor);
    let d = gt_darshan::generate(&cfg);
    let loaded = LoadedCluster::load(
        &d.graph,
        n_servers,
        &scratch(&format!("crit-darshan-{kind:?}-{n_servers}")),
        campaign.io,
    );
    let cluster = graphtrek::Cluster::from_partitions(
        loaded.partitions.clone(),
        loaded.partitioner,
        EngineConfig::new(kind)
            .workers(campaign.workers)
            .net(campaign.net),
    )
    .expect("cluster");
    let suspect = d.layout.user(d.stats.users / 2);
    let query = GTravel::v([suspect])
        .e("run")
        .ea(PropFilter::range("ts", 0i64, cfg.ts_range))
        .e("hasExecutions")
        .e("write")
        .e("readBy")
        .e("write")
        .rtn();
    BenchSetup {
        cluster,
        query,
        loaded: Some(loaded),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_campaign_sweep_runs_and_engines_agree() {
        let campaign = Campaign::tiny();
        let rmat = campaign.rmat1();
        let g = gt_rmat::generate(&rmat);
        let q = rmat_query(&rmat, 4, 7);
        let loaded = LoadedCluster::load(&g, 2, &scratch("libtest"), campaign.io);
        let mut counts = Vec::new();
        for kind in EngineKind::all() {
            let rec = measure(
                "smoke",
                &loaded,
                kind,
                &q,
                4,
                &campaign,
                FaultPlan::none(),
                |e| e,
            );
            assert!(rec.mean_ms > 0.0);
            assert!(rec.totals.real_io > 0);
            counts.push(rec.result_vertices);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        loaded.cleanup();
    }

    #[test]
    fn fig11_fault_plan_spreads_servers() {
        let c = Campaign::tiny();
        let plan = fig11_faults(&c, 32, 8);
        assert_eq!(plan.stragglers.len(), 3);
        let servers: Vec<usize> = plan.stragglers.iter().map(|s| s.server).collect();
        assert_eq!(servers, vec![0, 10, 21]);
    }
}
