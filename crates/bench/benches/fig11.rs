//! Fig. 11 — traversal under transient external stragglers (fixed delay
//! on a burst of vertex accesses at steps 1/3/7), Sync-GT vs GraphTrek.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::prelude::*;
use gt_bench::{bench_campaign, fig11_faults, rmat_bench_setup};

fn bench_fig11(c: &mut Criterion) {
    let campaign = bench_campaign();
    let mut group = c.benchmark_group("fig11_stragglers");
    group.sample_size(10);
    for n_servers in campaign.servers.clone() {
        for kind in [EngineKind::Sync, EngineKind::GraphTrek] {
            let faults = fig11_faults(&campaign, n_servers, 8);
            let setup = rmat_bench_setup(kind, n_servers, 8, faults);
            group.bench_function(format!("{}/{}srv", kind.label(), n_servers), |b| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total += setup.run_cold();
                    }
                    total
                })
            });
            setup.teardown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
