//! Table III — the §VII-D influence-audit query on the synthetic Darshan
//! metadata graph, all three engines.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::prelude::*;
use gt_bench::{bench_campaign, darshan_bench_setup};

fn bench_table3(c: &mut Criterion) {
    let n_servers = *bench_campaign().servers.last().unwrap();
    let mut group = c.benchmark_group("table3_darshan_audit");
    group.sample_size(10);
    for kind in EngineKind::all() {
        let setup = darshan_bench_setup(kind, n_servers);
        group.bench_function(format!("{}/{}srv", kind.label(), n_servers), |b| {
            b.iter_custom(|iters| {
                let mut total = std::time::Duration::ZERO;
                for _ in 0..iters {
                    total += setup.run_cold();
                }
                total
            })
        });
        setup.teardown();
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
