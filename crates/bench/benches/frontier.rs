//! Frontier fan-out and point-read throughput, replica reads off vs on
//! (the self-healing PR's read-routing change), plus an
//! ingest-while-traversing lane with MVCC snapshot isolation off vs on
//! (the versioned-read overhead). Emits `BENCH_frontier.json` at the
//! repo root with the before/after numbers so CI can diff them across
//! commits.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::engine::TransportKind;
use graphtrek::frontdoor::FrontDoor;
use graphtrek::prelude::*;
use graphtrek::qos::QosConfig;
use gt_client::Client;
use gt_graph::{Edge, InMemoryGraph, Props, Vertex};
use gt_proto::SubmitOpts;
use gt_transport::SocketAddrSpec;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const N_SERVERS: usize = 3;
const REPLICATION: usize = 2;
const N_VERTICES: u64 = 400;

/// Layered metadata-ish graph, same shape as the chaos suites.
fn bench_graph(seed: u64) -> InMemoryGraph {
    let mut x = seed | 1;
    let mut next = move || {
        // splitmix64 — keep the bench free of RNG crate churn.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut g = InMemoryGraph::new();
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    for i in 0..N_VERTICES {
        let t = types[next() as usize % types.len()];
        g.add_vertex(Vertex::new(
            i,
            t,
            Props::new().with("w", (next() % 10) as i64),
        ));
    }
    for _ in 0..N_VERTICES * 4 {
        let src = next() % N_VERTICES;
        let dst = next() % N_VERTICES;
        let label = labels[next() as usize % labels.len()];
        g.add_edge(Edge::new(
            src,
            label,
            dst,
            Props::new().with("ts", (next() % 100) as i64),
        ));
    }
    g
}

fn fanout_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3, 4, 5, 6, 7])
        .e("link")
        .e("read")
        .e("link")
        .e("link")
}

fn build_cluster(
    g: &InMemoryGraph,
    replica_reads: bool,
    tag: &str,
) -> (Cluster, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("gt-bench-frontier-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        g,
        ClusterConfig::new(&dir, N_SERVERS).replication(REPLICATION),
        EngineConfig::new(EngineKind::GraphTrek).replica_reads(replica_reads),
    )
    .expect("build cluster");
    (cluster, dir)
}

/// Time `ops` point reads round-robin over the vertex space.
fn point_reads(cluster: &Cluster, ops: u64) -> Duration {
    let start = Instant::now();
    for i in 0..ops {
        std::hint::black_box(
            cluster
                .get_vertex(VertexId((i * 7) % N_VERTICES))
                .expect("point read"),
        );
    }
    start.elapsed()
}

/// Time `ops` frontier fan-out traversals.
fn frontier_travels(cluster: &Cluster, q: &GTravel, ops: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..ops {
        std::hint::black_box(cluster.submit(q).expect("travel"));
    }
    start.elapsed()
}

/// Fresh vertex ids for the ingest lane, shared across warmup, the JSON
/// lanes and criterion's re-runs so every ingested row is new.
static NEXT_INGEST_ID: AtomicU64 = AtomicU64::new(10_000);

/// Time `ops` rounds of acked single-row ingest followed by a frontier
/// traversal, so traversal reads race freshly written (and, with
/// versioning on, multi-version) rows.
fn ingest_travels(cluster: &Cluster, q: &GTravel, ops: u64) -> Duration {
    let start = Instant::now();
    for i in 0..ops {
        let id = NEXT_INGEST_ID.fetch_add(1, Ordering::Relaxed);
        cluster
            .ingest(
                vec![Vertex::new(id, "File", Props::new().with("w", 1i64))],
                vec![Edge::new(i % 8, "link", id, Props::new().with("ts", 1i64))],
            )
            .expect("ingest");
        std::hint::black_box(cluster.submit(q).expect("travel"));
    }
    start.elapsed()
}

struct Lane {
    ops: u64,
    ns_per_op: f64,
    ops_per_sec: f64,
}

impl Lane {
    fn new(ops: u64, total: Duration) -> Self {
        let ns = total.as_nanos() as f64 / ops as f64;
        Lane {
            ops,
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
        }
    }

    // The vendored serde_json stand-in renders Debug, not JSON, so the
    // report (a small flat record) is formatted by hand to stay strict
    // JSON for downstream tooling.
    fn json(&self) -> String {
        format!(
            "{{\"ops\": {}, \"ns_per_op\": {:.1}, \"ops_per_sec\": {:.1}}}",
            self.ops, self.ns_per_op, self.ops_per_sec
        )
    }
}

/// Per-request latency lane: p50/p99 over individually timed requests,
/// for the end-to-end front-door comparison (in-proc fabric vs UDS vs
/// TCP mesh, and the wire protocol on top).
struct LatLane {
    ops: u64,
    p50_ns: f64,
    p99_ns: f64,
}

impl LatLane {
    fn measure(ops: u64, mut f: impl FnMut(u64)) -> Self {
        let mut samples: Vec<u64> = (0..ops)
            .map(|i| {
                let t = Instant::now();
                f(i);
                t.elapsed().as_nanos() as u64
            })
            .collect();
        samples.sort_unstable();
        let pct = |p: f64| samples[((samples.len() - 1) as f64 * p).round() as usize] as f64;
        LatLane {
            ops,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"ops\": {}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}}}",
            self.ops, self.p50_ns, self.p99_ns
        )
    }
}

/// Point read expressed as a no-step travel (what a proto client sends),
/// id round-robin over the vertex space.
fn point_query(i: u64) -> GTravel {
    GTravel::v([(i * 7) % N_VERTICES]).rtn()
}

fn two_hop_query() -> GTravel {
    GTravel::v([0u64, 1, 2, 3]).e("link").e("read")
}

/// In-proc vs UDS vs TCP request latency through `Cluster::submit`:
/// same graph, same engine, only the server↔server transport differs.
fn e2e_lanes(g: &InMemoryGraph, kind: TransportKind) -> (LatLane, LatLane) {
    let dir = std::env::temp_dir().join(format!(
        "gt-bench-e2e-{}-{}",
        kind.label(),
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        g,
        ClusterConfig::new(&dir, N_SERVERS),
        EngineConfig::new(EngineKind::GraphTrek).transport(kind),
    )
    .expect("build cluster");
    let hop = two_hop_query();
    for i in 0..10 {
        cluster.submit(&point_query(i)).expect("warm point");
    }
    cluster.submit(&hop).expect("warm travel");
    let point = LatLane::measure(E2E_POINT_OPS, |i| {
        std::hint::black_box(cluster.submit(&point_query(i)).expect("point travel"));
    });
    let hop_lane = LatLane::measure(E2E_HOP_OPS, |_| {
        std::hint::black_box(cluster.submit(&hop).expect("2-hop travel"));
    });
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    (point, hop_lane)
}

/// The full front door: gt-client wire protocol over a TCP loopback
/// socket into a `FrontDoor` served off the in-proc cluster. The delta
/// against the in-proc `Cluster::submit` lane is the protocol + socket
/// round-trip cost.
fn door_lanes(g: &InMemoryGraph) -> (LatLane, LatLane) {
    let dir = std::env::temp_dir().join(format!("gt-bench-e2e-door-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cluster = Cluster::build(
        g,
        ClusterConfig::new(&dir, N_SERVERS),
        EngineConfig::new(EngineKind::GraphTrek),
    )
    .expect("build cluster");
    let door = FrontDoor::serve(
        cluster.handle(),
        SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        QosConfig::default(),
    )
    .expect("serve front door");
    let mut client = Client::connect(door.local_addr(), "bench").expect("connect");
    let hop_text = two_hop_query().render();
    for i in 0..10 {
        client
            .run(&point_query(i).render(), SubmitOpts::default())
            .expect("warm door point");
    }
    client
        .run(&hop_text, SubmitOpts::default())
        .expect("warm door travel");
    let point = LatLane::measure(E2E_POINT_OPS, |i| {
        std::hint::black_box(
            client
                .run(&point_query(i).render(), SubmitOpts::default())
                .expect("door point"),
        );
    });
    let hop = LatLane::measure(E2E_HOP_OPS, |_| {
        std::hint::black_box(
            client
                .run(&hop_text, SubmitOpts::default())
                .expect("door 2-hop"),
        );
    });
    client.close();
    door.stop();
    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    (point, hop)
}

const E2E_POINT_OPS: u64 = 200;
const E2E_HOP_OPS: u64 = 60;

fn bench(c: &mut Criterion) {
    let g = bench_graph(7);
    let q = fanout_query();
    let (off, off_dir) = build_cluster(&g, false, "off");
    let (on, on_dir) = build_cluster(&g, true, "on");
    // Single-replica clusters for the MVCC lane: identical except for
    // the snapshot-isolation flag, so the delta is the versioning cost.
    let mk_snap = |versioned: bool, tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("gt-bench-frontier-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cluster = Cluster::build(
            &g,
            ClusterConfig::new(&dir, N_SERVERS),
            EngineConfig::new(EngineKind::GraphTrek).snapshot_isolation(versioned),
        )
        .expect("build cluster");
        (cluster, dir)
    };
    let (snap_off, snap_off_dir) = mk_snap(false, "snap-off");
    let (snap_on, snap_on_dir) = mk_snap(true, "snap-on");

    const POINT_OPS: u64 = 2000;
    const TRAVEL_OPS: u64 = 30;
    const INGEST_OPS: u64 = 20;
    // Warm all clusters so the JSON numbers compare steady states.
    point_reads(&off, 200);
    point_reads(&on, 200);
    frontier_travels(&off, &q, 3);
    frontier_travels(&on, &q, 3);
    ingest_travels(&snap_off, &q, 3);
    ingest_travels(&snap_on, &q, 3);

    let pr_off = Lane::new(POINT_OPS, point_reads(&off, POINT_OPS));
    let pr_on = Lane::new(POINT_OPS, point_reads(&on, POINT_OPS));
    let fr_off = Lane::new(TRAVEL_OPS, frontier_travels(&off, &q, TRAVEL_OPS));
    let fr_on = Lane::new(TRAVEL_OPS, frontier_travels(&on, &q, TRAVEL_OPS));
    let iv_off = Lane::new(INGEST_OPS, ingest_travels(&snap_off, &q, INGEST_OPS));
    let iv_on = Lane::new(INGEST_OPS, ingest_travels(&snap_on, &q, INGEST_OPS));
    let served: u64 = on.metrics().iter().map(|m| m.replica_reads).sum();
    assert!(
        served > 0,
        "replica-read cluster never routed a read to a replica"
    );
    let pinned: u64 = snap_on.metrics().iter().map(|m| m.views_pinned).sum();
    assert!(
        pinned > 0,
        "versioned cluster never pinned a travel's read view"
    );

    // End-to-end request latency: the same queries through the in-proc
    // fabric, a UDS mesh, a TCP mesh, and the gt-client wire protocol.
    let (e2e_point_inproc, e2e_hop_inproc) = e2e_lanes(&g, TransportKind::InProc);
    let (e2e_point_uds, e2e_hop_uds) = e2e_lanes(&g, TransportKind::Uds);
    let (e2e_point_tcp, e2e_hop_tcp) = e2e_lanes(&g, TransportKind::Tcp);
    let (door_point, door_hop) = door_lanes(&g);

    let mut report = String::from("{\n");
    let _ = writeln!(report, "  \"bench\": \"frontier\",");
    let _ = writeln!(report, "  \"n_servers\": {N_SERVERS},");
    let _ = writeln!(report, "  \"replication\": {REPLICATION},");
    let _ = writeln!(report, "  \"engine\": \"GraphTrek\",");
    let _ = writeln!(report, "  \"point_read_off\": {},", pr_off.json());
    let _ = writeln!(report, "  \"point_read_on\": {},", pr_on.json());
    let _ = writeln!(
        report,
        "  \"point_read_speedup\": {:.3},",
        pr_off.ns_per_op / pr_on.ns_per_op
    );
    let _ = writeln!(report, "  \"frontier_off\": {},", fr_off.json());
    let _ = writeln!(report, "  \"frontier_on\": {},", fr_on.json());
    let _ = writeln!(
        report,
        "  \"frontier_speedup\": {:.3},",
        fr_off.ns_per_op / fr_on.ns_per_op
    );
    let _ = writeln!(report, "  \"replica_reads_served\": {served},");
    let _ = writeln!(
        report,
        "  \"ingest_travel_versioning_off\": {},",
        iv_off.json()
    );
    let _ = writeln!(
        report,
        "  \"ingest_travel_versioning_on\": {},",
        iv_on.json()
    );
    let _ = writeln!(
        report,
        "  \"snapshot_overhead\": {:.3},",
        iv_on.ns_per_op / iv_off.ns_per_op
    );
    let _ = writeln!(report, "  \"views_pinned\": {pinned},");
    let _ = writeln!(
        report,
        "  \"e2e_point_inproc\": {},",
        e2e_point_inproc.json()
    );
    let _ = writeln!(report, "  \"e2e_point_uds\": {},", e2e_point_uds.json());
    let _ = writeln!(report, "  \"e2e_point_tcp\": {},", e2e_point_tcp.json());
    let _ = writeln!(report, "  \"e2e_2hop_inproc\": {},", e2e_hop_inproc.json());
    let _ = writeln!(report, "  \"e2e_2hop_uds\": {},", e2e_hop_uds.json());
    let _ = writeln!(report, "  \"e2e_2hop_tcp\": {},", e2e_hop_tcp.json());
    let _ = writeln!(report, "  \"e2e_door_point\": {},", door_point.json());
    let _ = writeln!(report, "  \"e2e_door_2hop\": {}", door_hop.json());
    report.push_str("}\n");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    std::fs::write(out, report).expect("write BENCH_frontier.json");
    eprintln!("wrote {out}");

    // Criterion lane over the same clusters, for trend tracking.
    let mut group = c.benchmark_group("frontier");
    group.sample_size(10);
    for (label, cluster) in [("replica_reads_off", &off), ("replica_reads_on", &on)] {
        group.bench_function(format!("point_read/{label}"), |b| {
            b.iter_custom(|iters| point_reads(cluster, iters))
        });
        group.bench_function(format!("fanout/{label}"), |b| {
            b.iter_custom(|iters| frontier_travels(cluster, &q, iters))
        });
    }
    for (label, cluster) in [("versioning_off", &snap_off), ("versioning_on", &snap_on)] {
        group.bench_function(format!("ingest_travel/{label}"), |b| {
            b.iter_custom(|iters| ingest_travels(cluster, &q, iters))
        });
    }
    group.finish();

    off.shutdown();
    on.shutdown();
    snap_off.shutdown();
    snap_on.shutdown();
    std::fs::remove_dir_all(off_dir).ok();
    std::fs::remove_dir_all(on_dir).ok();
    std::fs::remove_dir_all(snap_off_dir).ok();
    std::fs::remove_dir_all(snap_on_dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
