//! Fig10 — 8-step RMAT-1 traversal, Sync-GT vs GraphTrek, at
//! reduced Criterion scale (the `repro` binary runs the full sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::prelude::*;
use gt_bench::{bench_campaign, rmat_bench_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_8step");
    group.sample_size(10);
    for n_servers in bench_campaign().servers.clone() {
        for kind in [EngineKind::Sync, EngineKind::GraphTrek] {
            let setup = rmat_bench_setup(kind, n_servers, 8, FaultPlan::none());
            group.bench_function(format!("{}/{}srv", kind.label(), n_servers), |b| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total += setup.run_cold();
                    }
                    total
                })
            });
            setup.teardown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
