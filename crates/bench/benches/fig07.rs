//! Fig. 7 — the instrumented GraphTrek traversal whose per-server visit
//! statistics the paper plots. The benchmark measures the traversal that
//! produces the statistics and asserts the §VII-A accounting identity on
//! every iteration (instrumentation must not drift under load).

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::prelude::*;
use gt_bench::{bench_campaign, rmat_bench_setup};

fn bench_fig7(c: &mut Criterion) {
    let n_servers = *bench_campaign().servers.last().unwrap();
    let setup = rmat_bench_setup(EngineKind::GraphTrek, n_servers, 8, FaultPlan::none());
    let mut group = c.benchmark_group("fig07_instrumented");
    group.sample_size(10);
    group.bench_function(format!("GraphTrek/{}srv", n_servers), |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                setup.cluster.reset_metrics();
                total += setup.run_cold();
                for m in setup.cluster.metrics() {
                    assert_eq!(
                        m.redundant_visits + m.combined_visits + m.real_io_visits,
                        m.requests_received,
                        "Fig. 7 accounting identity violated"
                    );
                }
            }
            total
        })
    });
    group.finish();
    setup.teardown();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
