//! Micro-benchmarks of the substrate hot paths the traversal engine
//! leans on: storage point reads and typed edge scans, the traversal-
//! affiliate cache, the scheduling/merging queue, and the partitioner.
//! (Not a paper table — supporting data for DESIGN.md's design choices.)

use criterion::{criterion_group, criterion_main, Criterion};
use graphtrek::cache::TraversalCache;
use graphtrek::prelude::*;
use graphtrek::queue::{FifoQueue, MergingQueue, ReqMode, RequestQueue, RequestState, WorkItem};
use gt_graph::{EdgeCutPartitioner, GraphPartition, VertexId};
use gt_kvstore::{IoProfile, Store, StoreConfig};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::Instant;

fn storage_partition() -> (GraphPartition, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("gt-micro-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(Store::open(StoreConfig::new(&dir).io(IoProfile::free())).unwrap());
    let p = GraphPartition::open(store).unwrap();
    let g = gt_rmat::generate(&gt_rmat::RmatConfig {
        scale: 10,
        avg_out_degree: 8,
        attr_bytes: 32,
        ..gt_rmat::RmatConfig::rmat1(10)
    });
    p.load(g.iter_vertices().cloned(), g.iter_edges()).unwrap();
    p.seal_cold().unwrap();
    (p, dir)
}

fn bench_storage(c: &mut Criterion) {
    let (p, dir) = storage_partition();
    let mut group = c.benchmark_group("micro_storage");
    group.bench_function("get_vertex_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            std::hint::black_box(p.get_vertex(VertexId(i)).unwrap())
        })
    });
    group.bench_function("edges_out_typed_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            std::hint::black_box(p.edges_out(VertexId(i), gt_rmat::RMAT_ELABEL).unwrap())
        })
    });
    group.finish();
    drop(p);
    std::fs::remove_dir_all(dir).ok();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_traversal_cache");
    group.bench_function("observe_miss_then_hit", |b| {
        let cache = TraversalCache::new(1 << 16, 0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // One miss (insert) and one hit (redundant) per iteration.
            std::hint::black_box(cache.observe(1, 3, VertexId(i), &vec![]));
            std::hint::black_box(cache.observe(1, 3, VertexId(i), &vec![]));
        })
    });
    group.finish();
}

fn req(depth: u16) -> Arc<RequestState> {
    Arc::new(RequestState {
        travel: 1,
        depth,
        exec: graphtrek::ExecId::new(0, depth as u64),
        plan: Arc::new(GTravel::v([1u64]).e("x").compile().unwrap()),
        coordinator: 0,
        tepoch: 0,
        mode: ReqMode::Async,
        remaining: AtomicUsize::new(usize::MAX / 2),
        out: parking_lot::Mutex::new(Default::default()),
    })
}

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_queues");
    group.bench_function("fifo_push_pop", |b| {
        let q = FifoQueue::new();
        let r = req(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push_many(vec![WorkItem {
                vertex: VertexId(i),
                depth: 1,
                tokens: vec![],
                req: r.clone(),
                enqueued_at: Instant::now(),
            }]);
            std::hint::black_box(q.pop());
        })
    });
    group.bench_function("merging_push_pop_2depths", |b| {
        let q = MergingQueue::new();
        let r1 = req(1);
        let r2 = req(2);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            q.push_many(vec![
                WorkItem {
                    vertex: VertexId(i),
                    depth: 1,
                    tokens: vec![],
                    req: r1.clone(),
                    enqueued_at: Instant::now(),
                },
                WorkItem {
                    vertex: VertexId(i),
                    depth: 2,
                    tokens: vec![],
                    req: r2.clone(),
                    enqueued_at: Instant::now(),
                },
            ]);
            std::hint::black_box(q.pop());
        })
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_partitioner");
    let p = EdgeCutPartitioner::new(32);
    group.bench_function("owner", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(p.owner(VertexId(i)))
        })
    });
    group.finish();
}

fn bench_rtn_query(c: &mut Criterion) {
    // Compilation + oracle evaluation of a provenance-style plan on a
    // small in-memory graph: the language layer's end-to-end cost.
    let g = gt_rmat::generate(&gt_rmat::RmatConfig {
        scale: 8,
        avg_out_degree: 6,
        attr_bytes: 8,
        ..gt_rmat::RmatConfig::rmat1(8)
    });
    let q = GTravel::v([VertexId(1)])
        .e(gt_rmat::RMAT_ELABEL)
        .rtn()
        .e(gt_rmat::RMAT_ELABEL)
        .va(PropFilter::range("vid", 0i64, 200i64));
    let plan = q.compile().unwrap();
    let mut group = c.benchmark_group("micro_lang");
    group.bench_function("oracle_rtn_traversal", |b| {
        b.iter(|| std::hint::black_box(graphtrek::oracle::traverse(&g, &plan)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_storage,
    bench_cache,
    bench_queues,
    bench_partitioner,
    bench_rtn_query
);
criterion_main!(benches);
