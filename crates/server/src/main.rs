//! `gt-server` — one GraphTrek node as an OS process.
//!
//! Standalone (whole cluster in one process):
//!
//! ```text
//! gt-server --graph g.txt --dir /tmp/gt --servers 3 --listen tcp:127.0.0.1:7171
//! ```
//!
//! One node of a 3-process cluster over UDS (run three times with
//! `--me 0|1|2`):
//!
//! ```text
//! gt-server --graph g.txt --dir /tmp/gt-0 --listen uds:/tmp/door-0.sock \
//!           --cluster uds:/tmp/mesh-0.sock,uds:/tmp/mesh-1.sock,uds:/tmp/mesh-2.sock \
//!           --me 0
//! ```

use graphtrek::engine::EngineKind;
use graphtrek::qos::QosConfig;
use gt_server::{serve, Mode, NodeConfig};
use gt_transport::SocketAddrSpec;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: gt-server --graph FILE --dir DIR --listen ADDR (--servers N | --cluster A,B,… --me P) [options]\n\
         \n\
         ADDR is tcp:HOST:PORT or uds:PATH.\n\
         \n\
         options:\n\
           --engine sync|async|graphtrek   traversal engine (default graphtrek)\n\
           --qos                           enable per-tenant QoS accounting\n\
           --tenant-weight NAME=W          fair-share weight (implies --qos)\n\
           --tenant-rate NAME=CAP:PER_SEC  token-bucket rate cap (implies --qos)"
    );
    std::process::exit(2);
}

fn parse_addr(spec: &str) -> SocketAddrSpec {
    match SocketAddrSpec::parse(spec) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gt-server: bad address `{spec}`: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut graph: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut listen: Option<SocketAddrSpec> = None;
    let mut servers: Option<usize> = None;
    let mut cluster: Option<Vec<SocketAddrSpec>> = None;
    let mut me: Option<usize> = None;
    let mut engine = EngineKind::GraphTrek;
    let mut qos = QosConfig::default();
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--graph" => graph = Some(PathBuf::from(value())),
            "--dir" => dir = Some(PathBuf::from(value())),
            "--listen" => listen = Some(parse_addr(&value())),
            "--servers" => servers = value().parse().ok().or_else(|| usage()),
            "--cluster" => {
                cluster = Some(value().split(',').map(parse_addr).collect());
            }
            "--me" => me = value().parse().ok().or_else(|| usage()),
            "--engine" => {
                engine = match value().as_str() {
                    "sync" => EngineKind::Sync,
                    "async" => EngineKind::AsyncPlain,
                    "graphtrek" => EngineKind::GraphTrek,
                    other => {
                        eprintln!("gt-server: unknown engine `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            "--qos" => qos.enabled = true,
            "--tenant-weight" => {
                let kv = value();
                let Some((name, w)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(w) = w.parse::<u32>() else { usage() };
                qos = qos.weight(name, w);
                qos.enabled = true;
            }
            "--tenant-rate" => {
                let kv = value();
                let Some((name, spec)) = kv.split_once('=') else {
                    usage()
                };
                let Some((cap, per_sec)) = spec.split_once(':') else {
                    usage()
                };
                let (Ok(cap), Ok(per_sec)) = (cap.parse::<f64>(), per_sec.parse::<f64>()) else {
                    usage()
                };
                qos = qos.rate(name, cap, per_sec);
                qos.enabled = true;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (Some(graph), Some(dir), Some(listen)) = (graph, dir, listen) else {
        usage()
    };
    let mode = match (servers, cluster, me) {
        (Some(n), None, None) => Mode::Standalone { n_servers: n },
        (None, Some(cluster), Some(me)) => Mode::Mesh { cluster, me },
        _ => usage(),
    };

    let cfg = NodeConfig {
        graph,
        dir,
        listen,
        engine,
        qos,
        mode,
    };
    match serve(&cfg) {
        Ok(running) => {
            // The smoke tests (and any supervisor) read this line to
            // learn the ephemeral port; keep the format stable.
            println!("gt-server listening on {}", running.local_addr());
            use std::io::Write;
            let _ = std::io::stdout().flush();
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("gt-server: {e}");
            std::process::exit(1);
        }
    }
}
