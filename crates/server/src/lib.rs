#![warn(missing_docs)]

//! The GraphTrek server process.
//!
//! Wraps the [`graphtrek`] engine in an OS process with a proto front
//! door, in two deployment shapes:
//!
//! * **standalone** — one process hosts a whole cluster (the in-process
//!   fabric) plus a [`graphtrek::frontdoor::FrontDoor`]; clients connect
//!   over TCP or UDS and speak [`gt_proto`].
//! * **multi-process** — N processes form one cluster over a
//!   [`gt_transport::SocketMesh`]. Process `p` hosts backend server
//!   endpoint `p` and a client-agent endpoint `n + p`; every process runs
//!   its own front door, so clients can connect to any node.
//!
//! Both shapes load the graph from the plain-text format of
//! [`parse_graph`], so every process of a multi-process cluster sees the
//! same input and shards it identically by placement.

use graphtrek::cluster::{Cluster, ClusterConfig, ClusterError};
use graphtrek::engine::{EngineConfig, EngineKind};
use graphtrek::frontdoor::{Agent, FrontDoor};
use graphtrek::qos::QosConfig;
use graphtrek::server::{spawn, ServerArgs, ServerHandle};
use gt_graph::storage::{load_replicated, GraphPartition};
use gt_graph::{Edge, InMemoryGraph, PropValue, Props, Vertex};
use gt_kvstore::{IoProfile, Store, StoreConfig};
use gt_placement::{PlacementMap, SharedPlacement};
use gt_transport::{Conduit, MeshConfig, SocketAddrSpec, SocketMesh};
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ------------------------------------------------------ graph text format

/// Parse one property value: `true`/`false` → Bool, an integer → Int, a
/// float → Float, anything else → Str.
fn parse_value(s: &str) -> PropValue {
    match s {
        "true" => return PropValue::Bool(true),
        "false" => return PropValue::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return PropValue::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return PropValue::Float(f);
    }
    PropValue::Str(s.to_string())
}

fn parse_props(parts: &[&str], line_no: usize) -> Result<Props, String> {
    let mut props = Props::new();
    for kv in parts {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected key=value, got `{kv}`"))?;
        props.0.insert(k.to_string(), parse_value(v));
    }
    Ok(props)
}

/// Parse the plain-text graph format:
///
/// ```text
/// # comment
/// v <id> <type> [key=value]...
/// e <src> <label> <dst> [key=value]...
/// ```
///
/// Values parse as bool, then i64, then f64, then fall back to string.
pub fn parse_graph(text: &str) -> Result<InMemoryGraph, String> {
    let mut g = InMemoryGraph::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "v" => {
                if parts.len() < 3 {
                    return Err(format!("line {line_no}: v needs <id> <type>"));
                }
                let id: u64 = parts[1]
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad vertex id `{}`", parts[1]))?;
                g.add_vertex(Vertex::new(
                    id,
                    parts[2],
                    parse_props(&parts[3..], line_no)?,
                ));
            }
            "e" => {
                if parts.len() < 4 {
                    return Err(format!("line {line_no}: e needs <src> <label> <dst>"));
                }
                let src: u64 = parts[1]
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad src id `{}`", parts[1]))?;
                let dst: u64 = parts[3]
                    .parse()
                    .map_err(|_| format!("line {line_no}: bad dst id `{}`", parts[3]))?;
                g.add_edge(Edge::new(
                    src,
                    parts[2],
                    dst,
                    parse_props(&parts[4..], line_no)?,
                ));
            }
            other => return Err(format!("line {line_no}: unknown record `{other}`")),
        }
    }
    Ok(g)
}

/// Render a graph in the [`parse_graph`] text format (vertices first, in
/// id order, then edges). `parse_graph(&render_graph(&g))` reproduces `g`.
pub fn render_graph(g: &InMemoryGraph) -> String {
    fn value(v: &PropValue) -> String {
        match v {
            PropValue::Int(i) => i.to_string(),
            PropValue::Float(f) => {
                // Make sure the round-trip stays a Float, not an Int.
                let s = f.to_string();
                if s.contains(['.', 'e', 'E']) {
                    s
                } else {
                    format!("{s}.0")
                }
            }
            PropValue::Str(s) => s.clone(),
            PropValue::Bool(b) => b.to_string(),
        }
    }
    fn props(p: &Props, out: &mut String) {
        for (k, v) in p.iter() {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&value(v));
        }
    }
    let mut vertices: Vec<&Vertex> = g.iter_vertices().collect();
    vertices.sort_by_key(|v| v.id);
    let mut out = String::new();
    for v in vertices {
        out.push_str(&format!("v {} {}", v.id.0, v.vtype));
        props(&v.props, &mut out);
        out.push('\n');
    }
    let mut edges: Vec<Edge> = g.iter_edges().collect();
    edges.sort_by(|a, b| (a.src, &a.label, a.dst).cmp(&(b.src, &b.label, b.dst)));
    for e in edges {
        out.push_str(&format!("e {} {} {}", e.src.0, e.label, e.dst.0));
        props(&e.props, &mut out);
        out.push('\n');
    }
    out
}

/// Load a graph file in the [`parse_graph`] format.
pub fn load_graph_file(path: &Path) -> Result<InMemoryGraph, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_graph(&text)
}

// ------------------------------------------------------------- deployment

/// One node's configuration (both deployment shapes).
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Path of the graph text file every node loads.
    pub graph: PathBuf,
    /// Storage directory for this node's shard(s) and ledgers.
    pub dir: PathBuf,
    /// Front-door listen address.
    pub listen: SocketAddrSpec,
    /// Traversal engine.
    pub engine: EngineKind,
    /// Per-tenant QoS policy for the front door.
    pub qos: QosConfig,
    /// Deployment shape.
    pub mode: Mode,
}

/// Deployment shape of one `gt-server` invocation.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Whole cluster in this process over the in-process fabric.
    Standalone {
        /// Number of backend servers.
        n_servers: usize,
    },
    /// One node of an N-process cluster over a socket mesh.
    Mesh {
        /// Mesh listen address of every process, in process order.
        cluster: Vec<SocketAddrSpec>,
        /// Which entry of `cluster` this process is.
        me: usize,
    },
}

/// A running node; dropping it stops the front door. The mesh variant
/// keeps serving until the process exits (peers may still route through
/// its server endpoint).
pub struct Running {
    door: Option<FrontDoor>,
    kind: RunningKind,
}

enum RunningKind {
    Standalone(Option<Cluster>),
    Mesh {
        mesh: SocketMesh<graphtrek::message::Msg>,
        // Keeps the backend server threads alive for the process's life.
        _server: ServerHandle,
    },
}

impl Running {
    /// Where the front door actually listens (ephemeral TCP ports
    /// resolved).
    pub fn local_addr(&self) -> &SocketAddrSpec {
        // gt-lint: allow(panic, "door is Some until stop() consumes it")
        self.door.as_ref().expect("front door running").local_addr()
    }

    /// Stop the front door and (standalone) shut the cluster down.
    pub fn stop(mut self) {
        if let Some(door) = self.door.take() {
            door.stop();
        }
        match self.kind {
            RunningKind::Standalone(ref mut cluster) => {
                if let Some(c) = cluster.take() {
                    c.shutdown();
                }
            }
            RunningKind::Mesh { ref mesh, .. } => mesh.close(),
        }
    }
}

/// Errors starting a node.
#[derive(Debug)]
pub enum ServeError {
    /// The graph file did not parse.
    Graph(String),
    /// The embedded cluster failed to build.
    Cluster(ClusterError),
    /// Socket setup (mesh or front door) failed.
    Io(std::io::Error),
    /// The node configuration is inconsistent.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Graph(m) => write!(f, "graph: {m}"),
            ServeError::Cluster(e) => write!(f, "cluster: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Cluster(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Start one node per `cfg` and serve until [`Running::stop`].
pub fn serve(cfg: &NodeConfig) -> Result<Running, ServeError> {
    let graph = load_graph_file(&cfg.graph).map_err(ServeError::Graph)?;
    match &cfg.mode {
        Mode::Standalone { n_servers } => {
            if *n_servers == 0 {
                return Err(ServeError::Config("standalone needs ≥ 1 server".into()));
            }
            let cluster = Cluster::build(
                &graph,
                ClusterConfig::new(&cfg.dir, *n_servers),
                EngineConfig::new(cfg.engine),
            )
            .map_err(ServeError::Cluster)?;
            let door = FrontDoor::serve(cluster.handle(), cfg.listen.clone(), cfg.qos.clone())
                .map_err(ServeError::Io)?;
            Ok(Running {
                door: Some(door),
                kind: RunningKind::Standalone(Some(cluster)),
            })
        }
        Mode::Mesh { cluster, me } => {
            let n = cluster.len();
            let p = *me;
            if n == 0 {
                return Err(ServeError::Config("mesh needs ≥ 1 process".into()));
            }
            if p >= n {
                return Err(ServeError::Config(format!(
                    "process index {p} out of range ({n} processes)"
                )));
            }
            // Endpoint layout: servers 0..n, one client agent per process
            // at n + p. Placement is the same initial map every process
            // derives independently from the shared cluster size.
            let mesh_cfg = MeshConfig {
                n_endpoints: 2 * n,
                home: (0..2 * n).map(|e| if e < n { e } else { e - n }).collect(),
                processes: cluster.clone(),
                me: p,
            };
            let (mesh, mut endpoints) = SocketMesh::start(mesh_cfg).map_err(|e| match e {
                gt_transport::MeshError::Io(io) => ServeError::Io(io),
                other => ServeError::Config(other.to_string()),
            })?;
            // Ascending id order: [p] is the server endpoint, [n + p] the
            // agent endpoint.
            let agent_ep = endpoints
                .pop()
                .ok_or_else(|| ServeError::Config("mesh returned no agent endpoint".into()))?;
            let server_ep = endpoints
                .pop()
                .ok_or_else(|| ServeError::Config("mesh returned no server endpoint".into()))?;

            let map = PlacementMap::initial(n, 1);
            let sdir = cfg.dir.join(format!("server-{p}"));
            let store = Arc::new(
                Store::open(StoreConfig {
                    dir: sdir.clone(),
                    memtable_bytes: 8 << 20,
                    bloom_bits_per_key: 10,
                    block_cache_runs: 4096,
                    io: IoProfile::free(),
                    sync_wal: false,
                    auto_compact_segments: 0,
                    version_clock: None,
                })
                .map_err(|e| ServeError::Cluster(ClusterError::Storage(e)))?,
            );
            let partition = GraphPartition::open(store)
                .map_err(|e| ServeError::Cluster(ClusterError::Storage(e)))?;
            load_replicated(&graph, std::slice::from_ref(&partition), |_, vid| {
                map.holds(p, vid)
            })
            .map_err(|e| ServeError::Cluster(ClusterError::Storage(e)))?;

            let server = spawn(ServerArgs {
                id: p,
                n_servers: n,
                partition: Arc::new(partition),
                endpoint: Conduit::Socket(server_ep),
                engine: EngineConfig::new(cfg.engine),
                epoch: 0,
                metrics: None,
                crash_after: None,
                ledger_path: Some(sdir.join("travel.ledger")),
                placement: Arc::new(SharedPlacement::new(map)),
                replication: 1,
                detection: None,
            });
            let agent = Arc::new(Agent::new(Conduit::Socket(agent_ep), n));
            let door = FrontDoor::serve(agent, cfg.listen.clone(), cfg.qos.clone())
                .map_err(ServeError::Io)?;
            Ok(Running {
                door: Some(door),
                kind: RunningKind::Mesh {
                    mesh,
                    _server: server,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_text_round_trips() {
        let text = "\
# tiny provenance graph
v 1 User name=sam admin=true
v 2 Execution cost=1.5
v 3 File size=4096

e 1 run 2 ts=100
e 2 read 3
";
        let g = parse_graph(text).unwrap();
        assert_eq!(g.iter_vertices().count(), 3);
        assert_eq!(g.iter_edges().count(), 2);
        let rendered = render_graph(&g);
        let g2 = parse_graph(&rendered).unwrap();
        assert_eq!(render_graph(&g2), rendered);
        // Typed values survive: bool, float, int, str.
        let sam = g.iter_vertices().find(|v| v.id.0 == 1).unwrap();
        assert_eq!(sam.props.0["admin"], PropValue::Bool(true));
        assert_eq!(sam.props.0["name"], PropValue::Str("sam".into()));
        let exec = g.iter_vertices().find(|v| v.id.0 == 2).unwrap();
        assert_eq!(exec.props.0["cost"], PropValue::Float(1.5));
    }

    #[test]
    fn graph_text_rejects_malformed_lines() {
        assert!(parse_graph("v 1").is_err());
        assert!(parse_graph("e 1 run").is_err());
        assert!(parse_graph("x 1 2 3").is_err());
        assert!(parse_graph("v one User").is_err());
        assert!(parse_graph("v 1 User badprop").is_err());
    }

    #[test]
    fn float_render_keeps_type() {
        let mut g = InMemoryGraph::new();
        g.add_vertex(Vertex::new(1u64, "T", Props::new().with("x", 2.0f64)));
        let rendered = render_graph(&g);
        let g2 = parse_graph(&rendered).unwrap();
        let v = g2.iter_vertices().next().unwrap();
        assert_eq!(v.props.0["x"], PropValue::Float(2.0));
    }
}
