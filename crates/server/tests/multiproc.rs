//! Deployment-shape tests: a standalone node, a 3-node mesh inside one
//! test process, and the real thing — three `gt-server` OS processes
//! serving one cluster, queried through `gt-client`, with results checked
//! against the single-threaded oracle.

use graphtrek::oracle;
use graphtrek::parse::parse;
use gt_client::Client;
use gt_proto::SubmitOpts;
use gt_server::{parse_graph, render_graph, serve, Mode, NodeConfig};
use gt_transport::SocketAddrSpec;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "gt-multiproc-{}-{name}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Deterministic provenance-ish graph in the text format (no RNG deps:
/// splitmix64 drives the shape).
fn graph_text(n: u64) -> String {
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    let types = ["User", "Execution", "File"];
    let labels = ["run", "read", "write", "link"];
    let mut out = String::from("# generated test graph\n");
    for i in 0..n {
        let t = types[(mix(i) % 3) as usize];
        out.push_str(&format!("v {i} {t} w={}\n", mix(i ^ 0xabc) % 10));
    }
    for i in 0..n * 4 {
        let src = mix(i ^ 0x111) % n;
        let dst = mix(i ^ 0x222) % n;
        let label = labels[(mix(i ^ 0x333) % 4) as usize];
        out.push_str(&format!("e {src} {label} {dst} ts={}\n", mix(i) % 100));
    }
    out
}

const QUERIES: [&str; 3] = [
    "v(0,1,2,3).e('run').e('read')",
    "v(0,5,9,13).e('link').rtn().e('read').va('w', RANGE, 0, 7).e('link')",
    "v(2,4,6,8).e('write').ea('ts', RANGE, 10, 90).e('link').e('run')",
];

fn expected(text: &str, q: &str) -> Vec<u64> {
    let g = parse_graph(text).unwrap();
    let plan = parse(q).unwrap().compile().unwrap();
    oracle::traverse(&g, &plan)
        .all_vertices()
        .into_iter()
        .map(|v| v.0)
        .collect()
}

fn check_queries(client: &mut Client, text: &str, what: &str) {
    for q in QUERIES {
        let reply = client.run(q, SubmitOpts::default()).unwrap();
        assert_eq!(
            reply.vertices(),
            expected(text, q),
            "{what}: `{q}` diverged"
        );
    }
}

#[test]
fn standalone_node_serves_proto_clients() {
    let dir = tmp("standalone");
    let text = graph_text(80);
    let gpath = dir.join("graph.txt");
    std::fs::write(&gpath, &text).unwrap();
    // The text format round-trips through the loader the node uses.
    assert!(!render_graph(&parse_graph(&text).unwrap()).is_empty());
    let running = serve(&NodeConfig {
        graph: gpath,
        dir: dir.join("data"),
        listen: SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        engine: graphtrek::engine::EngineKind::GraphTrek,
        qos: graphtrek::qos::QosConfig::default(),
        mode: Mode::Standalone { n_servers: 3 },
    })
    .unwrap();
    let mut client = Client::connect(running.local_addr(), "t").unwrap();
    check_queries(&mut client, &text, "standalone");
    client.close();
    running.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mesh_nodes_share_one_cluster() {
    let dir = tmp("mesh");
    let text = graph_text(80);
    let gpath = dir.join("graph.txt");
    std::fs::write(&gpath, &text).unwrap();
    let n = 3usize;
    let mesh: Vec<SocketAddrSpec> = (0..n)
        .map(|p| SocketAddrSpec::Uds(dir.join(format!("mesh-{p}.sock"))))
        .collect();
    // Three mesh nodes (in one test process — the mesh only sees
    // sockets). Every node runs its own front door.
    let nodes: Vec<_> = (0..n)
        .map(|p| {
            serve(&NodeConfig {
                graph: gpath.clone(),
                dir: dir.join(format!("node-{p}")),
                listen: SocketAddrSpec::Uds(dir.join(format!("door-{p}.sock"))),
                engine: graphtrek::engine::EngineKind::GraphTrek,
                qos: graphtrek::qos::QosConfig::default(),
                mode: Mode::Mesh {
                    cluster: mesh.clone(),
                    me: p,
                },
            })
            .unwrap()
        })
        .collect();
    // Any node's door answers with the whole cluster's results.
    for (p, node) in nodes.iter().enumerate() {
        let mut client = Client::connect(node.local_addr(), "t").unwrap();
        check_queries(&mut client, &text, &format!("mesh node {p}"));
        client.close();
    }
    for node in nodes {
        node.stop();
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------- real OS processes

struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Spawn a `gt-server`, hand it to the reaper (so even a panicking
/// test kills it on unwind), wait for its "listening on" line, and
/// return the resolved door address.
fn spawn_node(reaper: &mut Reaper, args: &[String]) -> SocketAddrSpec {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gt-server"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    reaper.0.push(child);
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "gt-server never came up");
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(addr) = line.strip_prefix("gt-server listening on ") {
                    return SocketAddrSpec::parse(addr.trim()).unwrap();
                }
            }
            other => panic!("gt-server exited before listening: {other:?}"),
        }
    }
}

#[test]
fn three_os_processes_form_one_cluster() {
    let dir = tmp("procs");
    let text = graph_text(80);
    let gpath = dir.join("graph.txt");
    std::fs::write(&gpath, &text).unwrap();
    let n = 3usize;
    let mesh: Vec<String> = (0..n)
        .map(|p| format!("uds:{}", dir.join(format!("mesh-{p}.sock")).display()))
        .collect();
    let mut children = Reaper(Vec::new());
    let mut doors = Vec::new();
    for p in 0..n {
        let args = vec![
            "--graph".into(),
            gpath.display().to_string(),
            "--dir".into(),
            dir.join(format!("node-{p}")).display().to_string(),
            "--listen".into(),
            "tcp:127.0.0.1:0".into(),
            "--cluster".into(),
            mesh.join(","),
            "--me".into(),
            p.to_string(),
        ];
        doors.push(spawn_node(&mut children, &args));
    }
    // Query through the first and the last node's doors: same cluster,
    // same answers, oracle-identical.
    for p in [0, n - 1] {
        let mut client = Client::connect(&doors[p], "smoke").unwrap();
        check_queries(&mut client, &text, &format!("process {p}"));
        client.close();
    }
    drop(children);
    std::fs::remove_dir_all(&dir).ok();
}
