#![warn(missing_docs)]

//! # gt-darshan — synthetic HPC rich-metadata graph generator
//!
//! The paper's real-world workload imports "one year of Darshan traces
//! (2013) from the Intrepid supercomputer" into a property graph whose
//! statistics are given in Table II (177 users, 47.6 K jobs, 123.4 M
//! executions, 34.6 M files, 239.8 M edges) and which is "a small-world
//! graph with a power-law distribution" (§VII-D). Those production traces
//! are not publicly redistributable at that scale, so this crate generates
//! a synthetic graph with the **same schema, edge vocabulary, and
//! power-law structure**, scalable from laptop size up to the paper's
//! ratios (see `DESIGN.md`, substitution table).
//!
//! Schema (matching Fig. 1 plus the Table III audit query's edges):
//!
//! ```text
//! User  --run {ts}-->            Job
//! Job   --hasExecutions-->       Execution
//! Execution --exe-->             File (executable)
//! Execution --read {ts}-->       File      File --readBy {ts}--> Execution
//! Execution --write {ts,size}--> File
//! ```

use gt_graph::{Edge, InMemoryGraph, Props, Vertex, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Vertex type names.
pub mod vtype {
    /// A cluster user.
    pub const USER: &str = "User";
    /// A submitted job.
    pub const JOB: &str = "Job";
    /// One execution (application run) belonging to a job.
    pub const EXECUTION: &str = "Execution";
    /// A file (data or executable).
    pub const FILE: &str = "File";
}

/// Edge label names.
pub mod elabel {
    /// User started a job.
    pub const RUN: &str = "run";
    /// Job contains an execution.
    pub const HAS_EXECUTIONS: &str = "hasExecutions";
    /// Execution used an executable file.
    pub const EXE: &str = "exe";
    /// Execution read a file.
    pub const READ: &str = "read";
    /// Reverse of `read` (file was read by execution) — used by the
    /// Table III influence-audit query.
    pub const READ_BY: &str = "readBy";
    /// Execution wrote a file.
    pub const WRITE: &str = "write";
}

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DarshanConfig {
    /// Number of user vertices.
    pub n_users: usize,
    /// Number of job vertices.
    pub n_jobs: usize,
    /// Mean executions per job (geometric, power-law-ish tail).
    pub avg_execs_per_job: f64,
    /// Number of file vertices.
    pub n_files: usize,
    /// Number of distinct executable files (small, heavily shared).
    pub n_executables: usize,
    /// Mean `read` edges per execution.
    pub avg_reads_per_exec: f64,
    /// Mean `write` edges per execution.
    pub avg_writes_per_exec: f64,
    /// Skew exponent for file popularity; larger ⇒ more power-law
    /// concentration on hot files. 1.0 is uniform.
    pub file_skew: f64,
    /// Timestamp range `[0, ts_range)` for run/read/write edges.
    pub ts_range: i64,
    /// Number of distinct execution "model" names (provenance filter).
    pub n_models: usize,
    /// Number of distinct file annotations.
    pub n_annotations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DarshanConfig {
    /// A laptop-scale default that keeps the Table II *shape*
    /// (users ≪ jobs ≪ executions, executions ≈ 3.5 × files).
    pub fn small() -> Self {
        DarshanConfig {
            n_users: 32,
            n_jobs: 400,
            avg_execs_per_job: 8.0,
            n_files: 1200,
            n_executables: 12,
            avg_reads_per_exec: 1.2,
            avg_writes_per_exec: 0.8,
            file_skew: 2.2,
            ts_range: 365 * 24 * 3600,
            n_models: 6,
            n_annotations: 8,
            seed: 0xDA25_11A9,
        }
    }

    /// Table II's entity counts divided by `divisor`, preserving ratios.
    /// `divisor = 1` is the paper's full scale (123 M executions — only
    /// for machines with the memory to hold it).
    pub fn table2_scaled(divisor: u64) -> Self {
        let d = divisor.max(1);
        let jobs = (47_600 / d).max(4) as usize;
        let execs = (123_400_000 / d).max(16) as f64;
        let files = (34_600_000 / d).max(16) as usize;
        DarshanConfig {
            // Users scale much more slowly than jobs in real facilities;
            // divide by the cube root of the divisor, clamped below jobs.
            n_users: (((177.0 / (d as f64).cbrt()) as usize).clamp(4, 177))
                .min(jobs.saturating_sub(1).max(2)),
            n_jobs: jobs,
            avg_execs_per_job: execs / jobs as f64,
            n_files: files,
            n_executables: (files / 1000).max(4),
            // Table II implies ~0.94 exec↔file edges per execution beyond
            // hasExecutions; split across exe/read/write/readBy.
            avg_reads_per_exec: 0.35,
            avg_writes_per_exec: 0.25,
            file_skew: 2.5,
            ts_range: 365 * 24 * 3600,
            n_models: 12,
            n_annotations: 16,
            seed: 0xDA25_11A9,
        }
    }

    /// Builder-style: replace the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for DarshanConfig {
    fn default() -> Self {
        DarshanConfig::small()
    }
}

/// Table-II-style statistics of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of `User` vertices.
    pub users: usize,
    /// Number of `Job` vertices.
    pub jobs: usize,
    /// Number of `Execution` vertices.
    pub executions: usize,
    /// Number of `File` vertices.
    pub files: usize,
    /// Total edges of all labels.
    pub edges: usize,
}

/// Id layout of a generated graph, for locating entities by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdLayout {
    /// First user id (always 0).
    pub users_start: u64,
    /// First job id.
    pub jobs_start: u64,
    /// First execution id.
    pub execs_start: u64,
    /// First file id.
    pub files_start: u64,
    /// One past the last id.
    pub end: u64,
}

impl IdLayout {
    /// Id of user `i`.
    pub fn user(&self, i: usize) -> VertexId {
        VertexId(self.users_start + i as u64)
    }
    /// Id of file `i`.
    pub fn file(&self, i: usize) -> VertexId {
        VertexId(self.files_start + i as u64)
    }
}

/// A generated metadata graph plus its layout and stats.
#[derive(Debug)]
pub struct DarshanGraph {
    /// The property graph.
    pub graph: InMemoryGraph,
    /// Where each entity class lives in the id space.
    pub layout: IdLayout,
    /// Table-II-style statistics.
    pub stats: GraphStats,
}

/// Geometric sample with mean `mean` (clamped to ≥ 0).
fn sample_geometric(rng: &mut SmallRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    // P(X = k) = p (1-p)^k with mean (1-p)/p ⇒ p = 1/(1+mean).
    let p = 1.0 / (1.0 + mean);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as usize
}

/// Power-law file index: skew > 1 concentrates on low indexes.
fn sample_file(rng: &mut SmallRng, n_files: usize, skew: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    let idx = (n_files as f64 * u.powf(skew)) as usize;
    idx.min(n_files - 1)
}

/// Generate the synthetic metadata graph.
pub fn generate(cfg: &DarshanConfig) -> DarshanGraph {
    assert!(cfg.n_users > 0 && cfg.n_jobs > 0 && cfg.n_files > 0);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut g = InMemoryGraph::new();

    let users_start = 0u64;
    let jobs_start = users_start + cfg.n_users as u64;
    // Executions are generated per job below; ids assigned after jobs.
    let execs_start = jobs_start + cfg.n_jobs as u64;

    // Users.
    let groups = ["cgroup", "admin", "physics", "bio", "climate"];
    for i in 0..cfg.n_users {
        g.add_vertex(Vertex::new(
            users_start + i as u64,
            vtype::USER,
            Props::new()
                .with("name", format!("user{i:04}"))
                .with("group", groups[i % groups.len()])
                .with("uid", i as i64),
        ));
    }

    // Jobs + run edges (user → job, timestamped).
    let mut job_owner = Vec::with_capacity(cfg.n_jobs);
    let mut job_ts = Vec::with_capacity(cfg.n_jobs);
    for j in 0..cfg.n_jobs {
        let jid = jobs_start + j as u64;
        let ts = rng.gen_range(0..cfg.ts_range);
        let owner = rng.gen_range(0..cfg.n_users);
        job_owner.push(owner);
        job_ts.push(ts);
        g.add_vertex(Vertex::new(
            jid,
            vtype::JOB,
            Props::new()
                .with("jobid", j as i64)
                .with("params", format!("-n {}", 1 << rng.gen_range(4..12)))
                .with("ts", ts),
        ));
        g.add_edge(Edge::new(
            users_start + owner as u64,
            elabel::RUN,
            jid,
            Props::new().with("ts", ts),
        ));
    }

    // Executions per job.
    let mut n_execs = 0u64;
    let mut exec_job: Vec<usize> = Vec::new();
    for j in 0..cfg.n_jobs {
        let k = 1 + sample_geometric(&mut rng, cfg.avg_execs_per_job - 1.0);
        for _ in 0..k {
            exec_job.push(j);
            n_execs += 1;
        }
    }
    let files_start = execs_start + n_execs;

    for (e, &j) in exec_job.iter().enumerate() {
        let eid = execs_start + e as u64;
        let model = format!("model-{}", rng.gen_range(0..cfg.n_models));
        g.add_vertex(Vertex::new(
            eid,
            vtype::EXECUTION,
            Props::new()
                .with("model", model)
                .with("params", format!("-r {}", rng.gen_range(0..64)))
                .with("ts", job_ts[j]),
        ));
        g.add_edge(Edge::new(
            jobs_start + j as u64,
            elabel::HAS_EXECUTIONS,
            eid,
            Props::new(),
        ));
    }

    // Files.
    let exts = ["txt", "h5", "nc", "dat", "bin", "log"];
    for f in 0..cfg.n_files {
        let fid = files_start + f as u64;
        let is_exe = f < cfg.n_executables;
        g.add_vertex(Vertex::new(
            fid,
            vtype::FILE,
            Props::new()
                .with(
                    "name",
                    if is_exe {
                        format!("app-{f:02}")
                    } else {
                        format!("dset-{f}.{}", exts[f % exts.len()])
                    },
                )
                .with(
                    "ftype",
                    if is_exe {
                        "executable"
                    } else {
                        exts[f % exts.len()]
                    },
                )
                .with("size", rng.gen_range(1..1 << 30) as i64)
                .with(
                    "annotation",
                    format!("anno-{}", sample_file(&mut rng, cfg.n_annotations, 1.5)),
                ),
        ));
    }

    // Execution ↔ file edges.
    for (e, &j) in exec_job.iter().enumerate() {
        let eid = execs_start + e as u64;
        let ts = job_ts[j];
        // exe edge: executables are heavily shared (hot vertices).
        let exe_idx = sample_file(&mut rng, cfg.n_executables, 2.0);
        g.add_edge(Edge::new(
            eid,
            elabel::EXE,
            files_start + exe_idx as u64,
            Props::new(),
        ));
        let n_reads = sample_geometric(&mut rng, cfg.avg_reads_per_exec);
        let mut read_files = std::collections::HashSet::new();
        for _ in 0..n_reads {
            let f = sample_file(&mut rng, cfg.n_files, cfg.file_skew);
            if !read_files.insert(f) {
                continue;
            }
            let fid = files_start + f as u64;
            g.add_edge(Edge::new(
                eid,
                elabel::READ,
                fid,
                Props::new().with("ts", ts),
            ));
            g.add_edge(Edge::new(
                fid,
                elabel::READ_BY,
                eid,
                Props::new().with("ts", ts),
            ));
        }
        let n_writes = sample_geometric(&mut rng, cfg.avg_writes_per_exec);
        let mut write_files = std::collections::HashSet::new();
        for _ in 0..n_writes {
            let f = sample_file(&mut rng, cfg.n_files, cfg.file_skew);
            if !write_files.insert(f) {
                continue;
            }
            g.add_edge(Edge::new(
                eid,
                elabel::WRITE,
                files_start + f as u64,
                Props::new()
                    .with("ts", ts)
                    .with("writeSize", rng.gen_range(1..8 << 20) as i64),
            ));
        }
    }

    let stats = GraphStats {
        users: cfg.n_users,
        jobs: cfg.n_jobs,
        executions: n_execs as usize,
        files: cfg.n_files,
        edges: g.n_edges(),
    };
    DarshanGraph {
        graph: g,
        layout: IdLayout {
            users_start,
            jobs_start,
            execs_start,
            files_start,
            end: files_start + cfg.n_files as u64,
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_schema_entities() {
        let d = generate(&DarshanConfig::small());
        let g = &d.graph;
        assert_eq!(g.vertices_of_type(vtype::USER).len(), 32);
        assert_eq!(g.vertices_of_type(vtype::JOB).len(), 400);
        assert_eq!(g.vertices_of_type(vtype::FILE).len(), 1200);
        assert_eq!(
            g.vertices_of_type(vtype::EXECUTION).len(),
            d.stats.executions
        );
        assert!(d.stats.executions > 400, "multiple executions per job");
        assert_eq!(d.stats.edges, g.n_edges());
    }

    #[test]
    fn id_layout_is_consistent() {
        let d = generate(&DarshanConfig::small());
        let g = &d.graph;
        assert_eq!(g.vertex(d.layout.user(0)).unwrap().vtype, vtype::USER);
        assert_eq!(g.vertex(d.layout.file(0)).unwrap().vtype, vtype::FILE);
        assert_eq!(
            g.vertex(VertexId(d.layout.jobs_start)).unwrap().vtype,
            vtype::JOB
        );
        assert_eq!(
            g.vertex(VertexId(d.layout.execs_start)).unwrap().vtype,
            vtype::EXECUTION
        );
        assert_eq!(d.layout.end as usize, g.n_vertices());
    }

    #[test]
    fn every_job_has_owner_and_executions() {
        let d = generate(&DarshanConfig::small());
        let g = &d.graph;
        // Each user's run edges land on jobs; every job reachable.
        let mut jobs_seen = std::collections::HashSet::new();
        for u in g.vertices_of_type(vtype::USER) {
            for (dst, props) in g.edges_from(u, elabel::RUN) {
                assert_eq!(g.vertex(*dst).unwrap().vtype, vtype::JOB);
                assert!(props.get("ts").is_some(), "run edges are timestamped");
                jobs_seen.insert(*dst);
            }
        }
        assert_eq!(jobs_seen.len(), 400);
        for j in g.vertices_of_type(vtype::JOB) {
            assert!(
                !g.edges_from(j, elabel::HAS_EXECUTIONS).is_empty(),
                "every job has ≥1 execution"
            );
        }
    }

    #[test]
    fn read_edges_have_readby_reverse() {
        let d = generate(&DarshanConfig::small());
        let g = &d.graph;
        let mut n_reads = 0;
        for e in g.vertices_of_type(vtype::EXECUTION) {
            for (f, _) in g.edges_from(e, elabel::READ) {
                n_reads += 1;
                let back = g.edges_from(*f, elabel::READ_BY);
                assert!(
                    back.iter().any(|(dst, _)| *dst == e),
                    "missing readBy reverse edge"
                );
            }
        }
        assert!(n_reads > 0);
    }

    #[test]
    fn file_popularity_is_skewed() {
        let d = generate(&DarshanConfig::small());
        let g = &d.graph;
        // In-degree of files under power-law selection: hot files exist.
        let mut in_deg = std::collections::HashMap::new();
        for e in g.vertices_of_type(vtype::EXECUTION) {
            for label in [elabel::READ, elabel::WRITE] {
                for (f, _) in g.edges_from(e, label) {
                    *in_deg.entry(*f).or_insert(0usize) += 1;
                }
            }
        }
        let max = in_deg.values().copied().max().unwrap_or(0);
        let total: usize = in_deg.values().sum();
        let mean = total as f64 / in_deg.len().max(1) as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "expected hot files: max {max}, mean {mean}"
        );
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = generate(&DarshanConfig::small());
        let b = generate(&DarshanConfig::small());
        assert_eq!(a.stats, b.stats);
        let c = generate(&DarshanConfig::small().seed(1));
        assert_ne!(a.stats.edges, c.stats.edges);
    }

    #[test]
    fn table2_scaling_preserves_shape() {
        let cfg = DarshanConfig::table2_scaled(100_000);
        let d = generate(&cfg);
        let s = d.stats;
        assert!(s.executions > s.files, "executions outnumber files");
        assert!(s.jobs < s.executions);
        assert!(s.users < s.jobs);
        // Edge count at least hasExecutions + run.
        assert!(s.edges >= s.executions + s.jobs);
    }

    #[test]
    fn geometric_sampler_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 4.0;
        let sum: usize = (0..n).map(|_| sample_geometric(&mut rng, mean)).sum();
        let got = sum as f64 / n as f64;
        assert!((got - mean).abs() < 0.3, "geometric mean off: {got}");
    }
}
