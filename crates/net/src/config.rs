//! Network behaviour configuration.

use std::time::Duration;

/// Latency/bandwidth model applied to every message.
///
/// One-way delivery delay = `latency + U[0, jitter] + wire_size * per_byte`,
/// floored so per-link FIFO order is preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Base one-way latency.
    pub latency: Duration,
    /// Uniform jitter bound added on top of `latency`.
    pub jitter: Duration,
    /// Transmission cost per payload byte for interactive traffic.
    pub per_byte: Duration,
    /// Transmission cost per payload byte for bulk-class traffic
    /// (snapshot shipping); usually slower than `per_byte`, modelling a
    /// throughput lane that yields to the latency-sensitive path.
    pub bulk_per_byte: Duration,
    /// RNG seed for jitter (experiments stay reproducible).
    pub seed: u64,
}

impl NetConfig {
    /// Instant delivery — unit tests and logic-only experiments.
    pub const fn instant() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            per_byte: Duration::ZERO,
            bulk_per_byte: Duration::ZERO,
            seed: 0,
        }
    }

    /// A cluster-interconnect-like profile (InfiniBand-class, scaled to
    /// the reproduction's compressed time base): a few microseconds of
    /// latency, light jitter, high bandwidth. Bulk transfers are charged
    /// 4× the interactive per-byte cost.
    pub const fn cluster() -> Self {
        NetConfig {
            latency: Duration::from_micros(20),
            jitter: Duration::from_micros(10),
            per_byte: Duration::from_nanos(1),
            bulk_per_byte: Duration::from_nanos(4),
            seed: 0x6772_7472,
        }
    }

    /// True when the model adds no delay at all.
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero()
            && self.jitter.is_zero()
            && self.per_byte.is_zero()
            && self.bulk_per_byte.is_zero()
    }

    /// Builder-style: replace the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_is_instant() {
        assert!(NetConfig::instant().is_instant());
        assert!(!NetConfig::cluster().is_instant());
    }

    #[test]
    fn seed_builder() {
        let c = NetConfig::cluster().seed(42);
        assert_eq!(c.seed, 42);
        assert_eq!(c.latency, NetConfig::cluster().latency);
    }
}
