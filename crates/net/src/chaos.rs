//! Seeded, deterministic fault injection for the fabric.
//!
//! The chaos layer decides, per message, whether to drop, duplicate, or
//! delay it. The crucial property is *determinism under thread
//! interleaving*: a fault decision is a pure function of `(seed, message
//! key)` — **not** of RNG draw order — so two runs of the same workload
//! with the same seed realize the same fault schedule for the same
//! messages no matter how the sending threads interleave (the
//! FoundationDB-style simulation discipline). Message identity comes from
//! [`crate::WireSize::chaos_key`]: a message with no key (control-plane
//! traffic, client links) is exempt from chaos.
//!
//! Retransmissions must carry a *different* key (e.g. an attempt counter
//! folded in), otherwise a dropped message would be dropped on every
//! retry and reliability could never converge.

use std::time::Duration;

/// Per-fabric chaos model. Probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the pure decision function.
    pub seed: u64,
    /// Probability a keyed message is silently dropped.
    pub drop_prob: f64,
    /// Probability a keyed message is delivered twice.
    pub dup_prob: f64,
    /// Probability a keyed message gets extra delay.
    pub delay_prob: f64,
    /// Maximum extra delay (the realized delay is key-derived in
    /// `(0, max_delay]`).
    pub max_delay: Duration,
    /// When true, chaos-delayed messages (and duplicate copies) bypass
    /// the per-link FIFO floor, so later sends can overtake them.
    pub reorder: bool,
    /// Chaos applies only to links whose endpoints are both `< scope`
    /// (e.g. the backend servers but not the client endpoint).
    pub scope: usize,
}

/// The realized fate of one keyed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosDecision {
    /// Drop the message entirely.
    pub drop: bool,
    /// Deliver a second copy.
    pub duplicate: bool,
    /// Extra delivery delay (zero = none).
    pub extra_delay: Duration,
    /// Extra delay of the duplicate copy relative to the original.
    pub dup_delay: Duration,
}

impl ChaosConfig {
    /// No chaos at all.
    pub fn off() -> Self {
        ChaosConfig {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            reorder: false,
            scope: 0,
        }
    }

    /// True when this configuration can never touch a message.
    pub fn is_off(&self) -> bool {
        self.scope == 0 || (self.drop_prob <= 0.0 && self.dup_prob <= 0.0 && self.delay_prob <= 0.0)
    }

    /// Whether delivery may need the timer wheel (anything that schedules
    /// a message into the future: delays, or duplicate copies which are
    /// offset so they can arrive out of order).
    pub fn needs_wheel(&self) -> bool {
        !self.is_off() && (self.delay_prob > 0.0 || self.dup_prob > 0.0)
    }

    /// Whether chaos applies to the `(from, to)` link.
    pub fn applies_to_link(&self, from: usize, to: usize) -> bool {
        !self.is_off() && from < self.scope && to < self.scope
    }

    /// The pure decision function: same `(seed, key)` ⇒ same decision,
    /// on any run, any thread interleaving.
    pub fn decide(&self, key: u64) -> ChaosDecision {
        let h0 = splitmix64(self.seed ^ key);
        let h1 = splitmix64(h0);
        let h2 = splitmix64(h1);
        let h3 = splitmix64(h2);
        let drop = unit(h0) < self.drop_prob;
        let duplicate = !drop && unit(h1) < self.dup_prob;
        let delayed = !drop && unit(h2) < self.delay_prob;
        let extra_delay = if delayed {
            scale_delay(h3, self.max_delay)
        } else {
            Duration::ZERO
        };
        // The duplicate's offset reuses the delay scale so a dup can also
        // land out of order; key-derived, so equally deterministic.
        let dup_delay = if duplicate {
            scale_delay(
                splitmix64(h3),
                self.max_delay.max(Duration::from_micros(50)),
            )
        } else {
            Duration::ZERO
        };
        ChaosDecision {
            drop,
            duplicate,
            extra_delay,
            dup_delay,
        }
    }
}

/// SplitMix64 — tiny, stateless, well-mixed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Map a hash to a duration in `(0, max]` (at least 1 µs so a "delayed"
/// message is actually late).
fn scale_delay(h: u64, max: Duration) -> Duration {
    let max_ns = max.as_nanos() as u64;
    if max_ns == 0 {
        return Duration::from_micros(1);
    }
    Duration::from_nanos((h % max_ns).max(1_000))
}

/// Mix a set of identity fields into one chaos key. Message types use
/// this to implement [`crate::WireSize::chaos_key`].
pub fn chaos_key_of(fields: &[u64]) -> u64 {
    let mut acc = 0x6A09_E667_F3BC_C909u64; // sqrt(2) fractional bits
    for &f in fields {
        acc = splitmix64(acc ^ f);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_prob: 0.1,
            dup_prob: 0.1,
            delay_prob: 0.3,
            max_delay: Duration::from_millis(2),
            reorder: true,
            scope: 4,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = lossy(42);
        let b = lossy(42);
        for key in 0..10_000u64 {
            assert_eq!(a.decide(key), b.decide(key), "key {key} diverged");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = lossy(1);
        let b = lossy(2);
        let diverged = (0..10_000u64)
            .filter(|&k| a.decide(k) != b.decide(k))
            .count();
        assert!(diverged > 1_000, "seeds barely diverged: {diverged}");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let c = lossy(7);
        let n = 100_000u64;
        let drops = (0..n).filter(|&k| c.decide(k).drop).count() as f64 / n as f64;
        let dups = (0..n).filter(|&k| c.decide(k).duplicate).count() as f64 / n as f64;
        assert!((drops - 0.1).abs() < 0.01, "drop rate {drops}");
        // Duplication only applies to non-dropped messages (0.9 * 0.1).
        assert!((dups - 0.09).abs() < 0.01, "dup rate {dups}");
    }

    #[test]
    fn off_config_is_inert() {
        let c = ChaosConfig::off();
        assert!(c.is_off());
        assert!(!c.needs_wheel());
        assert!(!c.applies_to_link(0, 1));
    }

    #[test]
    fn scope_excludes_client_links() {
        let c = lossy(3);
        assert!(c.applies_to_link(0, 3));
        assert!(!c.applies_to_link(0, 4), "client endpoint is out of scope");
        assert!(!c.applies_to_link(4, 0));
    }

    #[test]
    fn delays_are_bounded_and_positive() {
        let c = lossy(9);
        for key in 0..10_000u64 {
            let d = c.decide(key);
            assert!(d.extra_delay <= c.max_delay);
            if d.extra_delay > Duration::ZERO {
                assert!(d.extra_delay >= Duration::from_micros(1));
            }
        }
    }

    #[test]
    fn key_mixing_is_order_sensitive() {
        assert_ne!(chaos_key_of(&[1, 2]), chaos_key_of(&[2, 1]));
        assert_ne!(chaos_key_of(&[1, 2]), chaos_key_of(&[1, 3]));
    }
}
