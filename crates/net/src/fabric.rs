//! Endpoints, envelopes, and the delivery timer wheel.

use crate::chaos::ChaosConfig;
use crate::config::NetConfig;
use crate::stats::NetStats;
use crate::WireSize;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A delivered message with its source address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending endpoint id.
    pub from: usize,
    /// Receiving endpoint id.
    pub to: usize,
    /// Payload.
    pub msg: M,
}

/// Error returned by [`Endpoint::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// Destination id is out of range.
    UnknownEndpoint,
    /// The fabric was shut down.
    Closed,
}

/// Error returned by the receive functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// The fabric was shut down and the queue is drained.
    Closed,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownEndpoint => write!(f, "unknown endpoint"),
            SendError::Closed => write!(f, "fabric closed"),
        }
    }
}
impl std::error::Error for SendError {}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Closed => write!(f, "fabric closed"),
        }
    }
}
impl std::error::Error for RecvError {}

struct Scheduled<M> {
    deliver_at: Instant,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Shared<M> {
    cfg: NetConfig,
    chaos: ChaosConfig,
    inboxes: Vec<Sender<Envelope<M>>>,
    /// Input to the timer-wheel thread (None when the model is instant).
    wheel_tx: Option<Sender<Scheduled<M>>>,
    stats: Arc<NetStats>,
    isolated: Vec<AtomicBool>,
    /// Per-link floor for the next delivery time, enforcing FIFO order.
    link_floor: Mutex<Vec<Instant>>,
    rng: Mutex<SmallRng>,
    seq: std::sync::atomic::AtomicU64,
}

/// One addressable party on the fabric (a backend server or a client).
///
/// Cloning is cheap and shares the same inbox (crossbeam channels are
/// MPMC): a server's dispatcher thread receives while its worker threads
/// send through clones.
pub struct Endpoint<M> {
    id: usize,
    rx: Receiver<Envelope<M>>,
    shared: Arc<Shared<M>>,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            id: self.id,
            rx: self.rx.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).finish()
    }
}

/// The fabric itself; owns the delivery thread. Dropping it stops
/// delivery (endpoints then see [`RecvError::Closed`] once drained).
pub struct Fabric<M> {
    shared: Arc<Shared<M>>,
    wheel: Option<std::thread::JoinHandle<()>>,
}

impl<M> std::fmt::Debug for Fabric<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("endpoints", &self.shared.inboxes.len())
            .finish()
    }
}

impl<M: Send + WireSize + Clone + 'static> Fabric<M> {
    /// Build a fabric with `n` endpoints under the given network model.
    pub fn new(n: usize, cfg: NetConfig) -> (Fabric<M>, Vec<Endpoint<M>>) {
        Self::with_chaos(n, cfg, ChaosConfig::off())
    }

    /// Build a fabric whose keyed messages additionally pass through a
    /// seeded fault-injection layer (see [`ChaosConfig`]).
    pub fn with_chaos(
        n: usize,
        cfg: NetConfig,
        chaos: ChaosConfig,
    ) -> (Fabric<M>, Vec<Endpoint<M>>) {
        let mut inboxes = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            rxs.push(rx);
        }
        let stats = Arc::new(NetStats::new(n));
        // Chaos delays and duplicate-copy offsets need the wheel even
        // under the instant model.
        let (wheel_tx, wheel_handle) = if cfg.is_instant() && !chaos.needs_wheel() {
            (None, None)
        } else {
            let (tx, rx) = unbounded::<Scheduled<M>>();
            let inboxes_clone = inboxes.clone();
            let handle = std::thread::Builder::new()
                .name("gt-net-wheel".into())
                .spawn(move || wheel_loop(rx, inboxes_clone))
                // gt-lint: allow(panic, "construction-time: a fabric without its timer wheel cannot run at all")
                .expect("spawn timer wheel");
            (Some(tx), Some(handle))
        };
        let now = Instant::now();
        let shared = Arc::new(Shared {
            cfg,
            chaos,
            inboxes,
            wheel_tx,
            stats,
            isolated: (0..n).map(|_| AtomicBool::new(false)).collect(),
            link_floor: Mutex::new(vec![now; n * n]),
            rng: Mutex::new(SmallRng::seed_from_u64(cfg.seed)),
            seq: std::sync::atomic::AtomicU64::new(0),
        });
        let endpoints = rxs
            .into_iter()
            .enumerate()
            .map(|(id, rx)| Endpoint {
                id,
                rx,
                shared: shared.clone(),
            })
            .collect();
        (
            Fabric {
                shared,
                wheel: wheel_handle,
            },
            endpoints,
        )
    }

    /// Isolate (or reconnect) an endpoint: while isolated, every message
    /// to or from it is silently dropped — the "silent failure" condition
    /// the traversal status tracing must detect.
    pub fn isolate(&self, id: usize, isolated: bool) {
        self.shared.isolated[id].store(isolated, Ordering::Relaxed);
    }

    /// Traffic counters.
    pub fn stats(&self) -> Arc<NetStats> {
        self.shared.stats.clone()
    }
}

impl<M> Drop for Fabric<M> {
    fn drop(&mut self) {
        // Disconnect the wheel input and join so scheduled messages either
        // flush or are dropped deterministically.
        if let Some(h) = self.wheel.take() {
            // Dropping the only non-wheel Sender ends the loop after the
            // heap drains; the Sender lives in `shared`, so replace it.
            // (Endpoints hold `shared` too, so instead we just detach.)
            drop(h); // detach: endpoints may outlive the fabric handle
        }
    }
}

fn wheel_loop<M: Send>(rx: Receiver<Scheduled<M>>, inboxes: Vec<Sender<Envelope<M>>>) {
    let mut heap: BinaryHeap<Reverse<Scheduled<M>>> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while let Some(Reverse(top)) = heap.peek() {
            if top.deliver_at > now {
                break;
            }
            let Some(Reverse(item)) = heap.pop() else {
                break;
            };
            // A receiver may be gone during shutdown; ignore.
            let _ = inboxes[item.env.to].send(item.env);
        }
        // Wait for the next deadline or new input.
        let wait = heap
            .peek()
            .map(|Reverse(top)| top.deliver_at.saturating_duration_since(Instant::now()));
        match wait {
            Some(d) if d.is_zero() => continue,
            Some(d) => match rx.recv_timeout(d) {
                Ok(item) => heap.push(Reverse(item)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // Flush the remaining heap respecting deadlines.
                    while let Some(Reverse(item)) = heap.pop() {
                        let now = Instant::now();
                        if item.deliver_at > now {
                            std::thread::sleep(item.deliver_at - now);
                        }
                        let _ = inboxes[item.env.to].send(item.env);
                    }
                    return;
                }
            },
            None => match rx.recv() {
                Ok(item) => heap.push(Reverse(item)),
                Err(_) => return,
            },
        }
    }
}

impl<M: Send + WireSize + Clone + 'static> Endpoint<M> {
    /// This endpoint's address.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of endpoints on the fabric.
    pub fn n_endpoints(&self) -> usize {
        self.shared.inboxes.len()
    }

    /// Traffic counters for the fabric this endpoint is attached to
    /// (shared with [`Fabric::stats`]).
    pub fn stats(&self) -> Arc<NetStats> {
        self.shared.stats.clone()
    }

    /// Send `msg` to endpoint `to`. Never blocks on the receiver.
    pub fn send(&self, to: usize, msg: M) -> Result<(), SendError> {
        let sh = &self.shared;
        if to >= sh.inboxes.len() {
            return Err(SendError::UnknownEndpoint);
        }
        if sh.isolated[self.id].load(Ordering::Relaxed) || sh.isolated[to].load(Ordering::Relaxed) {
            sh.stats.record_drop();
            return Ok(()); // silently dropped, like a dead peer
        }
        // Seeded fault injection: a keyed message on an in-scope link gets
        // its fate from the pure decision function (drop / duplicate /
        // delay). Keyless messages (control plane, client links) pass
        // through untouched.
        let decision = if sh.chaos.applies_to_link(self.id, to) {
            msg.chaos_key().map(|k| sh.chaos.decide(k))
        } else {
            None
        };
        if let Some(d) = &decision {
            if d.drop {
                sh.stats.record_chaos_drop();
                return Ok(()); // lost on the wire
            }
        }
        let size = msg.wire_size();
        sh.stats.record(self.id, to, size);
        let bulk = msg.traffic_class() == crate::TrafficClass::Bulk;
        if bulk {
            sh.stats.record_bulk(size);
        }
        let env = Envelope {
            from: self.id,
            to,
            msg,
        };
        let dup_env = match &decision {
            Some(d) if d.duplicate => {
                sh.stats.record_chaos_dup();
                Some(env.clone())
            }
            _ => None,
        };
        let extra = decision.map(|d| d.extra_delay).unwrap_or(Duration::ZERO);
        if !extra.is_zero() {
            sh.stats.record_chaos_delay();
        }
        match &sh.wheel_tx {
            // No wheel ⇒ chaos can only be dropping (needs_wheel() covers
            // dup/delay), so plain instant delivery is exact.
            None => sh.inboxes[to].send(env).map_err(|_| SendError::Closed),
            Some(wheel) => {
                let delay = {
                    let mut rng = sh.rng.lock();
                    let jitter_ns = if sh.cfg.jitter.is_zero() {
                        0
                    } else {
                        rng.gen_range(0..=sh.cfg.jitter.as_nanos() as u64)
                    };
                    let per_byte = if bulk {
                        sh.cfg.bulk_per_byte
                    } else {
                        sh.cfg.per_byte
                    };
                    sh.cfg.latency + Duration::from_nanos(jitter_ns) + per_byte * (size as u32)
                };
                let mut deliver_at = Instant::now() + delay + extra;
                // A chaos-delayed message with `reorder` on skips the FIFO
                // floor: later sends on the link may overtake it. Without
                // `reorder` the extra delay stalls the whole link instead.
                let bypass_floor = sh.chaos.reorder && !extra.is_zero();
                if !bypass_floor {
                    let mut floors = sh.link_floor.lock();
                    let slot = self.id * sh.inboxes.len() + to;
                    if deliver_at < floors[slot] {
                        deliver_at = floors[slot] + Duration::from_nanos(1);
                    }
                    floors[slot] = deliver_at;
                }
                let seq = sh.seq.fetch_add(1, Ordering::Relaxed);
                wheel
                    .send(Scheduled {
                        deliver_at,
                        seq,
                        env,
                    })
                    .map_err(|_| SendError::Closed)?;
                if let Some(denv) = dup_env {
                    // Duplicate copies never consult the floor — a dup may
                    // arrive out of order, which is exactly the hazard the
                    // receive-side dedupe must absorb.
                    let dd = decision.map(|d| d.dup_delay).unwrap_or_default();
                    let seq = sh.seq.fetch_add(1, Ordering::Relaxed);
                    wheel
                        .send(Scheduled {
                            deliver_at: deliver_at + dd,
                            seq,
                            env: denv,
                        })
                        .map_err(|_| SendError::Closed)?;
                }
                Ok(())
            }
        }
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope<M>, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Closed)
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Closed,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Number of messages waiting in this endpoint's inbox.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_fabric_delivers_in_order() {
        let (_fabric, eps) = Fabric::<u64>::new(2, NetConfig::instant());
        for i in 0..100u64 {
            eps[0].send(1, i).unwrap();
        }
        for i in 0..100u64 {
            let env = eps[1].recv().unwrap();
            assert_eq!(env.msg, i);
            assert_eq!(env.from, 0);
        }
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let (_fabric, eps) = Fabric::<u64>::new(2, NetConfig::instant());
        assert_eq!(eps[0].send(5, 1), Err(SendError::UnknownEndpoint));
    }

    #[test]
    fn delayed_fabric_delivers_after_latency() {
        let cfg = NetConfig {
            latency: Duration::from_millis(5),
            jitter: Duration::ZERO,
            per_byte: Duration::ZERO,
            bulk_per_byte: Duration::ZERO,
            seed: 1,
        };
        let (_fabric, eps) = Fabric::<u64>::new(2, cfg);
        let t0 = Instant::now();
        eps[0].send(1, 42).unwrap();
        assert!(eps[1].try_recv().is_none(), "must not deliver instantly");
        let env = eps[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 42);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn per_link_fifo_under_jitter() {
        let cfg = NetConfig {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(500),
            per_byte: Duration::ZERO,
            bulk_per_byte: Duration::ZERO,
            seed: 7,
        };
        let (_fabric, eps) = Fabric::<u64>::new(2, cfg);
        for i in 0..200u64 {
            eps[0].send(1, i).unwrap();
        }
        for i in 0..200u64 {
            let env = eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(env.msg, i, "jitter must not reorder a link");
        }
    }

    #[test]
    fn isolation_drops_silently() {
        let (fabric, eps) = Fabric::<u64>::new(3, NetConfig::instant());
        fabric.isolate(1, true);
        eps[0].send(1, 1).unwrap(); // to isolated
        eps[1].send(2, 2).unwrap(); // from isolated
        eps[0].send(2, 3).unwrap(); // unaffected
        let env = eps[2].recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(env.msg, 3);
        assert!(eps[1].try_recv().is_none());
        assert_eq!(fabric.stats().dropped(), 2);
        // Reconnect and verify traffic resumes.
        fabric.isolate(1, false);
        eps[0].send(1, 9).unwrap();
        assert_eq!(
            eps[1].recv_timeout(Duration::from_millis(100)).unwrap().msg,
            9
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let (fabric, eps) = Fabric::<Vec<u8>>::new(2, NetConfig::instant());
        eps[0].send(1, vec![0u8; 100]).unwrap();
        eps[0].send(1, vec![0u8; 50]).unwrap();
        let st = fabric.stats();
        assert_eq!(st.messages(0, 1), 2);
        assert_eq!(st.bytes(0, 1), 150);
        assert_eq!(st.total_messages(), 2);
    }

    #[test]
    fn per_byte_cost_slows_large_messages() {
        let cfg = NetConfig {
            latency: Duration::from_micros(1),
            jitter: Duration::ZERO,
            per_byte: Duration::from_micros(10),
            bulk_per_byte: Duration::ZERO,
            seed: 0,
        };
        let (_fabric, eps) = Fabric::<Vec<u8>>::new(2, cfg);
        let t0 = Instant::now();
        eps[0].send(1, vec![0u8; 1000]).unwrap();
        eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
        // 1000 bytes * 10µs = 10ms minimum.
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn many_senders_one_receiver() {
        let (_fabric, mut eps) = Fabric::<u64>::new(5, NetConfig::instant());
        let sink = eps.remove(0);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        ep.send(0, i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while sink.try_recv().is_some() {
            count += 1;
        }
        assert_eq!(count, 400);
    }

    #[test]
    fn self_send_works() {
        let (_fabric, eps) = Fabric::<u64>::new(1, NetConfig::instant());
        eps[0].send(0, 7).unwrap();
        assert_eq!(eps[0].recv().unwrap().msg, 7);
    }

    /// A payload that rides the bulk bandwidth lane.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Chunk(Vec<u8>);

    impl WireSize for Chunk {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
        fn traffic_class(&self) -> crate::TrafficClass {
            crate::TrafficClass::Bulk
        }
    }

    #[test]
    fn bulk_class_charged_at_bulk_rate() {
        let cfg = NetConfig {
            latency: Duration::from_micros(1),
            jitter: Duration::ZERO,
            per_byte: Duration::ZERO,
            bulk_per_byte: Duration::from_micros(10),
            seed: 0,
        };
        let (fabric, eps) = Fabric::<Chunk>::new(2, cfg);
        let t0 = Instant::now();
        eps[0].send(1, Chunk(vec![0u8; 1000])).unwrap();
        eps[1].recv_timeout(Duration::from_secs(5)).unwrap();
        // 1000 bytes * 10µs bulk rate = 10ms minimum despite per_byte = 0.
        assert!(t0.elapsed() >= Duration::from_millis(10));
        let st = fabric.stats();
        assert_eq!(st.bulk_messages(), 1);
        assert_eq!(st.bulk_bytes(), 1000);
    }

    #[test]
    fn interactive_traffic_leaves_bulk_counters_flat() {
        let (fabric, eps) = Fabric::<Vec<u8>>::new(2, NetConfig::instant());
        eps[0].send(1, vec![0u8; 100]).unwrap();
        eps[1].recv().unwrap();
        assert_eq!(fabric.stats().bulk_messages(), 0);
        assert_eq!(fabric.stats().bulk_bytes(), 0);
    }

    /// A message that opts into chaos with its value as identity.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Keyed(u64);

    impl WireSize for Keyed {
        fn wire_size(&self) -> usize {
            8
        }
        fn chaos_key(&self) -> Option<u64> {
            Some(self.0)
        }
    }

    /// A keyed bulk message: chaos coverage must extend to the bulk lane.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct KeyedChunk(u64);

    impl WireSize for KeyedChunk {
        fn wire_size(&self) -> usize {
            64
        }
        fn chaos_key(&self) -> Option<u64> {
            Some(self.0)
        }
        fn traffic_class(&self) -> crate::TrafficClass {
            crate::TrafficClass::Bulk
        }
    }

    #[test]
    fn keyed_bulk_messages_stay_under_chaos() {
        let (fabric, eps) = Fabric::<KeyedChunk>::with_chaos(2, NetConfig::instant(), lossy(99, 2));
        for k in 0..500u64 {
            eps[0].send(1, KeyedChunk(k)).unwrap();
        }
        let mut arrived = 0u64;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match eps[1].recv_timeout(Duration::from_millis(50)) {
                Ok(_) => arrived += 1,
                Err(_) => break,
            }
        }
        let st = fabric.stats();
        assert!(st.chaos_dropped() > 50, "bulk lane must not dodge chaos");
        assert!(arrived < 500 + st.chaos_duplicated());
        assert_eq!(st.bulk_messages(), 500 - st.chaos_dropped());
    }

    fn lossy(seed: u64, scope: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_prob: 0.2,
            dup_prob: 0.2,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            reorder: false,
            scope,
        }
    }

    /// Run `n` keyed messages through a chaotic fabric and count arrivals
    /// per key.
    fn deliveries(seed: u64, n: u64) -> Vec<u64> {
        let (_fabric, eps) = Fabric::<Keyed>::with_chaos(2, NetConfig::instant(), lossy(seed, 2));
        for k in 0..n {
            eps[0].send(1, Keyed(k)).unwrap();
        }
        let mut got = vec![0u64; n as usize];
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match eps[1].recv_timeout(Duration::from_millis(50)) {
                Ok(env) => got[env.msg.0 as usize] += 1,
                Err(_) => break,
            }
        }
        got
    }

    #[test]
    fn chaos_drops_and_duplicates_deterministically() {
        let a = deliveries(99, 500);
        let b = deliveries(99, 500);
        assert_eq!(a, b, "same seed must realize the same fault schedule");
        let dropped = a.iter().filter(|&&c| c == 0).count();
        let dupped = a.iter().filter(|&&c| c == 2).count();
        assert!(dropped > 50, "expected ~20% drops, got {dropped}/500");
        assert!(dupped > 30, "expected ~16% dups, got {dupped}/500");
    }

    #[test]
    fn chaos_ignores_keyless_and_out_of_scope_messages() {
        // u64 has no chaos key: every message arrives exactly once.
        let (fabric, eps) = Fabric::<u64>::with_chaos(2, NetConfig::instant(), lossy(1, 2));
        for i in 0..200u64 {
            eps[0].send(1, i).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(eps[1].recv().unwrap().msg, i);
        }
        assert_eq!(fabric.stats().chaos_dropped(), 0);
        // Keyed messages outside the scope (endpoint 2 = "client") pass.
        let (fabric, eps) = Fabric::<Keyed>::with_chaos(3, NetConfig::instant(), lossy(1, 2));
        for i in 0..200u64 {
            eps[0].send(2, Keyed(i)).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(eps[2].recv().unwrap().msg, Keyed(i));
        }
        assert_eq!(fabric.stats().chaos_dropped(), 0);
    }
}
