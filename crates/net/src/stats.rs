//! Per-link traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Message/byte counters for every (from, to) link of a fabric.
#[derive(Debug)]
pub struct NetStats {
    n: usize,
    msgs: Vec<AtomicU64>,
    bytes: Vec<AtomicU64>,
    dropped: AtomicU64,
    chaos_dropped: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_delayed: AtomicU64,
    handoffs: AtomicU64,
    bulk_messages: AtomicU64,
    bulk_bytes: AtomicU64,
}

impl NetStats {
    /// Counters for an `n`-endpoint fabric.
    pub fn new(n: usize) -> Self {
        NetStats {
            n,
            msgs: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            bytes: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            dropped: AtomicU64::new(0),
            chaos_dropped: AtomicU64::new(0),
            chaos_duplicated: AtomicU64::new(0),
            chaos_delayed: AtomicU64::new(0),
            handoffs: AtomicU64::new(0),
            bulk_messages: AtomicU64::new(0),
            bulk_bytes: AtomicU64::new(0),
        }
    }

    #[inline]
    fn idx(&self, from: usize, to: usize) -> usize {
        from * self.n + to
    }

    /// Record one delivered message.
    pub fn record(&self, from: usize, to: usize, bytes: usize) {
        self.msgs[self.idx(from, to)].fetch_add(1, Ordering::Relaxed);
        self.bytes[self.idx(from, to)].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one dropped (isolated) message.
    pub fn record_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages sent from `from` to `to`.
    pub fn messages(&self, from: usize, to: usize) -> u64 {
        self.msgs[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Bytes sent from `from` to `to`.
    pub fn bytes(&self, from: usize, to: usize) -> u64 {
        self.bytes[self.idx(from, to)].load(Ordering::Relaxed)
    }

    /// Total messages across all links.
    pub fn total_messages(&self) -> u64 {
        self.msgs.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Total bytes across all links.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Messages dropped by isolation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one message dropped by chaos injection.
    pub fn record_chaos_drop(&self) {
        self.chaos_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one message duplicated by chaos injection.
    pub fn record_chaos_dup(&self) {
        self.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one message given extra delay by chaos injection.
    pub fn record_chaos_delay(&self) {
        self.chaos_delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages dropped by chaos injection.
    pub fn chaos_dropped(&self) -> u64 {
        self.chaos_dropped.load(Ordering::Relaxed)
    }

    /// Messages duplicated by chaos injection.
    pub fn chaos_duplicated(&self) -> u64 {
        self.chaos_duplicated.load(Ordering::Relaxed)
    }

    /// Messages delayed by chaos injection.
    pub fn chaos_delayed(&self) -> u64 {
        self.chaos_delayed.load(Ordering::Relaxed)
    }

    /// Record one role handoff orchestrated over the fabric (e.g. a
    /// coordinator failover re-homing a travel's ledger).
    pub fn record_handoff(&self) {
        self.handoffs.fetch_add(1, Ordering::Relaxed);
    }

    /// Role handoffs orchestrated over the fabric.
    pub fn handoffs(&self) -> u64 {
        self.handoffs.load(Ordering::Relaxed)
    }

    /// Record one bulk-class message (in addition to the per-link record).
    pub fn record_bulk(&self, bytes: usize) {
        self.bulk_messages.fetch_add(1, Ordering::Relaxed);
        self.bulk_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages that rode the bulk bandwidth lane.
    pub fn bulk_messages(&self) -> u64 {
        self.bulk_messages.load(Ordering::Relaxed)
    }

    /// Bytes shipped on the bulk bandwidth lane.
    pub fn bulk_bytes(&self) -> u64 {
        self.bulk_bytes.load(Ordering::Relaxed)
    }

    /// Number of endpoints this fabric was built with.
    pub fn n_endpoints(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_link() {
        let s = NetStats::new(3);
        s.record(0, 1, 10);
        s.record(0, 1, 5);
        s.record(2, 0, 7);
        assert_eq!(s.messages(0, 1), 2);
        assert_eq!(s.bytes(0, 1), 15);
        assert_eq!(s.messages(1, 0), 0);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 22);
    }

    #[test]
    fn drop_counter() {
        let s = NetStats::new(2);
        assert_eq!(s.dropped(), 0);
        s.record_drop();
        assert_eq!(s.dropped(), 1);
    }
}
