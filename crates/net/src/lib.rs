#![warn(missing_docs)]

//! # gt-net — simulated cluster message fabric
//!
//! The paper's traversal-engine components "communicate with each other
//! through RPC calls, which are implemented by ZeroMQ as a high-speed
//! network transmission protocol" (§VI) over the Fusion cluster's
//! InfiniBand fabric. This crate is that substrate for the in-process
//! reproduction: a set of [`Endpoint`]s (one per simulated backend server,
//! plus clients) exchanging typed messages through a [`Fabric`] that
//! models network behaviour:
//!
//! * **Latency** — configurable base one-way latency plus bounded jitter
//!   plus a per-byte transmission cost ([`NetConfig`]).
//! * **Per-link FIFO ordering** — like a ZeroMQ/TCP connection, messages
//!   between a given (from, to) pair are never reordered, even when
//!   jitter would suggest otherwise.
//! * **Asynchronous, non-blocking sends** — a sender never waits for the
//!   receiver; delivery happens on a dedicated timer thread.
//! * **Fault injection** — any endpoint can be isolated (its traffic
//!   silently dropped), which the engine's status-tracing tests use to
//!   exercise silent-failure detection (§IV-C).
//! * **Counters** — per-link message/byte counts for the evaluation
//!   harness.
//!
//! Messages are plain Rust values (the "wire" is an in-process channel),
//! but every message type reports a [`WireSize`] so the bandwidth model
//! has something to charge.

pub mod chaos;
pub mod config;
pub mod fabric;
pub mod stats;

pub use chaos::{chaos_key_of, ChaosConfig, ChaosDecision};
pub use config::NetConfig;
pub use fabric::{Endpoint, Envelope, Fabric, RecvError, SendError};
pub use stats::NetStats;

/// Bandwidth class of a message, selecting which per-byte cost the fabric
/// charges. Interactive traffic (frontier relays, control plane) rides the
/// fast `per_byte` rate; bulk transfers (shard-migration snapshot chunks)
/// are charged the slower `bulk_per_byte` rate, modelling a streaming lane
/// that does not contend with the latency-sensitive path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Latency-sensitive traversal/control traffic (the default).
    Interactive,
    /// Throughput-oriented background transfer (snapshot shipping).
    Bulk,
}

/// Implemented by message types so the fabric can model transmission cost.
pub trait WireSize {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize;

    /// Stable identity of this message for seeded fault injection: the
    /// chaos layer's fate decision is a pure function of `(seed, key)`,
    /// which is what makes a fault schedule reproducible regardless of
    /// thread interleaving. `None` (the default) exempts the message
    /// from chaos entirely — appropriate for control-plane traffic.
    fn chaos_key(&self) -> Option<u64> {
        None
    }

    /// Which bandwidth lane this message occupies. Defaults to
    /// [`TrafficClass::Interactive`]; bulk-transfer payloads override.
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Interactive
    }
}

impl WireSize for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSize for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

impl WireSize for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}
