//! Fabric behaviour under load: per-link FIFO with many concurrent
//! senders, mid-stream isolation, and counter consistency.

use gt_net::{Fabric, NetConfig};
use std::time::Duration;

#[test]
fn per_link_fifo_holds_with_many_links_under_jitter() {
    let cfg = NetConfig {
        latency: Duration::from_micros(50),
        jitter: Duration::from_micros(300),
        per_byte: Duration::ZERO,
        bulk_per_byte: Duration::ZERO,
        seed: 99,
    };
    let n = 6;
    let (_fabric, mut eps) = Fabric::<u64>::new(n, cfg);
    let sink = eps.remove(0);
    let senders: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                for i in 0..300u64 {
                    // Encode (sender, seq) so the receiver can check
                    // per-link order.
                    ep.send(0, (ep.id() as u64) << 32 | i).unwrap();
                }
            })
        })
        .collect();
    let mut last_seq = vec![None::<u64>; n];
    for _ in 0..(300 * (n - 1)) {
        let env = sink.recv_timeout(Duration::from_secs(10)).expect("recv");
        let from = (env.msg >> 32) as usize;
        let seq = env.msg & 0xFFFF_FFFF;
        assert_eq!(from, env.from);
        if let Some(prev) = last_seq[from] {
            assert!(seq > prev, "link {from} reordered: {prev} then {seq}");
        }
        last_seq[from] = Some(seq);
    }
    for s in senders {
        s.join().unwrap();
    }
}

#[test]
fn isolation_mid_stream_drops_exactly_the_gap() {
    let (fabric, eps) = Fabric::<u64>::new(2, NetConfig::instant());
    for i in 0..10u64 {
        eps[0].send(1, i).unwrap();
    }
    fabric.isolate(1, true);
    for i in 10..20u64 {
        eps[0].send(1, i).unwrap();
    }
    fabric.isolate(1, false);
    for i in 20..30u64 {
        eps[0].send(1, i).unwrap();
    }
    let mut got = Vec::new();
    while let Some(env) = eps[1].try_recv() {
        got.push(env.msg);
    }
    let want: Vec<u64> = (0..10).chain(20..30).collect();
    assert_eq!(got, want);
    assert_eq!(fabric.stats().dropped(), 10);
}

#[test]
fn counters_match_traffic_exactly() {
    let (fabric, eps) = Fabric::<Vec<u8>>::new(3, NetConfig::instant());
    for _ in 0..5 {
        eps[0].send(1, vec![0u8; 10]).unwrap();
        eps[1].send(2, vec![0u8; 20]).unwrap();
        eps[2].send(0, vec![0u8; 30]).unwrap();
    }
    let st = fabric.stats();
    assert_eq!(st.messages(0, 1), 5);
    assert_eq!(st.bytes(0, 1), 50);
    assert_eq!(st.messages(1, 2), 5);
    assert_eq!(st.bytes(1, 2), 100);
    assert_eq!(st.messages(2, 0), 5);
    assert_eq!(st.bytes(2, 0), 150);
    assert_eq!(st.total_messages(), 15);
    assert_eq!(st.total_bytes(), 300);
    assert_eq!(st.n_endpoints(), 3);
}

#[test]
fn delayed_broadcast_arrives_everywhere() {
    let cfg = NetConfig {
        latency: Duration::from_micros(200),
        jitter: Duration::from_micros(100),
        per_byte: Duration::from_nanos(10),
        bulk_per_byte: Duration::from_nanos(10),
        seed: 5,
    };
    let n = 8;
    let (_fabric, eps) = Fabric::<u64>::new(n, cfg);
    for dst in 1..n {
        eps[0].send(dst, dst as u64).unwrap();
    }
    for (dst, ep) in eps.iter().enumerate().skip(1) {
        let env = ep.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.msg, dst as u64);
    }
}

#[test]
fn endpoint_clones_share_one_inbox() {
    let (_fabric, eps) = Fabric::<u64>::new(2, NetConfig::instant());
    let a = eps[1].clone();
    let b = eps[1].clone();
    eps[0].send(1, 1).unwrap();
    eps[0].send(1, 2).unwrap();
    // Either clone can take either message, but both are consumed once.
    let m1 = a.recv_timeout(Duration::from_secs(1)).unwrap().msg;
    let m2 = b.recv_timeout(Duration::from_secs(1)).unwrap().msg;
    let mut got = vec![m1, m2];
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);
    assert!(a.try_recv().is_none());
}
