#![warn(missing_docs)]

//! # gt-placement — versioned partition placement & replication sets
//!
//! The seed cluster routes with a fixed edge-cut hash: vertex `v` lives on
//! server `splitmix64(v) % n`, forever. This crate replaces that implicit
//! rule with an explicit, *versioned* placement map:
//!
//! * each **partition** (still `splitmix64(v) % n_partitions`) has one
//!   **primary** server and zero or more **replicas**;
//! * the map carries a monotonically increasing **version**, so a stale
//!   map can never overwrite a newer one ([`SharedPlacement::install`]
//!   is the fence);
//! * primaries can change — replica **promotion** after a crash, or a
//!   live **migration** cutover — and servers can be **decommissioned**
//!   (drained of primaries and excluded from new coordinator duty).
//!
//! The initial map reproduces the seed routing exactly: `n_partitions ==
//! n_servers` and partition `p`'s primary is server `p`, so a static
//! cluster behaves byte-identically to the pre-placement code.
//!
//! [`rebalance::plan_moves`] is the pure load-aware planner driving
//! `Cluster::rebalance()`.

pub mod rebalance;

use gt_graph::{splitmix64, VertexId};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Placement of one partition: a primary plus its replica set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionEntry {
    /// The server answering reads and accepting writes for the partition.
    pub primary: usize,
    /// Servers holding synchronously shipped copies (never the primary).
    pub replicas: Vec<usize>,
}

impl PartitionEntry {
    /// Every server holding a copy of the partition, primary first.
    pub fn holders(&self) -> Vec<usize> {
        let mut h = Vec::with_capacity(1 + self.replicas.len());
        h.push(self.primary);
        h.extend(self.replicas.iter().copied());
        h
    }
}

/// The versioned `{partition → primary, replicas[]}` table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementMap {
    /// Monotonic version; every mutation bumps it, installs are fenced.
    pub version: u64,
    /// One entry per partition, indexed by partition id.
    pub entries: Vec<PartitionEntry>,
    /// Servers drained of primary duty (still alive, still draining
    /// straggler traffic, but excluded from new placements/coordination).
    pub decommissioned: Vec<bool>,
    /// Number of servers in the cluster.
    pub n_servers: usize,
}

impl PlacementMap {
    /// The initial placement of an `n_servers` cluster with replication
    /// factor `rf`: one partition per server, partition `p` primaried by
    /// server `p` (identical to the seed's `hash % n` routing), replicas
    /// on the next `rf - 1` ring successors.
    pub fn initial(n_servers: usize, rf: usize) -> Self {
        assert!(n_servers >= 1, "cluster needs at least one server");
        let rf = rf.clamp(1, n_servers);
        let entries = (0..n_servers)
            .map(|p| PartitionEntry {
                primary: p,
                replicas: (1..rf).map(|i| (p + i) % n_servers).collect(),
            })
            .collect();
        PlacementMap {
            version: 1,
            entries,
            decommissioned: vec![false; n_servers],
            n_servers,
        }
    }

    /// Number of partitions in the map.
    pub fn n_partitions(&self) -> usize {
        self.entries.len()
    }

    /// The partition a vertex belongs to (the seed's splitmix64 hash).
    pub fn partition_of(&self, vid: VertexId) -> usize {
        (splitmix64(vid.0) % self.entries.len() as u64) as usize
    }

    /// Primary server of a partition.
    pub fn primary_of(&self, partition: usize) -> usize {
        self.entries[partition].primary
    }

    /// Replica set of a partition (primary excluded).
    pub fn replicas_of(&self, partition: usize) -> &[usize] {
        &self.entries[partition].replicas
    }

    /// Every holder of a partition, primary first.
    pub fn holders_of(&self, partition: usize) -> Vec<usize> {
        self.entries[partition].holders()
    }

    /// Is `server` the primary for `vid`'s partition?
    pub fn is_primary(&self, server: usize, vid: VertexId) -> bool {
        self.primary_of(self.partition_of(vid)) == server
    }

    /// Does `server` hold a copy (primary or replica) of `vid`'s partition?
    pub fn holds(&self, server: usize, vid: VertexId) -> bool {
        let e = &self.entries[self.partition_of(vid)];
        e.primary == server || e.replicas.contains(&server)
    }

    /// Re-point partition `partition` at a new primary. The old primary
    /// leaves the holder set (its copy is retained on disk as residue);
    /// if the new primary was a replica it is removed from the replica
    /// list. Bumps the version.
    pub fn set_primary(&mut self, partition: usize, server: usize) {
        let e = &mut self.entries[partition];
        let old = e.primary;
        e.replicas.retain(|&r| r != server);
        // The demoted primary does NOT rejoin the replica set: its copy
        // stops receiving writes and only serves stale-routed stragglers.
        let _ = old;
        e.primary = server;
        self.version += 1;
    }

    /// Promote replicas over every partition primaried by `dead`: the
    /// first replica (ring order) becomes the new primary. Partitions
    /// with an empty replica set are left orphaned (rf=1 has nothing to
    /// promote). Returns the re-pointed partitions. Bumps the version.
    pub fn promote(&mut self, dead: usize) -> Vec<usize> {
        let mut moved = Vec::new();
        for p in 0..self.entries.len() {
            let e = &mut self.entries[p];
            if e.primary != dead {
                // A dead replica stops acking; drop it from the set.
                e.replicas.retain(|&r| r != dead);
                continue;
            }
            if let Some(&next) = e.replicas.first() {
                e.replicas.retain(|&r| r != next && r != dead);
                e.primary = next;
                moved.push(p);
            }
        }
        self.version += 1;
        moved
    }

    /// Add `server` to partition `partition`'s replica set (the target of
    /// a completed background re-replication). No-op if the server is
    /// already a holder; bumps the version otherwise. Returns whether the
    /// replica was added.
    pub fn add_replica(&mut self, partition: usize, server: usize) -> bool {
        let e = &mut self.entries[partition];
        if e.primary == server || e.replicas.contains(&server) {
            return false;
        }
        e.replicas.push(server);
        self.version += 1;
        true
    }

    /// Partitions holding fewer than `rf` copies, as `(partition,
    /// missing)` pairs — the healer's re-replication worklist. `rf` is
    /// clamped to the cluster size.
    pub fn under_replicated(&self, rf: usize) -> Vec<(usize, usize)> {
        let rf = rf.clamp(1, self.n_servers);
        (0..self.entries.len())
            .filter_map(|p| {
                let have = 1 + self.entries[p].replicas.len();
                // `then` (lazy), not `then_some`: an over-replicated
                // partition (have > rf) must not evaluate `rf - have`.
                (have < rf).then(|| (p, rf - have))
            })
            .collect()
    }

    /// Mark a server as decommissioned (no new primaries, no coordinator
    /// duty). Bumps the version.
    pub fn decommission(&mut self, server: usize) {
        self.decommissioned[server] = true;
        self.version += 1;
    }

    /// Has `server` been decommissioned?
    pub fn is_decommissioned(&self, server: usize) -> bool {
        self.decommissioned[server]
    }

    /// Servers still eligible for primaries/coordination, ascending.
    pub fn active_servers(&self) -> Vec<usize> {
        (0..self.n_servers)
            .filter(|&s| !self.decommissioned[s])
            .collect()
    }

    /// The ring successors of `server` that receive its replicated travel
    /// ledger (`rf - 1` peers, skipping `server` itself).
    pub fn ledger_peers(&self, server: usize, rf: usize) -> Vec<usize> {
        let rf = rf.clamp(1, self.n_servers);
        (1..rf).map(|i| (server + i) % self.n_servers).collect()
    }

    /// Partitions primaried by `server`, ascending.
    pub fn primaried_by(&self, server: usize) -> Vec<usize> {
        (0..self.entries.len())
            .filter(|&p| self.entries[p].primary == server)
            .collect()
    }
}

/// A process-shared placement map behind a leaf-only `RwLock`: every
/// method acquires and releases internally, never exposing a guard, so
/// the lock can be read from any point of the server/cluster lock order
/// without joining it.
#[derive(Debug)]
pub struct SharedPlacement {
    map: RwLock<PlacementMap>,
}

impl SharedPlacement {
    /// Wrap an initial map.
    pub fn new(map: PlacementMap) -> Self {
        SharedPlacement {
            map: RwLock::new(map),
        }
    }

    /// Current map version.
    pub fn version(&self) -> u64 {
        self.map.read().version
    }

    /// A full copy of the current map.
    pub fn snapshot(&self) -> PlacementMap {
        self.map.read().clone()
    }

    /// Install `map` iff it is strictly newer than the current one — the
    /// epoch fence that keeps late `PlacementUpdate`s from rolling the
    /// routing table backwards. Returns whether the install happened.
    pub fn install(&self, map: PlacementMap) -> bool {
        let mut cur = self.map.write();
        if map.version > cur.version {
            *cur = map;
            true
        } else {
            false
        }
    }

    /// Primary server for `vid`.
    pub fn primary_of_vid(&self, vid: VertexId) -> usize {
        let m = self.map.read();
        m.primary_of(m.partition_of(vid))
    }

    /// Is `server` the primary for `vid`?
    pub fn is_primary_vid(&self, server: usize, vid: VertexId) -> bool {
        self.map.read().is_primary(server, vid)
    }

    /// Every holder (primary first) of `vid`'s partition.
    pub fn holders_of_vid(&self, vid: VertexId) -> Vec<usize> {
        let m = self.map.read();
        m.holders_of(m.partition_of(vid))
    }

    /// The partition `vid` belongs to.
    pub fn partition_of_vid(&self, vid: VertexId) -> usize {
        self.map.read().partition_of(vid)
    }

    /// Group vertex ids by primary server; returns `n_servers` buckets.
    pub fn group_by_primary(&self, vids: impl IntoIterator<Item = VertexId>) -> Vec<Vec<VertexId>> {
        let m = self.map.read();
        let mut buckets = vec![Vec::new(); m.n_servers];
        for vid in vids {
            buckets[m.primary_of(m.partition_of(vid))].push(vid);
        }
        buckets
    }

    /// Has `server` been decommissioned?
    pub fn is_decommissioned(&self, server: usize) -> bool {
        self.map.read().is_decommissioned(server)
    }

    /// Ledger replication peers of `server` (see
    /// [`PlacementMap::ledger_peers`]).
    pub fn ledger_peers(&self, server: usize, rf: usize) -> Vec<usize> {
        self.map.read().ledger_peers(server, rf)
    }

    /// Does `server` hold a copy (primary or replica) of `vid`'s partition?
    pub fn holds_vid(&self, server: usize, vid: VertexId) -> bool {
        self.map.read().holds(server, vid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::EdgeCutPartitioner;

    #[test]
    fn initial_map_reproduces_seed_routing() {
        for n in 1..8usize {
            let map = PlacementMap::initial(n, 1);
            let part = EdgeCutPartitioner::new(n);
            for i in 0..500u64 {
                let vid = VertexId(i);
                assert_eq!(
                    map.primary_of(map.partition_of(vid)),
                    part.owner(vid),
                    "n={n} vid={i}: placement must match the seed hash routing"
                );
            }
        }
    }

    #[test]
    fn rf_clamps_and_replicas_are_ring_successors() {
        let map = PlacementMap::initial(3, 2);
        assert_eq!(map.replicas_of(0), &[1]);
        assert_eq!(map.replicas_of(2), &[0]);
        assert_eq!(map.holders_of(2), vec![2, 0]);
        // rf larger than the cluster clamps to n_servers.
        let map = PlacementMap::initial(2, 5);
        assert_eq!(map.replicas_of(0), &[1]);
        // rf=1: no replicas.
        let map = PlacementMap::initial(3, 1);
        assert!(map.replicas_of(1).is_empty());
    }

    #[test]
    fn promote_repoints_dead_primaries() {
        let mut map = PlacementMap::initial(3, 2);
        let v0 = map.version;
        let moved = map.promote(1);
        assert_eq!(moved, vec![1]);
        assert_eq!(map.primary_of(1), 2, "ring successor takes over");
        assert!(map.replicas_of(1).is_empty(), "promoted replica leaves set");
        assert!(
            !map.replicas_of(0).contains(&1),
            "dead server dropped from other replica sets"
        );
        assert!(map.version > v0);
    }

    #[test]
    fn promote_with_rf1_orphans_the_partition() {
        let mut map = PlacementMap::initial(3, 1);
        let moved = map.promote(1);
        assert!(moved.is_empty());
        assert_eq!(map.primary_of(1), 1, "nothing to promote to");
    }

    #[test]
    fn set_primary_moves_and_versions() {
        let mut map = PlacementMap::initial(4, 1);
        let v0 = map.version;
        map.set_primary(2, 0);
        assert_eq!(map.primary_of(2), 0);
        assert_eq!(map.version, v0 + 1);
        assert_eq!(map.primaried_by(0), vec![0, 2]);
        assert!(map.primaried_by(2).is_empty());
    }

    #[test]
    fn add_replica_restores_rf_and_is_idempotent() {
        let mut map = PlacementMap::initial(3, 2);
        let moved = map.promote(1);
        assert_eq!(moved, vec![1]);
        assert_eq!(
            map.under_replicated(2),
            vec![(0, 1), (1, 1)],
            "dropping server 1 leaves the partitions it held one copy short"
        );
        let v0 = map.version;
        assert!(map.add_replica(1, 0));
        assert_eq!(map.version, v0 + 1);
        assert_eq!(map.holders_of(1), vec![2, 0]);
        assert_eq!(map.under_replicated(2), vec![(0, 1)]);
        // Existing holders (primary or replica) are rejected, unversioned.
        assert!(!map.add_replica(1, 2));
        assert!(!map.add_replica(1, 0));
        assert_eq!(map.version, v0 + 1);
        // A fully replicated map has an empty worklist; rf clamps.
        let full = PlacementMap::initial(3, 2);
        assert!(full.under_replicated(2).is_empty());
        assert!(full.under_replicated(1).is_empty());
        assert_eq!(full.under_replicated(9).len(), 3, "rf clamps to n");
    }

    #[test]
    fn decommission_excludes_from_active_set() {
        let mut map = PlacementMap::initial(4, 1);
        map.decommission(2);
        assert!(map.is_decommissioned(2));
        assert_eq!(map.active_servers(), vec![0, 1, 3]);
    }

    #[test]
    fn ledger_peers_skip_self() {
        let map = PlacementMap::initial(3, 2);
        assert_eq!(map.ledger_peers(0, 2), vec![1]);
        assert_eq!(map.ledger_peers(2, 2), vec![0]);
        assert!(map.ledger_peers(0, 1).is_empty());
        assert_eq!(map.ledger_peers(1, 3), vec![2, 0]);
    }

    #[test]
    fn shared_install_is_version_fenced() {
        let shared = SharedPlacement::new(PlacementMap::initial(3, 1));
        let mut newer = shared.snapshot();
        newer.set_primary(0, 1);
        let stale = shared.snapshot();
        assert!(shared.install(newer.clone()));
        assert_eq!(shared.version(), newer.version);
        assert!(!shared.install(stale), "stale map must be rejected");
        assert!(!shared.install(newer), "equal version must be rejected too");
        assert_eq!(shared.snapshot().primary_of(0), 1);
    }

    #[test]
    fn group_by_primary_matches_point_lookups() {
        let shared = SharedPlacement::new(PlacementMap::initial(4, 2));
        let vids: Vec<VertexId> = (0..200u64).map(VertexId).collect();
        let buckets = shared.group_by_primary(vids.iter().copied());
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 200);
        for (s, bucket) in buckets.iter().enumerate() {
            for vid in bucket {
                assert_eq!(shared.primary_of_vid(*vid), s);
                assert!(shared.is_primary_vid(s, *vid));
                assert!(shared.holders_of_vid(*vid).contains(&s));
            }
        }
    }
}
