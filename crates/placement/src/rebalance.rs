//! Load-aware rebalance planning.
//!
//! `plan_moves` is a pure function from observed per-server load (e.g.
//! real-I/O vertex visits since the last rebalance) and the current
//! placement map to an ordered list of shard moves. Being pure keeps it
//! unit-testable and the cluster's `rebalance()` a thin executor.

use crate::PlacementMap;

/// One planned shard migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Partition to migrate.
    pub partition: usize,
    /// Current primary (source of the snapshot).
    pub from: usize,
    /// New primary after cutover.
    pub to: usize,
}

/// Overload tolerance: a server is a donor only while its estimated load
/// exceeds the active-server mean by this factor.
const IMBALANCE_FACTOR: f64 = 1.25;

/// Plan migrations that (a) evacuate every partition primaried by a
/// decommissioned server and (b) move primaries from overloaded to
/// underloaded active servers until no server exceeds the mean load by
/// more than [`IMBALANCE_FACTOR`]. `loads[s]` is the observed load of
/// server `s`; a server's load is attributed evenly to the partitions it
/// primaries. Deterministic: ties break toward lower server/partition
/// ids. Returns an empty plan when the cluster is already balanced.
pub fn plan_moves(loads: &[u64], map: &PlacementMap) -> Vec<Move> {
    assert_eq!(loads.len(), map.n_servers, "one load sample per server");
    let active = map.active_servers();
    if active.is_empty() {
        return Vec::new();
    }
    // Estimated per-server load and primaried-partition lists, updated as
    // moves are planned.
    let mut load: Vec<f64> = loads.iter().map(|&l| l as f64).collect();
    let mut owned: Vec<Vec<usize>> = (0..map.n_servers).map(|s| map.primaried_by(s)).collect();
    let mut moves = Vec::new();

    let least_loaded_active = |load: &[f64], owned: &[Vec<usize>], exclude: usize| -> usize {
        *active
            .iter()
            .filter(|&&s| s != exclude)
            .min_by(|&&a, &&b| {
                load[a]
                    .partial_cmp(&load[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(owned[a].len().cmp(&owned[b].len()))
                    .then(a.cmp(&b))
            })
            .unwrap_or(&active[0])
    };

    // (a) Evacuate decommissioned servers completely.
    for s in 0..map.n_servers {
        if !map.is_decommissioned(s) {
            continue;
        }
        let parts = std::mem::take(&mut owned[s]);
        let share = if parts.is_empty() {
            0.0
        } else {
            load[s] / parts.len() as f64
        };
        for p in parts {
            let to = least_loaded_active(&load, &owned, s);
            moves.push(Move {
                partition: p,
                from: s,
                to,
            });
            load[s] -= share;
            load[to] += share;
            owned[to].push(p);
        }
    }

    // (b) Shed load from overloaded active servers. Bounded by the number
    // of partitions: each iteration moves one and strictly reduces the
    // donor's surplus.
    let mean: f64 = active.iter().map(|&s| load[s]).sum::<f64>() / active.len() as f64;
    if mean <= 0.0 {
        return moves;
    }
    for _ in 0..map.n_partitions() {
        let donor = match active
            .iter()
            .filter(|&&s| owned[s].len() > 1 && load[s] > mean * IMBALANCE_FACTOR)
            .max_by(|&&a, &&b| {
                load[a]
                    .partial_cmp(&load[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            }) {
            Some(&s) => s,
            None => break,
        };
        let share = load[donor] / owned[donor].len() as f64;
        let to = least_loaded_active(&load, &owned, donor);
        // Moving a share must not just swap the imbalance around
        // (equalizing exactly is fine).
        if load[to] + share > load[donor] - share {
            break;
        }
        let p = owned[donor].remove(0);
        moves.push(Move {
            partition: p,
            from: donor,
            to,
        });
        load[donor] -= share;
        load[to] += share;
        owned[to].push(p);
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cluster_plans_nothing() {
        let map = PlacementMap::initial(4, 1);
        assert!(plan_moves(&[100, 100, 100, 100], &map).is_empty());
        assert!(plan_moves(&[0, 0, 0, 0], &map).is_empty());
    }

    #[test]
    fn hot_server_sheds_a_partition() {
        // Give server 0 two partitions so it has one to shed.
        let mut map = PlacementMap::initial(4, 1);
        map.set_primary(1, 0);
        let moves = plan_moves(&[1000, 0, 10, 10], &map);
        assert!(!moves.is_empty(), "hot server must shed load");
        assert!(moves.iter().all(|m| m.from == 0));
        assert_eq!(moves[0].to, 1, "coldest server receives first");
    }

    #[test]
    fn single_partition_servers_never_donate() {
        let map = PlacementMap::initial(3, 1);
        // Wildly imbalanced, but each server primaries exactly one
        // partition — moving it would just relocate the imbalance.
        assert!(plan_moves(&[1000, 1, 1], &map).is_empty());
    }

    #[test]
    fn decommissioned_server_is_fully_evacuated() {
        let mut map = PlacementMap::initial(4, 1);
        map.decommission(2);
        let moves = plan_moves(&[10, 10, 10, 10], &map);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].partition, 2);
        assert_eq!(moves[0].from, 2);
        assert_ne!(moves[0].to, 2);
        assert!(!map.is_decommissioned(moves[0].to));
    }

    #[test]
    fn planning_is_deterministic() {
        let mut map = PlacementMap::initial(5, 2);
        map.set_primary(3, 0);
        map.decommission(4);
        let a = plan_moves(&[500, 20, 30, 10, 200], &map);
        let b = plan_moves(&[500, 20, 30, 10, 200], &map);
        assert_eq!(a, b);
    }
}
