#![warn(missing_docs)]

//! # gt-proto — the client-facing wire protocol
//!
//! A versioned, dependency-free binary protocol between `gt-client` and
//! `gt-server`. The submission payload is the *textual* GTravel grammar
//! (`crates/core/src/parse.rs`) — programs travel to the machine that
//! executes them, per the Gremlin traversal-machine model — so this crate
//! only needs to frame strings, ids, and result tables, never plans.
//!
//! ## Framing
//!
//! Every message is one frame: `[len: u32 LE][payload: len bytes]`, with
//! the payload starting at a one-byte message tag. Frames above
//! [`MAX_FRAME`] are rejected without allocation. See [`read_frame`] /
//! [`write_frame`].
//!
//! ## Version negotiation
//!
//! The first client frame must be [`ClientMsg::Hello`] carrying the
//! client's protocol version and tenant id. The server answers
//! [`ServerMsg::HelloAck`] with the negotiated version, or
//! [`ServerMsg::Unsupported`] carrying its supported range — a clean,
//! decodable refusal instead of a decode panic — and closes. Decoding is
//! total: malformed bytes give [`ProtoError`], never a panic.
//!
//! ## Requests
//!
//! Requests carry a client-chosen correlation id (`id`), echoed in every
//! response; a connection may have many requests in flight. Dropping the
//! connection implicitly cancels the tenant's in-flight travels
//! (server-side scoped cancellation).

use std::io::{Read, Write};

/// Highest protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Lowest protocol version this build still accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Upper bound on one frame's payload (16 MiB): results are vertex-id
/// tables, not graph data, so anything bigger is a malformed peer.
pub const MAX_FRAME: usize = 16 << 20;

/// Negotiate against this build's supported range: the answer for a
/// `Hello{version}` is `Ok(min(version, PROTOCOL_VERSION))` when the
/// ranges overlap, else `Err((MIN_PROTOCOL_VERSION, PROTOCOL_VERSION))`
/// to be sent as [`ServerMsg::Unsupported`].
pub fn negotiate(client_version: u16) -> Result<u16, (u16, u16)> {
    if client_version < MIN_PROTOCOL_VERSION {
        Err((MIN_PROTOCOL_VERSION, PROTOCOL_VERSION))
    } else {
        Ok(client_version.min(PROTOCOL_VERSION))
    }
}

/// Decode/IO failure at the protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the message did.
    Truncated,
    /// Unknown message or variant tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A frame's length prefix exceeds [`MAX_FRAME`].
    Oversize(usize),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated message"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtoError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            ProtoError::Oversize(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Options attached to a submission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Per-request deadline in milliseconds; the server fails the travel
    /// with a `Timeout` error once it expires. `None` = server default.
    pub deadline_ms: Option<u64>,
}

/// Progress totals as they cross the wire (mirrors the engine's
/// `ProgressSnapshot` without depending on it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireProgress {
    /// Executions created so far.
    pub created: u64,
    /// Executions terminated so far.
    pub terminated: u64,
    /// Outstanding executions per step.
    pub outstanding_by_depth: Vec<(u16, u64)>,
}

/// Why a travel failed, as it crosses the wire. Mirrors the engine's
/// typed `TravelError` plus front-door-only causes (parse errors,
/// admission throttling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// No completion within the deadline.
    Timeout {
        /// Submission attempts made.
        attempts: u32,
        /// Last progress estimate, if one was available.
        last_progress: Option<WireProgress>,
    },
    /// Coordinator died and could not be failed over.
    CoordinatorLost,
    /// The travel was cancelled (explicitly or by disconnect).
    Cancelled,
    /// A coordinator failover stalled.
    FailoverStalled,
    /// The submitted GTravel text did not parse or compile.
    Query(String),
    /// Rejected by per-tenant admission control (rate limit).
    Throttled {
        /// Suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// Internal server failure, with a human-readable cause.
    Server(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Timeout { attempts, .. } => {
                write!(f, "timed out after {attempts} attempt(s)")
            }
            WireError::CoordinatorLost => write!(f, "coordinator lost"),
            WireError::Cancelled => write!(f, "cancelled"),
            WireError::FailoverStalled => write!(f, "failover stalled"),
            WireError::Query(e) => write!(f, "query error: {e}"),
            WireError::Throttled { retry_after_ms } => {
                write!(f, "throttled; retry after {retry_after_ms} ms")
            }
            WireError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Messages from client to server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Mandatory first message: protocol version + tenant identity.
    Hello {
        /// The client's protocol version ([`PROTOCOL_VERSION`]).
        version: u16,
        /// Tenant this connection belongs to (QoS scope).
        tenant: String,
    },
    /// Submit a GTravel program (textual grammar) for execution.
    Submit {
        /// Client-chosen correlation id, echoed in responses.
        id: u64,
        /// The program, in the `parse.rs` grammar.
        gtravel: String,
        /// Deadline and other options.
        opts: SubmitOpts,
    },
    /// Ask for a progress snapshot of an in-flight travel.
    Progress {
        /// Correlation id of the travel.
        id: u64,
    },
    /// Cancel an in-flight travel.
    Cancel {
        /// Correlation id of the travel.
        id: u64,
    },
    /// Ask for the server's metrics counters (includes per-tenant QoS
    /// counters when QoS is enabled).
    Metrics,
    /// Orderly goodbye; the server retires the connection without
    /// treating it as an abnormal disconnect.
    Goodbye,
}

/// Messages from server to client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerMsg {
    /// Version accepted; `version` is what both sides now speak.
    HelloAck {
        /// Negotiated protocol version.
        version: u16,
    },
    /// The client's version is outside the supported range; the server
    /// closes after sending this.
    Unsupported {
        /// Lowest version the server accepts.
        min: u16,
        /// Highest version the server speaks.
        max: u16,
    },
    /// Progress snapshot for an in-flight travel.
    Progress {
        /// Correlation id of the travel.
        id: u64,
        /// Status-tracing totals.
        progress: WireProgress,
    },
    /// A travel completed successfully.
    Result {
        /// Correlation id of the travel.
        id: u64,
        /// Returned vertex ids per returned depth, sorted and dedup'd.
        by_depth: Vec<(u16, Vec<u64>)>,
        /// Final progress totals.
        progress: WireProgress,
        /// Wall-clock execution time in microseconds.
        elapsed_us: u64,
    },
    /// A travel failed.
    Error {
        /// Correlation id of the travel (0 for connection-level errors).
        id: u64,
        /// The typed failure.
        error: WireError,
    },
    /// Metrics counters, flattened to (name, value).
    MetricsReport {
        /// Counter name/value pairs, sorted by name.
        counters: Vec<(String, u64)>,
    },
}

// ------------------------------------------------------------------
// Binary encoding. All integers little-endian; strings and sequences
// u32-length-prefixed; Options are a 0/1 presence byte.
// ------------------------------------------------------------------

const CT_HELLO: u8 = 1;
const CT_SUBMIT: u8 = 2;
const CT_PROGRESS: u8 = 3;
const CT_CANCEL: u8 = 4;
const CT_METRICS: u8 = 5;
const CT_GOODBYE: u8 = 6;

const ST_HELLO_ACK: u8 = 1;
const ST_UNSUPPORTED: u8 = 2;
const ST_PROGRESS: u8 = 3;
const ST_RESULT: u8 = 4;
const ST_ERROR: u8 = 5;
const ST_METRICS_REPORT: u8 = 6;

const ET_TIMEOUT: u8 = 1;
const ET_COORDINATOR_LOST: u8 = 2;
const ET_CANCELLED: u8 = 3;
const ET_FAILOVER_STALLED: u8 = 4;
const ET_QUERY: u8 = 5;
const ET_THROTTLED: u8 = 6;
const ET_SERVER: u8 = 7;

/// Bounds-checked little-endian reader over a payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u16.
    pub fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// u32-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(ProtoError::Oversize(n));
        }
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    /// Error unless the whole payload was consumed.
    pub fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            Err(ProtoError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_progress(out: &mut Vec<u8>, p: &WireProgress) {
    put_u64(out, p.created);
    put_u64(out, p.terminated);
    put_u32(out, p.outstanding_by_depth.len() as u32);
    for &(d, n) in &p.outstanding_by_depth {
        put_u16(out, d);
        put_u64(out, n);
    }
}

fn read_progress(r: &mut Reader<'_>) -> Result<WireProgress, ProtoError> {
    let created = r.u64()?;
    let terminated = r.u64()?;
    let n = r.u32()? as usize;
    if n > MAX_FRAME / 10 {
        return Err(ProtoError::Oversize(n));
    }
    let mut outstanding_by_depth = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let d = r.u16()?;
        let c = r.u64()?;
        outstanding_by_depth.push((d, c));
    }
    Ok(WireProgress {
        created,
        terminated,
        outstanding_by_depth,
    })
}

fn put_error(out: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::Timeout {
            attempts,
            last_progress,
        } => {
            out.push(ET_TIMEOUT);
            put_u32(out, *attempts);
            match last_progress {
                Some(p) => {
                    out.push(1);
                    put_progress(out, p);
                }
                None => out.push(0),
            }
        }
        WireError::CoordinatorLost => out.push(ET_COORDINATOR_LOST),
        WireError::Cancelled => out.push(ET_CANCELLED),
        WireError::FailoverStalled => out.push(ET_FAILOVER_STALLED),
        WireError::Query(msg) => {
            out.push(ET_QUERY);
            put_str(out, msg);
        }
        WireError::Throttled { retry_after_ms } => {
            out.push(ET_THROTTLED);
            put_u64(out, *retry_after_ms);
        }
        WireError::Server(msg) => {
            out.push(ET_SERVER);
            put_str(out, msg);
        }
    }
}

fn read_error(r: &mut Reader<'_>) -> Result<WireError, ProtoError> {
    let tag = r.u8()?;
    match tag {
        ET_TIMEOUT => {
            let attempts = r.u32()?;
            let last_progress = match r.u8()? {
                0 => None,
                1 => Some(read_progress(r)?),
                t => return Err(ProtoError::BadTag(t)),
            };
            Ok(WireError::Timeout {
                attempts,
                last_progress,
            })
        }
        ET_COORDINATOR_LOST => Ok(WireError::CoordinatorLost),
        ET_CANCELLED => Ok(WireError::Cancelled),
        ET_FAILOVER_STALLED => Ok(WireError::FailoverStalled),
        ET_QUERY => Ok(WireError::Query(r.string()?)),
        ET_THROTTLED => Ok(WireError::Throttled {
            retry_after_ms: r.u64()?,
        }),
        ET_SERVER => Ok(WireError::Server(r.string()?)),
        other => Err(ProtoError::BadTag(other)),
    }
}

impl ClientMsg {
    /// Append this message's binary form (tag + fields) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientMsg::Hello { version, tenant } => {
                out.push(CT_HELLO);
                put_u16(out, *version);
                put_str(out, tenant);
            }
            ClientMsg::Submit { id, gtravel, opts } => {
                out.push(CT_SUBMIT);
                put_u64(out, *id);
                put_str(out, gtravel);
                match opts.deadline_ms {
                    Some(ms) => {
                        out.push(1);
                        put_u64(out, ms);
                    }
                    None => out.push(0),
                }
            }
            ClientMsg::Progress { id } => {
                out.push(CT_PROGRESS);
                put_u64(out, *id);
            }
            ClientMsg::Cancel { id } => {
                out.push(CT_CANCEL);
                put_u64(out, *id);
            }
            ClientMsg::Metrics => out.push(CT_METRICS),
            ClientMsg::Goodbye => out.push(CT_GOODBYE),
        }
    }

    /// Decode one message from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<ClientMsg, ProtoError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let msg = match tag {
            CT_HELLO => ClientMsg::Hello {
                version: r.u16()?,
                tenant: r.string()?,
            },
            CT_SUBMIT => {
                let id = r.u64()?;
                let gtravel = r.string()?;
                let deadline_ms = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    t => return Err(ProtoError::BadTag(t)),
                };
                ClientMsg::Submit {
                    id,
                    gtravel,
                    opts: SubmitOpts { deadline_ms },
                }
            }
            CT_PROGRESS => ClientMsg::Progress { id: r.u64()? },
            CT_CANCEL => ClientMsg::Cancel { id: r.u64()? },
            CT_METRICS => ClientMsg::Metrics,
            CT_GOODBYE => ClientMsg::Goodbye,
            other => return Err(ProtoError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl ServerMsg {
    /// Append this message's binary form (tag + fields) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerMsg::HelloAck { version } => {
                out.push(ST_HELLO_ACK);
                put_u16(out, *version);
            }
            ServerMsg::Unsupported { min, max } => {
                out.push(ST_UNSUPPORTED);
                put_u16(out, *min);
                put_u16(out, *max);
            }
            ServerMsg::Progress { id, progress } => {
                out.push(ST_PROGRESS);
                put_u64(out, *id);
                put_progress(out, progress);
            }
            ServerMsg::Result {
                id,
                by_depth,
                progress,
                elapsed_us,
            } => {
                out.push(ST_RESULT);
                put_u64(out, *id);
                put_u32(out, by_depth.len() as u32);
                for (d, vs) in by_depth {
                    put_u16(out, *d);
                    put_u32(out, vs.len() as u32);
                    for v in vs {
                        put_u64(out, *v);
                    }
                }
                put_progress(out, progress);
                put_u64(out, *elapsed_us);
            }
            ServerMsg::Error { id, error } => {
                out.push(ST_ERROR);
                put_u64(out, *id);
                put_error(out, error);
            }
            ServerMsg::MetricsReport { counters } => {
                out.push(ST_METRICS_REPORT);
                put_u32(out, counters.len() as u32);
                for (k, v) in counters {
                    put_str(out, k);
                    put_u64(out, *v);
                }
            }
        }
    }

    /// Decode one message from exactly `buf`.
    pub fn decode(buf: &[u8]) -> Result<ServerMsg, ProtoError> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let msg = match tag {
            ST_HELLO_ACK => ServerMsg::HelloAck { version: r.u16()? },
            ST_UNSUPPORTED => ServerMsg::Unsupported {
                min: r.u16()?,
                max: r.u16()?,
            },
            ST_PROGRESS => ServerMsg::Progress {
                id: r.u64()?,
                progress: read_progress(&mut r)?,
            },
            ST_RESULT => {
                let id = r.u64()?;
                let nd = r.u32()? as usize;
                if nd > MAX_FRAME / 6 {
                    return Err(ProtoError::Oversize(nd));
                }
                let mut by_depth = Vec::with_capacity(nd.min(1024));
                for _ in 0..nd {
                    let d = r.u16()?;
                    let nv = r.u32()? as usize;
                    if nv > MAX_FRAME / 8 {
                        return Err(ProtoError::Oversize(nv));
                    }
                    let mut vs = Vec::with_capacity(nv.min(65_536));
                    for _ in 0..nv {
                        vs.push(r.u64()?);
                    }
                    by_depth.push((d, vs));
                }
                let progress = read_progress(&mut r)?;
                let elapsed_us = r.u64()?;
                ServerMsg::Result {
                    id,
                    by_depth,
                    progress,
                    elapsed_us,
                }
            }
            ST_ERROR => ServerMsg::Error {
                id: r.u64()?,
                error: read_error(&mut r)?,
            },
            ST_METRICS_REPORT => {
                let n = r.u32()? as usize;
                if n > MAX_FRAME / 13 {
                    return Err(ProtoError::Oversize(n));
                }
                let mut counters = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let k = r.string()?;
                    let v = r.u64()?;
                    counters.push((k, v));
                }
                ServerMsg::MetricsReport { counters }
            }
            other => return Err(ProtoError::BadTag(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

// ------------------------------------------------------------------
// Frame IO.
// ------------------------------------------------------------------

/// Write `payload` as one `[len u32 LE][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            ProtoError::Oversize(payload.len()).to_string(),
        ));
    }
    // One write per frame: a separate prefix write would interact with
    // Nagle + delayed ACK on TCP (tens of ms per small-write pair).
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)?;
    w.flush()
}

/// Read one `[len u32 LE][payload]` frame. `Ok(None)` on clean EOF at a
/// frame boundary; oversized length prefixes are `InvalidData` errors
/// (the stream is then unusable).
pub fn read_frame<R: Read>(r: &mut R) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtoError::Oversize(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encode `msg` (client side) and write it as one frame.
pub fn send_client<W: Write>(w: &mut W, msg: &ClientMsg) -> std::io::Result<()> {
    let mut buf = Vec::new();
    msg.encode(&mut buf);
    write_frame(w, &buf)
}

/// Encode `msg` (server side) and write it as one frame.
pub fn send_server<W: Write>(w: &mut W, msg: &ServerMsg) -> std::io::Result<()> {
    let mut buf = Vec::new();
    msg.encode(&mut buf);
    write_frame(w, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_client(m: ClientMsg) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(ClientMsg::decode(&buf), Ok(m));
    }

    fn rt_server(m: ServerMsg) {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        assert_eq!(ServerMsg::decode(&buf), Ok(m));
    }

    #[test]
    fn client_round_trips() {
        rt_client(ClientMsg::Hello {
            version: 1,
            tenant: "acme".into(),
        });
        rt_client(ClientMsg::Submit {
            id: 7,
            gtravel: "v(1).e('knows').rtn()".into(),
            opts: SubmitOpts {
                deadline_ms: Some(250),
            },
        });
        rt_client(ClientMsg::Submit {
            id: 8,
            gtravel: "v()".into(),
            opts: SubmitOpts::default(),
        });
        rt_client(ClientMsg::Progress { id: 9 });
        rt_client(ClientMsg::Cancel { id: 10 });
        rt_client(ClientMsg::Metrics);
        rt_client(ClientMsg::Goodbye);
    }

    #[test]
    fn server_round_trips() {
        rt_server(ServerMsg::HelloAck { version: 1 });
        rt_server(ServerMsg::Unsupported { min: 1, max: 1 });
        rt_server(ServerMsg::Progress {
            id: 3,
            progress: WireProgress {
                created: 10,
                terminated: 4,
                outstanding_by_depth: vec![(0, 2), (1, 4)],
            },
        });
        rt_server(ServerMsg::Result {
            id: 4,
            by_depth: vec![(1, vec![5, 9]), (2, vec![])],
            progress: WireProgress::default(),
            elapsed_us: 1234,
        });
        for error in [
            WireError::Timeout {
                attempts: 3,
                last_progress: Some(WireProgress {
                    created: 5,
                    terminated: 5,
                    outstanding_by_depth: vec![],
                }),
            },
            WireError::Timeout {
                attempts: 1,
                last_progress: None,
            },
            WireError::CoordinatorLost,
            WireError::Cancelled,
            WireError::FailoverStalled,
            WireError::Query("bad token".into()),
            WireError::Throttled { retry_after_ms: 50 },
            WireError::Server("oops".into()),
        ] {
            rt_server(ServerMsg::Error { id: 5, error });
        }
        rt_server(ServerMsg::MetricsReport {
            counters: vec![("qos_admitted_total".into(), 12)],
        });
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert_eq!(ClientMsg::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(ClientMsg::decode(&[99]), Err(ProtoError::BadTag(99)));
        assert_eq!(
            ServerMsg::decode(&[200, 1, 2]),
            Err(ProtoError::BadTag(200))
        );
        // Truncated string length.
        assert_eq!(
            ClientMsg::decode(&[CT_HELLO, 1, 0, 255, 255, 255]),
            Err(ProtoError::Truncated)
        );
        // Trailing garbage after a complete message.
        let mut buf = Vec::new();
        ClientMsg::Metrics.encode(&mut buf);
        buf.push(0);
        assert_eq!(ClientMsg::decode(&buf), Err(ProtoError::TrailingBytes(1)));
    }

    #[test]
    fn negotiation_gates_old_and_new_clients() {
        assert_eq!(negotiate(PROTOCOL_VERSION), Ok(PROTOCOL_VERSION));
        assert_eq!(negotiate(u16::MAX), Ok(PROTOCOL_VERSION));
        if MIN_PROTOCOL_VERSION > 0 {
            assert_eq!(
                negotiate(MIN_PROTOCOL_VERSION - 1),
                Err((MIN_PROTOCOL_VERSION, PROTOCOL_VERSION))
            );
        }
    }

    #[test]
    fn frame_io_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        send_client(&mut buf, &ClientMsg::Metrics).expect("write");
        send_client(&mut buf, &ClientMsg::Goodbye).expect("write");
        let mut cur = std::io::Cursor::new(buf);
        let f1 = read_frame(&mut cur).expect("read").expect("frame");
        assert_eq!(ClientMsg::decode(&f1), Ok(ClientMsg::Metrics));
        let f2 = read_frame(&mut cur).expect("read").expect("frame");
        assert_eq!(ClientMsg::decode(&f2), Ok(ClientMsg::Goodbye));
        assert!(read_frame(&mut cur).expect("eof read").is_none());

        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut cur = std::io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cur).is_err());
    }
}
