//! Text form of the GTravel language.
//!
//! The paper presents GTravel as a chained query the user writes by hand
//! (§III); this module accepts that surface syntax as text, so traversals
//! can come from a shell, a config file, or an RPC boundary instead of
//! Rust code:
//!
//! ```text
//! v(7).e('run').ea('start_ts', RANGE, 0, 1000)
//!     .e('read').va('ftype', EQ, 'text').rtn()
//! ```
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  := source ('.' call)*
//! source := 'v' '(' [int (',' int)*] ')'
//! call   := 'e' '(' string ')'
//!         | 'va' '(' filter ')' | 'ea' '(' filter ')'
//!         | 'rtn' '(' ')'
//!         | 'as_of' '(' int ')' | 'created_after' '(' int ')'
//! filter := string ',' 'EQ' ',' value
//!         | string ',' 'IN' ',' '[' value (',' value)* ']'
//!         | string ',' 'RANGE' ',' value ',' value
//! value  := int | float | 'true' | 'false' | string
//! string := '\'' [^']* '\''
//! ```

use crate::lang::GTravel;
use gt_graph::{PropFilter, PropValue};

/// A parse failure with its byte position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was detected.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}
impl std::error::Error for ParseError {}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> Result<(), ParseError> {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn try_eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let n = rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .unwrap_or(rest.len());
        if n == 0 {
            return Err(self.err("expected an identifier"));
        }
        let id = &rest[..n];
        self.pos += n;
        Ok(id)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat('\'').map_err(|e| ParseError {
            msg: "expected a 'quoted' string".into(),
            ..e
        })?;
        let rest = &self.src[self.pos..];
        let Some(end) = rest.find('\'') else {
            return Err(self.err("unterminated string"));
        };
        let s = rest[..end].to_string();
        self.pos += end + 1;
        Ok(s)
    }

    fn number_or_bool(&mut self) -> Result<PropValue, ParseError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.starts_with("true") {
            self.pos += 4;
            return Ok(PropValue::Bool(true));
        }
        if rest.starts_with("false") {
            self.pos += 5;
            return Ok(PropValue::Bool(false));
        }
        let n = rest
            .find(|c: char| {
                !c.is_ascii_digit() && c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E'
            })
            .unwrap_or(rest.len());
        if n == 0 {
            return Err(self.err("expected a number, boolean, or 'string'"));
        }
        let tok = &rest[..n];
        self.pos += n;
        if tok.contains('.') || tok.contains('e') || tok.contains('E') {
            tok.parse::<f64>()
                .map(PropValue::float)
                .map_err(|_| self.err(format!("bad float literal {tok:?}")))
        } else {
            tok.parse::<i64>()
                .map(PropValue::Int)
                .map_err(|_| self.err(format!("bad integer literal {tok:?}")))
        }
    }

    fn value(&mut self) -> Result<PropValue, ParseError> {
        if self.peek() == Some('\'') {
            Ok(PropValue::Str(self.string()?))
        } else {
            self.number_or_bool()
        }
    }

    fn seq_arg(&mut self) -> Result<u64, ParseError> {
        match self.number_or_bool()? {
            PropValue::Int(i) if i >= 0 => Ok(i as u64),
            other => Err(self.err(format!(
                "sequence numbers must be non-negative ints, found {other}"
            ))),
        }
    }

    fn filter(&mut self) -> Result<PropFilter, ParseError> {
        let key = self.string()?;
        self.eat(',')?;
        let op_pos = self.pos;
        let op = self.ident()?.to_ascii_uppercase();
        self.eat(',')?;
        match op.as_str() {
            "EQ" => Ok(PropFilter::eq(key, self.value()?)),
            "IN" => {
                self.eat('[')?;
                let mut vals = vec![self.value()?];
                while self.try_eat(',') {
                    vals.push(self.value()?);
                }
                self.eat(']')?;
                Ok(PropFilter::is_in(key, vals))
            }
            "RANGE" => {
                let lo = self.value()?;
                self.eat(',')?;
                let hi = self.value()?;
                Ok(PropFilter::range(key, lo, hi))
            }
            other => Err(ParseError {
                at: op_pos,
                msg: format!("unknown filter type {other:?} (EQ, IN, or RANGE)"),
            }),
        }
    }
}

/// Parse the textual GTravel syntax into a query builder.
pub fn parse(src: &str) -> Result<GTravel, ParseError> {
    let mut c = Cursor::new(src);
    // Source selector.
    let head_pos = c.pos;
    let head = c.ident()?;
    if head != "v" {
        return Err(ParseError {
            at: head_pos,
            msg: format!("queries begin with v(...), found {head:?}"),
        });
    }
    c.eat('(')?;
    let mut q = if c.peek() == Some(')') {
        c.eat(')')?;
        GTravel::v_all()
    } else {
        let mut ids = Vec::new();
        loop {
            match c.number_or_bool()? {
                PropValue::Int(i) if i >= 0 => ids.push(i as u64),
                other => {
                    return Err(c.err(format!(
                        "vertex ids must be non-negative ints, found {other}"
                    )))
                }
            }
            if !c.try_eat(',') {
                break;
            }
        }
        c.eat(')')?;
        GTravel::v(ids)
    };
    // Chained calls.
    loop {
        c.skip_ws();
        if c.pos >= c.src.len() {
            break;
        }
        c.eat('.')?;
        let m_pos = c.pos;
        let method = c.ident()?;
        c.eat('(')?;
        q = match method {
            "e" => {
                let label = c.string()?;
                c.eat(')')?;
                q.e(label)
            }
            "va" => {
                let f = c.filter()?;
                c.eat(')')?;
                q.va(f)
            }
            "ea" => {
                let f = c.filter()?;
                c.eat(')')?;
                q.ea(f)
            }
            "rtn" => {
                c.eat(')')?;
                q.rtn()
            }
            "as_of" => {
                let seq = c.seq_arg()?;
                c.eat(')')?;
                q.as_of(seq)
            }
            "created_after" => {
                let seq = c.seq_arg()?;
                c.eat(')')?;
                q.created_after(seq)
            }
            other => {
                return Err(ParseError {
                    at: m_pos,
                    msg: format!("unknown method {other:?} (e, va, ea, rtn, as_of, created_after)"),
                })
            }
        };
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{LangError, Source};

    #[test]
    fn parses_the_papers_audit_query() {
        let q = parse(
            "v(7).e('run').ea('start_ts', RANGE, 0, 1000)\n\
             .e('read').va('ftype', EQ, 'text').rtn()",
        )
        .unwrap();
        let p = q.compile().unwrap();
        assert_eq!(p.depth(), 2);
        assert_eq!(p.source, Source::Ids(vec![gt_graph::VertexId(7)]));
        assert_eq!(p.steps[0].edge_label, "run");
        assert_eq!(p.steps[0].edge_filters.len(), 1);
        assert_eq!(p.steps[1].vertex_filters.len(), 1);
        assert!(p.rtn_at(2));
    }

    #[test]
    fn parses_the_papers_provenance_query() {
        let q = parse(
            "v().va('type', EQ, 'Execution').rtn()\n\
             .va('model', EQ, 'A')\n\
             .e('read')\n\
             .va('annotation', EQ, 'B')",
        )
        .unwrap();
        let p = q.compile().unwrap();
        assert_eq!(p.source, Source::All);
        assert!(p.source_rtn);
        assert_eq!(p.source_filters.len(), 2);
        assert_eq!(p.returned_depths(), vec![0]);
    }

    #[test]
    fn parses_the_table3_query() {
        let q = parse(
            "v(42).e('run').ea('ts', RANGE, 0, 99999)\
             .e('hasExecutions').e('write').e('readBy').e('write').rtn()",
        )
        .unwrap();
        let p = q.compile().unwrap();
        assert_eq!(p.depth(), 5);
        assert!(p.returns_final());
    }

    #[test]
    fn parses_in_filters_and_value_types() {
        let q =
            parse("v(1).e('x').va('grp', IN, ['a', 'b', 3, 4.5, true]).ea('w', EQ, 2.5)").unwrap();
        let p = q.compile().unwrap();
        let f = &p.steps[0].vertex_filters.0[0];
        match &f.cond {
            gt_graph::Cond::In(vals) => {
                assert_eq!(
                    vals,
                    &vec![
                        PropValue::str("a"),
                        PropValue::str("b"),
                        PropValue::Int(3),
                        PropValue::float(4.5),
                        PropValue::Bool(true)
                    ]
                );
            }
            other => panic!("expected IN, got {other:?}"),
        }
        assert_eq!(
            p.steps[0].edge_filters.0[0].cond,
            gt_graph::Cond::Eq(PropValue::float(2.5))
        );
    }

    #[test]
    fn parses_multiple_source_ids_and_negatives_rejected() {
        let q = parse("v(1, 2, 3)").unwrap();
        let p = q.compile().unwrap();
        assert_eq!(
            p.source,
            Source::Ids(vec![1u64.into(), 2u64.into(), 3u64.into()])
        );
        assert!(parse("v(-4)").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("w(1)").unwrap_err();
        assert_eq!(e.at, 0);
        let e = parse("v(1).q('x')").unwrap_err();
        assert!(e.msg.contains("unknown method"));
        let e = parse("v(1).va('k', NEAR, 1)").unwrap_err();
        assert!(e.msg.contains("unknown filter type"));
        let e = parse("v(1).e('unclosed").unwrap_err();
        assert!(e.msg.contains("unterminated"));
        let e = parse("v(1).e('x'), junk").unwrap_err();
        assert!(e.msg.contains("expected '.'"));
    }

    #[test]
    fn compile_errors_still_surface() {
        // Parses fine, but ea() before any e() is a language error.
        let q = parse("v(1).ea('k', EQ, 1)").unwrap();
        assert_eq!(q.compile(), Err(LangError::EdgeFilterBeforeEdge));
    }

    #[test]
    fn whitespace_and_case_tolerance() {
        let q = parse("  v( 1 ) . e( 'x' ) . va( 'k' , eq , 'v' ) . rtn( )  ").unwrap();
        let p = q.compile().unwrap();
        assert_eq!(p.depth(), 1);
        assert!(p.rtn_at(1));
    }

    #[test]
    fn parses_temporal_predicates() {
        let q = parse("v(1).as_of(42).e('run').created_after(7)").unwrap();
        let p = q.compile().unwrap();
        assert_eq!(p.as_of, Some(42));
        assert_eq!(p.view_seq(), Some(42));
        assert_eq!(p.steps[0].vertex_filters.len(), 1);
        assert_eq!(
            p.steps[0].vertex_filters.0[0].key,
            gt_graph::CREATED_SEQ_PROP
        );
        assert!(parse("v(1).as_of(-3)").is_err());
        assert!(parse("v(1).created_after('x')").is_err());
    }

    #[test]
    fn roundtrip_equivalence_with_builder() {
        let text = parse("v(5).e('run').ea('ts', RANGE, 10, 20).e('read').rtn()").unwrap();
        let built = GTravel::v([5u64])
            .e("run")
            .ea(PropFilter::range("ts", 10i64, 20i64))
            .e("read")
            .rtn();
        assert_eq!(text.compile().unwrap(), built.compile().unwrap());
    }
}
