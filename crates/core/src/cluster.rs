//! Cluster harness and client API.
//!
//! [`Cluster::build`] loads a property graph into `n` simulated backend
//! servers (edge-cut partitioned, each with its own persistent store) and
//! wires them to a [`gt_net::Fabric`]. The client then ships whole
//! GTravel instances to a chosen coordinator server — the paper's
//! server-side traversal (§IV-A): "the client sends the GTravel instance
//! to one selected backend server to start a graph traversal … the
//! traversal is executed among backend servers and returns the status and
//! results to the coordinator."
//!
//! [`Cluster::submit_opts`] implements the paper's v1 failure handling:
//! if no completion arrives within the timeout (a silent failure — e.g. a
//! crashed or isolated server), the traversal is aborted and restarted
//! from scratch (§IV-C: "this failure will simply cause the traversal to
//! be restarted").

use crate::coordinator::LedgerEvent;
use crate::engine::TransportKind;
use crate::engine::{EngineConfig, EngineKind};
use crate::lang::{GTravel, LangError, Plan};
use crate::lockorder::OrderedMutex;
use crate::message::{Msg, ProgressSnapshot, TravelOutcome};
use crate::metrics::{MetricsSnapshot, ServerMetrics, TravelMetrics};
use crate::server::{spawn, DetectionConfig, ServerArgs, ServerHandle};
use crate::TravelId;
use gt_graph::storage::load_replicated;
use gt_graph::{EdgeCutPartitioner, GraphPartition, InMemoryGraph, VertexId};
use gt_kvstore::wal::replay_blobs;
use gt_kvstore::{IoProfile, Store, StoreConfig};
use gt_net::{Fabric, NetConfig, NetStats, RecvError};
use gt_placement::rebalance::{plan_moves, Move};
use gt_placement::{PlacementMap, SharedPlacement};
use gt_transport::{Conduit, MeshConfig, SocketAddrSpec, SocketMesh};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base pause between timeout-driven resubmissions in
/// [`Cluster::submit_opts`] (doubled per attempt, capped).
const RESUBMIT_BACKOFF_BASE: Duration = Duration::from_millis(10);
/// Cap on the resubmission backoff.
const RESUBMIT_BACKOFF_CAP: Duration = Duration::from_millis(500);
// (The granularity of `Cluster::wait`'s receive loop is configurable:
// `EngineConfig::wait_poll`, default 50 ms, floor 1 ms. Between slices
// the client checks the travel's coordinator for a crash so an orphaned
// travel is failed over instead of silently running out the clock.)
/// Cap on retained routing entries / cancelled ids (tickets whose
/// `wait()` never happens).
const MAX_ROUTES: usize = 4096;
/// File name of a server's durable travel-ledger event log, next to its
/// store (only clusters that own their storage get one).
const LEDGER_FILE: &str = "travel-ledger.log";
/// How long a failover/takeover orchestration waits for the successor's
/// [`Msg::RecoverDone`] before declaring the handoff stalled.
const RECOVER_DEADLINE: Duration = Duration::from_secs(3);
/// While waiting for [`Msg::RecoverDone`], re-send the recover/handoff
/// control messages at this period (covers a successor that was isolated
/// when the first round arrived).
const RECOVER_RENUDGE: Duration = Duration::from_millis(500);
/// Mailbox stash key for [`Msg::Suspect`] reports, in a range no travel,
/// request, or placement-version key reaches (see [`ClusterState::msg_key`]).
const SUSPECT_KEY: u64 = 3u64 << 62;
/// The healer thread's receive slice: how long it blocks on the shared
/// client inbox per iteration before re-checking its stop flag and the
/// under-replication scan deadline.
const HEALER_SLICE: Duration = Duration::from_millis(10);
/// How often the (otherwise idle) healer scans the placement map for
/// under-replicated partitions and restores missing copies.
const REREPLICATE_SCAN_EVERY: Duration = Duration::from_millis(25);

/// Suspicions re-reported within this window of a heal are answered
/// `confirmed` (stale, not false): the revived server's first heartbeat
/// clears them on the reporter.
const HEAL_STALE_WINDOW: Duration = Duration::from_secs(1);

/// Storage-side configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Directory holding one store per server (`server-<i>/`).
    pub dir: PathBuf,
    /// Number of backend servers.
    pub n_servers: usize,
    /// Storage I/O latency model (see [`IoProfile`]).
    pub io: IoProfile,
    /// Shared block-cache capacity per server, in runs. `0` keeps every
    /// segment read cold.
    pub block_cache_runs: usize,
    /// Flush + compact + drop caches after loading, so the first traversal
    /// runs from a cold start (§VII's experimental condition).
    pub seal_cold: bool,
    /// Memtable budget per namespace.
    pub memtable_bytes: usize,
    /// Replication factor: how many servers hold each partition (one
    /// primary plus `replication - 1` replicas). Clamped to
    /// `1..=n_servers`. At 1 (the default) the cluster behaves exactly
    /// like the unreplicated seed.
    pub replication: usize,
    /// Failure-detector tuning. `None` (the default) keeps the whole
    /// self-healing layer dormant: no heartbeats, no healer thread, every
    /// [`crate::metrics::MetricsSnapshot::self_heal_counters`] entry
    /// stays zero.
    pub detection: Option<DetectionConfig>,
}

impl ClusterConfig {
    /// Sensible defaults for tests: free I/O, warm caches allowed.
    pub fn new(dir: impl Into<PathBuf>, n_servers: usize) -> Self {
        ClusterConfig {
            dir: dir.into(),
            n_servers,
            io: IoProfile::free(),
            block_cache_runs: 4096,
            seal_cold: false,
            memtable_bytes: 8 << 20,
            replication: 1,
            detection: None,
        }
    }

    /// Builder-style: storage I/O model.
    pub fn io(mut self, io: IoProfile) -> Self {
        self.io = io;
        self
    }

    /// Builder-style: block cache capacity (runs).
    pub fn block_cache_runs(mut self, runs: usize) -> Self {
        self.block_cache_runs = runs;
        self
    }

    /// Builder-style: cold-start sealing after load.
    pub fn seal_cold(mut self, on: bool) -> Self {
        self.seal_cold = on;
        self
    }

    /// Builder-style: replication factor (see [`ClusterConfig::replication`]).
    pub fn replication(mut self, rf: usize) -> Self {
        self.replication = rf;
        self
    }

    /// Builder-style: turn on self-healing (failure detection, automatic
    /// promotion, background re-replication) with default detector tuning.
    pub fn self_healing(self) -> Self {
        self.detection(DetectionConfig::default())
    }

    /// Builder-style: self-healing with explicit detector tuning.
    pub fn detection(mut self, cfg: DetectionConfig) -> Self {
        self.detection = Some(cfg);
        self
    }
}

/// Whether a cluster's state survives server crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityLevel {
    /// The cluster owns its storage: WAL-backed stores reopen on restart
    /// and coordinator travel-ledgers are durable (and replicated when
    /// the replication factor is ≥ 2).
    Durable,
    /// Built over borrowed partitions ([`Cluster::from_partitions`]): no
    /// store reopening, no durable travel ledgers, no ledger
    /// replication. A crash loses that server's shard for good; recovery
    /// degrades to timeout-and-resubmit.
    Ephemeral,
}

/// Why a traversal failed, as observed by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TravelError {
    /// No completion arrived within the timeout (after every restart
    /// attempt). Carries the number of attempts made and the
    /// coordinator's last progress estimate when one could still be
    /// fetched — a timeout is no longer silent about *where* the
    /// traversal got stuck.
    Timeout {
        /// Submission attempts made (1 = no restarts).
        attempts: u32,
        /// Best-effort progress snapshot taken just before giving up.
        last_progress: Option<ProgressSnapshot>,
    },
    /// The coordinator hosting the travel died and could not be failed
    /// over (reliability disabled, or every candidate successor down).
    CoordinatorLost {
        /// The orphaned travel.
        travel: TravelId,
    },
    /// The travel was cancelled via [`Cluster::cancel`].
    Cancelled {
        /// The cancelled travel.
        travel: TravelId,
    },
    /// A coordinator failover was started but the successor never
    /// confirmed recovery within the deadline (e.g. it is isolated).
    /// Surfaced instead of letting the client's whole-travel timeout run
    /// out on a handoff that is going nowhere.
    FailoverStalled {
        /// The travel whose recovery stalled.
        travel: TravelId,
    },
}

impl std::fmt::Display for TravelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TravelError::Timeout {
                attempts,
                last_progress,
            } => {
                write!(f, "traversal timed out after {attempts} attempt(s)")?;
                if let Some(p) = last_progress {
                    write!(
                        f,
                        " (last progress: {} created / {} terminated)",
                        p.created, p.terminated
                    )?;
                }
                Ok(())
            }
            TravelError::CoordinatorLost { travel } => {
                write!(f, "travel {travel}: coordinator lost and not recoverable")
            }
            TravelError::Cancelled { travel } => write!(f, "travel {travel} was cancelled"),
            TravelError::FailoverStalled { travel } => {
                write!(
                    f,
                    "travel {travel}: failover successor never confirmed recovery"
                )
            }
        }
    }
}

/// Errors surfaced by the client API.
#[derive(Debug)]
pub enum ClusterError {
    /// The GTravel chain failed to compile.
    Lang(LangError),
    /// Storage failure while building the cluster.
    Storage(gt_kvstore::Error),
    /// The traversal failed (timeout, lost coordinator, cancellation).
    Travel(TravelError),
    /// The fabric is down (cluster shut down concurrently).
    Disconnected,
    /// A crash/restart operation could not be carried out (server not
    /// crashed, already restarted, storage reopen failed, …).
    Recovery(String),
}

impl ClusterError {
    fn slice_timeout() -> Self {
        ClusterError::Travel(TravelError::Timeout {
            attempts: 1,
            last_progress: None,
        })
    }

    /// True when this is a travel timeout (any attempt count).
    pub fn is_timeout(&self) -> bool {
        matches!(self, ClusterError::Travel(TravelError::Timeout { .. }))
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Lang(e) => write!(f, "query error: {e}"),
            ClusterError::Storage(e) => write!(f, "storage error: {e}"),
            ClusterError::Travel(e) => write!(f, "{e}"),
            ClusterError::Disconnected => write!(f, "cluster disconnected"),
            ClusterError::Recovery(why) => write!(f, "recovery error: {why}"),
        }
    }
}
impl std::error::Error for ClusterError {}

impl From<LangError> for ClusterError {
    fn from(e: LangError) -> Self {
        ClusterError::Lang(e)
    }
}
impl From<gt_kvstore::Error> for ClusterError {
    fn from(e: gt_kvstore::Error) -> Self {
        ClusterError::Storage(e)
    }
}

/// Result of one completed traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TravelResult {
    /// Returned vertices per returned depth, sorted and dedup'd.
    pub by_depth: BTreeMap<u16, Vec<VertexId>>,
    /// Union of all returned depths, sorted and dedup'd.
    pub vertices: Vec<VertexId>,
    /// Wall-clock time from submission to completion (including restarts).
    pub elapsed: Duration,
    /// Final status-tracing totals.
    pub progress: ProgressSnapshot,
    /// How many times the traversal was restarted after a timeout.
    pub restarts: u32,
    /// How many coordinator failovers the traversal survived (its ledger
    /// was re-hosted on a successor that many times).
    pub failovers: u32,
    /// Time spent in the client-side admission queue before the travel
    /// was dispatched (zero when admitted immediately).
    pub admit_wait: Duration,
}

impl TravelResult {
    pub(crate) fn from_outcome(outcome: TravelOutcome, elapsed: Duration, restarts: u32) -> Self {
        let by_depth: BTreeMap<u16, Vec<VertexId>> = outcome.by_depth.into_iter().collect();
        let mut all: Vec<VertexId> = by_depth.values().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        TravelResult {
            by_depth,
            vertices: all,
            elapsed,
            progress: outcome.progress,
            restarts,
            failovers: 0,
            admit_wait: Duration::ZERO,
        }
    }
}

/// An in-flight traversal started with [`Cluster::start`].
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    travel: TravelId,
    coordinator: usize,
    started: Instant,
    restarts: u32,
}

impl Ticket {
    /// The travel id this ticket tracks.
    pub fn travel(&self) -> TravelId {
        self.travel
    }
}

/// A submission parked in the client-side admission queue.
struct Pending {
    travel: TravelId,
    coordinator: usize,
    plan: Arc<Plan>,
}

/// Client-side routing state of one dispatched travel: which server
/// currently hosts its coordinator role, under which travel-epoch, and
/// the plan (needed to seed a successor on failover).
struct Route {
    coordinator: usize,
    /// Incarnation epoch of the hosting server when (re-)routed. A
    /// mismatch later means the host crashed and restarted — the hosted
    /// ledger died with it even though the server looks alive again.
    coord_epoch: u64,
    /// Travel-epoch the travel currently runs under (bumped per failover).
    tepoch: u64,
    failovers: u32,
    plan: Arc<Plan>,
}

/// Cap on completed-travel admission timestamps retained for tickets
/// whose `wait()` never happens.
const MAX_ADMIT_TIMES: usize = 4096;

/// Client-side admission control (engine knob `max_concurrent_travels`):
/// travels beyond the limit queue FIFO and are dispatched as slots free.
#[derive(Default)]
struct Admission {
    in_flight: BTreeSet<TravelId>,
    pending: VecDeque<Pending>,
    /// travel → (submitted, admitted). `admitted` is `None` while the
    /// travel waits in `pending`.
    times: BTreeMap<TravelId, (Instant, Option<Instant>)>,
}

/// A socket path no other cluster in this process (or a concurrent test
/// process) is using: pid plus a process-wide counter.
fn unique_uds_path() -> PathBuf {
    static CTR: AtomicU64 = AtomicU64::new(0);
    let n = CTR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gt-{}-{n}.sock", std::process::id()))
}

/// The cluster's hold on whatever moves its messages: the simulated
/// in-process fabric, or a socket mesh whose frames cross real TCP/UDS
/// connections through the binary wire codec.
enum NetHandle {
    Sim(Fabric<Msg>),
    Sock(SocketMesh<Msg>),
}

impl NetHandle {
    /// Traffic counters (byte/message matrix, drops, handoffs).
    fn stats(&self) -> Arc<NetStats> {
        match self {
            NetHandle::Sim(f) => f.stats(),
            NetHandle::Sock(m) => m.stats(),
        }
    }

    /// Cut (or heal) one endpoint's links. Only the simulated fabric can
    /// do this; a socket mesh has no partition injector, so the call is
    /// a no-op there (tests that isolate run on the in-process fabric).
    fn isolate(&self, id: usize, isolated: bool) {
        match self {
            NetHandle::Sim(f) => f.isolate(id, isolated),
            NetHandle::Sock(_) => {}
        }
    }

    /// Tear down socket threads. The simulated fabric needs no shutdown
    /// (endpoints close when dropped).
    fn close(&self) {
        if let NetHandle::Sock(m) = self {
            m.close();
        }
    }
}

/// One backend server's fixed cluster-side state. The running threads
/// live in `handle`; everything else survives a crash so
/// [`Cluster::restart_server`] can respawn the server at the same fabric
/// address with the same instrumentation and (when the cluster owns the
/// storage) a store reopened from the same directory — replaying its WAL.
struct ServerSlot {
    /// The server's transport endpoint (fabric or socket mesh).
    /// Endpoints are handles onto a shared inbox, so keeping a clone here
    /// lets a restarted incarnation keep receiving at the old address.
    endpoint: Conduit<Msg>,
    /// Instrumentation, shared across incarnations (crash/recovery
    /// counts accumulate).
    metrics: Arc<ServerMetrics>,
    /// Current shard. Replaced on restart when `store_cfg` is known
    /// (store reopened → WAL replay); reused as-is otherwise.
    partition: OrderedMutex<Arc<GraphPartition>>,
    /// Running incarnation, `None` transiently during restart.
    handle: OrderedMutex<Option<ServerHandle>>,
    /// Incarnation counter: 0 at first boot, +1 per restart.
    epoch: AtomicU64,
    /// How to reopen this server's store (only known when the cluster
    /// built the storage itself via [`Cluster::build`]).
    store_cfg: Option<StoreConfig>,
    /// Where this server persists its durable travel-ledger stream
    /// (coordinator role). `None` for store-less clusters — failover then
    /// recovers purely from re-announced journals.
    ledger_path: Option<PathBuf>,
    /// This server's view of the placement map. Distinct from the
    /// client's copy: servers learn of changes via epoch-fenced
    /// [`Msg::PlacementUpdate`] broadcasts, never by sharing memory with
    /// the orchestrator.
    placement: Arc<SharedPlacement>,
}

/// A running simulated cluster plus its client endpoint.
///
/// `Cluster` is a thin owner around the shared [`ClusterState`]: with
/// self-healing on ([`ClusterConfig::self_healing`]) a background healer
/// thread holds the second reference, awaiting the servers' suspicion
/// reports and restoring replication — every client-facing method lives
/// on [`ClusterState`] and is reachable here through `Deref`.
pub struct Cluster {
    inner: Arc<ClusterState>,
    /// The healer thread (self-healing clusters only).
    healer: Option<std::thread::JoinHandle<()>>,
    /// Tells the healer to exit at its next receive slice.
    heal_stop: Arc<AtomicBool>,
}

impl std::ops::Deref for Cluster {
    type Target = ClusterState;
    fn deref(&self) -> &ClusterState {
        &self.inner
    }
}

/// The shared body of a running cluster (see [`Cluster`]).
pub struct ClusterState {
    slots: Vec<ServerSlot>,
    fabric: NetHandle,
    client: Conduit<Msg>,
    partitioner: EdgeCutPartitioner,
    engine: EngineConfig,
    travel_ctr: AtomicU64,
    /// Messages received while waiting for something else, with their
    /// receive times (so a stashed completion's latency is not inflated
    /// by however long the client took to come back and `wait`).
    mailbox: OrderedMutex<VecDeque<(TravelId, Msg, Instant)>>,
    admission: OrderedMutex<Admission>,
    /// Dispatched travels' coordinator routing (failover re-homing).
    routes: OrderedMutex<BTreeMap<TravelId, Route>>,
    /// Travels cancelled via [`Cluster::cancel`]; a later `wait` reports
    /// [`TravelError::Cancelled`] instead of timing out.
    cancelled: OrderedMutex<BTreeSet<TravelId>>,
    /// Serializes failover orchestration across concurrent waiters.
    failover_lock: OrderedMutex<()>,
    /// The client's (authoritative) placement map; server copies trail it
    /// by one [`Msg::PlacementUpdate`] round-trip.
    placement: Arc<SharedPlacement>,
    /// Effective replication factor (clamped at build time).
    replication: usize,
    /// Whether this cluster owns durable storage.
    durability: DurabilityLevel,
    /// Failure-detector tuning handed to every server incarnation.
    detection: Option<DetectionConfig>,
    /// Highest acknowledged ingest write-sequence per primary server: the
    /// read-your-replication barrier attached to replica-routed point
    /// queries. Lock-free — read on every `get_vertex`.
    acked_w: Vec<AtomicU64>,
    /// Snapshot seq pinned per in-flight travel (snapshot isolation
    /// only). Pins are taken on every server's store at dispatch and
    /// released when the travel's admission slot frees, so compaction
    /// never drops a version a live travel can still read.
    pinned: OrderedMutex<BTreeMap<TravelId, u64>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("n_servers", &self.inner.slots.len())
            .field("engine", &self.inner.engine.kind)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Build a cluster: open one store per server, load the edge-cut
    /// partitioned graph, and spawn the server threads.
    pub fn build(
        graph: &InMemoryGraph,
        ccfg: ClusterConfig,
        ecfg: EngineConfig,
    ) -> Result<Cluster, ClusterError> {
        let partitioner = EdgeCutPartitioner::new(ccfg.n_servers);
        let map = PlacementMap::initial(ccfg.n_servers, ccfg.replication);
        let mut partitions = Vec::with_capacity(ccfg.n_servers);
        let mut store_cfgs = Vec::with_capacity(ccfg.n_servers);
        // One cluster-wide sequence clock: stamps from every server's
        // store live on a single logical timeline, so a travel's snapshot
        // is one number rather than a per-server vector.
        let version_clock = ecfg.snapshot_isolation.then(|| Arc::new(AtomicU64::new(0)));
        for s in 0..ccfg.n_servers {
            let scfg = StoreConfig {
                dir: ccfg.dir.join(format!("server-{s}")),
                memtable_bytes: ccfg.memtable_bytes,
                bloom_bits_per_key: 10,
                block_cache_runs: ccfg.block_cache_runs,
                io: ccfg.io,
                sync_wal: false,
                auto_compact_segments: 0,
                version_clock: version_clock.clone(),
            };
            let store = Arc::new(Store::open(scfg.clone())?);
            partitions.push(GraphPartition::open(store)?);
            store_cfgs.push(Some(scfg));
        }
        // Replicated load: server `s` gets every vertex/edge whose
        // partition it holds under the initial map. At replication factor
        // 1 this is byte-identical to the seed's `load_partitioned`.
        load_replicated(graph, &partitions, |s, vid| map.holds(s, vid))?;
        if ccfg.seal_cold {
            for p in &partitions {
                p.seal_cold()?;
            }
        }
        Self::assemble(
            partitions.into_iter().map(Arc::new).collect(),
            partitioner,
            ecfg,
            store_cfgs,
            map,
            ccfg.detection,
        )
    }

    /// Spawn servers over already-loaded partitions (used to rebuild a
    /// cluster with a different engine without re-ingesting the graph —
    /// the benchmark harness shares one loaded partition set across every
    /// engine configuration).
    /// Such a cluster is [`DurabilityLevel::Ephemeral`]: it owns no
    /// storage, so crashed servers cannot reopen a store, no durable
    /// travel ledgers exist, and nothing is replicated. Check
    /// [`Cluster::durability_warning`] before relying on crash recovery.
    pub fn from_partitions(
        partitions: Vec<Arc<GraphPartition>>,
        partitioner: EdgeCutPartitioner,
        ecfg: EngineConfig,
    ) -> Result<Cluster, ClusterError> {
        let n = partitions.len();
        let map = PlacementMap::initial(n, 1);
        Self::assemble(partitions, partitioner, ecfg, vec![None; n], map, None)
    }

    /// Shared constructor: wire a chaos-aware fabric, spawn epoch-0
    /// servers (arming any scripted crash points from the chaos plan),
    /// and record each server's restartable state in a [`ServerSlot`].
    fn assemble(
        partitions: Vec<Arc<GraphPartition>>,
        partitioner: EdgeCutPartitioner,
        ecfg: EngineConfig,
        store_cfgs: Vec<Option<StoreConfig>>,
        map: PlacementMap,
        detection: Option<DetectionConfig>,
    ) -> Result<Cluster, ClusterError> {
        let n = partitions.len();
        let replication = map.replicas_of(0).len() + 1;
        let durability = if store_cfgs.iter().any(|c| c.is_some()) {
            DurabilityLevel::Durable
        } else {
            DurabilityLevel::Ephemeral
        };
        let (fabric, mut endpoints) = match ecfg.transport {
            TransportKind::InProc => {
                let (fabric, eps) = Fabric::with_chaos(n + 1, ecfg.net, ecfg.chaos.net_chaos(n));
                (
                    NetHandle::Sim(fabric),
                    eps.into_iter().map(Conduit::Fabric).collect::<Vec<_>>(),
                )
            }
            kind @ (TransportKind::Tcp | TransportKind::Uds) => {
                // Chaos injection (loss/dup/reorder schedules, scripted
                // crash points keyed to fabric delivery) lives in the
                // simulated fabric; there is no injector on a real socket.
                if !ecfg.chaos.is_none() {
                    return Err(ClusterError::Recovery(
                        "chaos plans require the in-process transport".into(),
                    ));
                }
                let addr = match kind {
                    TransportKind::Tcp => SocketAddrSpec::Tcp("127.0.0.1:0".into()),
                    _ => SocketAddrSpec::Uds(unique_uds_path()),
                };
                let (mesh, eps) = SocketMesh::start(MeshConfig::single_process(n + 1, addr))
                    .map_err(|e| ClusterError::Recovery(format!("socket transport: {e}")))?;
                (
                    NetHandle::Sock(mesh),
                    eps.into_iter().map(Conduit::Socket).collect::<Vec<_>>(),
                )
            }
        };
        let client = endpoints
            .pop()
            .ok_or_else(|| ClusterError::Recovery("fabric returned no client endpoint".into()))?;
        let mut slots = Vec::with_capacity(n);
        for (id, ((partition, endpoint), store_cfg)) in partitions
            .into_iter()
            .zip(endpoints)
            .zip(store_cfgs)
            .enumerate()
        {
            let ledger_path = store_cfg.as_ref().map(|c| c.dir.join(LEDGER_FILE));
            let placement = Arc::new(SharedPlacement::new(map.clone()));
            let handle = spawn(ServerArgs {
                id,
                n_servers: n,
                partition: partition.clone(),
                endpoint: endpoint.clone(),
                engine: ecfg.clone(),
                epoch: 0,
                metrics: None,
                crash_after: ecfg.chaos.crash_for(id),
                ledger_path: ledger_path.clone(),
                placement: placement.clone(),
                replication,
                detection: detection.clone(),
            });
            slots.push(ServerSlot {
                endpoint,
                metrics: handle.metrics.clone(),
                partition: OrderedMutex::new(7, "partition", partition),
                handle: OrderedMutex::new(6, "handle", Some(handle)),
                epoch: AtomicU64::new(0),
                store_cfg,
                ledger_path,
                placement,
            });
        }
        let self_heal = detection.is_some();
        let inner = Arc::new(ClusterState {
            slots,
            fabric,
            client,
            partitioner,
            engine: ecfg,
            travel_ctr: AtomicU64::new(1),
            placement: Arc::new(SharedPlacement::new(map)),
            replication,
            durability,
            detection,
            acked_w: (0..n).map(|_| AtomicU64::new(0)).collect(),
            // Client-side lock-order ranks (see `lockorder`): the failover
            // path holds `failover_lock` while touching routes and slots,
            // so it sits lowest; slot locks (`handle`, `partition`) rank
            // above every Cluster-level lock they nest under.
            mailbox: OrderedMutex::new(4, "mailbox", VecDeque::new()),
            admission: OrderedMutex::new(2, "admission", Admission::default()),
            routes: OrderedMutex::new(3, "routes", BTreeMap::new()),
            cancelled: OrderedMutex::new(5, "cancelled", BTreeSet::new()),
            failover_lock: OrderedMutex::new(1, "failover_lock", ()),
            // Rank 8: taken after slot locks (pin/unpin walk the stores),
            // never while any lower-ranked Cluster lock must follow.
            pinned: OrderedMutex::new(8, "pinned", BTreeMap::new()),
        });
        let heal_stop = Arc::new(AtomicBool::new(false));
        let healer = if self_heal {
            let state = inner.clone();
            let stop = heal_stop.clone();
            Some(
                std::thread::Builder::new()
                    .name("gt-healer".into())
                    .spawn(move || healer_loop(&state, &stop))
                    .map_err(|e| ClusterError::Recovery(format!("spawn healer: {e}")))?,
            )
        } else {
            None
        };
        Ok(Cluster {
            inner,
            healer,
            heal_stop,
        })
    }

    /// A shareable handle onto the cluster's client API — what a
    /// [`crate::frontdoor::FrontDoor`] serves in single-process
    /// deployments. The cluster stays owned here; `shutdown` works as
    /// usual once the front door has stopped.
    pub fn handle(&self) -> Arc<ClusterState> {
        self.inner.clone()
    }

    /// Stop every server and join their threads (healer first, so it
    /// cannot race the shutdown with a restart). Crashed-and-unrestarted
    /// servers have no threads left; their handles join immediately.
    pub fn shutdown(self) {
        self.heal_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.healer {
            // gt-lint: allow(panic, "shutdown path: a panicked healer must surface, not vanish")
            h.join().expect("healer panicked");
        }
        self.inner.shutdown_servers();
        self.inner.fabric.close();
    }
}

impl Drop for ClusterState {
    fn drop(&mut self) {
        // Last reference gone (covers clusters dropped without an
        // explicit `shutdown`): stop any socket-transport threads so the
        // process does not accumulate writer/reader threads per test.
        self.fabric.close();
    }
}

impl ClusterState {
    /// Whether server `id` has executed a crash (scripted via
    /// [`crate::faults::CrashPoint`] or injected with
    /// [`Cluster::crash_server`]) and not yet been restarted.
    pub fn server_crashed(&self, id: usize) -> bool {
        self.slots[id]
            .handle
            .lock()
            .as_ref()
            .map(|h| h.crashed.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Inject a crash into server `id` and wait (≤ 5 s) for its threads
    /// to die. The server stops mid-whatever-it-was-doing: queued work,
    /// caches, token registries and relay streams are all lost; only the
    /// on-disk store (when the cluster owns one) and the fabric address
    /// survive for [`Cluster::restart_server`].
    pub fn crash_server(&self, id: usize) -> Result<(), ClusterError> {
        self.client
            .send(id, Msg::Crash)
            .map_err(|_| ClusterError::Disconnected)?;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if self.server_crashed(id) {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        Err(ClusterError::Recovery(format!(
            "server {id} did not crash within 5s"
        )))
    }

    /// Restart a crashed server: join the dead incarnation's threads,
    /// reopen its store from the same directory when the cluster owns the
    /// storage (replaying the WAL, so every acked ingest survives), drop
    /// whatever stale traffic accumulated in its inbox while it was down,
    /// and respawn it one epoch higher. The epoch is stamped on the new
    /// incarnation's relays so peers fence off any pre-crash messages
    /// still in flight.
    pub fn restart_server(&self, id: usize) -> Result<(), ClusterError> {
        let slot = &self.slots[id];
        let mut handle = slot.handle.lock();
        let old = match handle.take() {
            Some(h) => h,
            None => {
                return Err(ClusterError::Recovery(format!(
                    "server {id} is already mid-restart"
                )))
            }
        };
        if !old.crashed.load(Ordering::SeqCst) {
            let still_running = old;
            *handle = Some(still_running);
            return Err(ClusterError::Recovery(format!(
                "server {id} has not crashed"
            )));
        }
        // Threads have observed the crash; join so every Arc they hold
        // (store, partition, queue) is released before we reopen storage.
        old.join();
        if let Some(scfg) = &slot.store_cfg {
            let mut part = slot.partition.lock();
            let store = Arc::new(
                Store::open(scfg.clone())
                    .map_err(|e| ClusterError::Recovery(format!("store reopen: {e}")))?,
            );
            *part = Arc::new(
                GraphPartition::open(store)
                    .map_err(|e| ClusterError::Recovery(format!("partition reopen: {e}")))?,
            );
            // The reopened store shares the cluster clock but starts with
            // an empty pin registry; re-pin every live travel's snapshot
            // so compaction on the new incarnation still defers.
            for view in self.pinned.lock().values() {
                part.store().pin_view(*view);
            }
        }
        // Everything delivered while the server was dead is from its
        // previous life; drop it (peers retransmit what still matters).
        while slot.endpoint.try_recv().is_some() {}
        // The incarnation's placement view may be stale (updates broadcast
        // while it was down were lost); seed it from the client's
        // authoritative copy before the new threads start routing.
        slot.placement.install(self.placement.snapshot());
        let epoch = slot.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        slot.metrics.recoveries.fetch_add(1, Ordering::Relaxed);
        *handle = Some(spawn(ServerArgs {
            id,
            n_servers: self.slots.len(),
            partition: slot.partition.lock().clone(),
            endpoint: slot.endpoint.clone(),
            engine: self.engine.clone(),
            epoch,
            metrics: Some(slot.metrics.clone()),
            crash_after: None,
            ledger_path: slot.ledger_path.clone(),
            placement: slot.placement.clone(),
            replication: self.replication,
            detection: self.detection.clone(),
        }));
        Ok(())
    }

    /// Number of backend servers.
    pub fn n_servers(&self) -> usize {
        self.slots.len()
    }

    /// The engine this cluster runs.
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind
    }

    /// The *initial* hash partitioner. Only valid for inspecting vertex
    /// placement on a static cluster — after a [`Cluster::migrate`],
    /// [`Cluster::promote`] or [`Cluster::rebalance`] the authoritative
    /// routing lives in [`Cluster::placement`].
    pub fn partitioner(&self) -> EdgeCutPartitioner {
        self.partitioner
    }

    /// Begin a traversal without waiting for it.
    pub fn start(&self, q: &GTravel) -> Result<Ticket, ClusterError> {
        self.start_plan(Arc::new(q.compile()?))
    }

    /// Begin a traversal from an already-compiled plan (the front door's
    /// path: it stamps QoS metadata onto the plan before dispatch).
    pub fn start_plan(&self, plan: Arc<Plan>) -> Result<Ticket, ClusterError> {
        let travel = self.travel_ctr.fetch_add(1, Ordering::Relaxed);
        // Deterministic ring assignment, skipping decommissioned servers
        // (they keep serving reads while draining but host no new
        // coordinator roles).
        let n = self.slots.len();
        let base = (travel as usize) % n;
        let coordinator = (0..n)
            .map(|k| (base + k) % n)
            .find(|&c| !self.placement.is_decommissioned(c))
            .unwrap_or(base);
        let limit = self.engine.max_concurrent_travels;
        let now = Instant::now();
        let admit_now = {
            let mut adm = self.admission.lock();
            adm.times.insert(travel, (now, None));
            while adm.times.len() > MAX_ADMIT_TIMES {
                adm.times.pop_first();
            }
            if limit == 0 || adm.in_flight.len() < limit {
                adm.in_flight.insert(travel);
                if let Some(t) = adm.times.get_mut(&travel) {
                    t.1 = Some(now);
                }
                true
            } else {
                adm.pending.push_back(Pending {
                    travel,
                    coordinator,
                    plan: plan.clone(),
                });
                false
            }
        };
        if admit_now {
            self.dispatch_submit(travel, coordinator, plan)?;
        }
        Ok(Ticket {
            travel,
            coordinator,
            started: now,
            restarts: 0,
        })
    }

    /// With snapshot isolation on: freeze the travel's read view at the
    /// current cluster-wide sequence and pin it on every server's store.
    /// The stamp lives in the plan itself, and the plan rides every
    /// coordinator message (Submit, SyncStart, CoordRecover, handoff
    /// re-drive), so a failed-over or migrated travel re-reads the same
    /// snapshot with no extra message plumbing. Idempotent per travel —
    /// a re-dispatch after failover finds the stamp already present.
    fn freeze_snapshot(&self, travel: TravelId, plan: Arc<Plan>) -> Arc<Plan> {
        if !self.engine.snapshot_isolation {
            return plan;
        }
        let plan = if plan.snapshot.is_none() {
            let seq = self.slots[0].partition.lock().store().current_seq();
            let mut p = (*plan).clone();
            p.snapshot = Some(seq);
            Arc::new(p)
        } else {
            plan
        };
        if let Some(view) = plan.view_seq() {
            let parts: Vec<_> = self
                .slots
                .iter()
                .map(|s| s.partition.lock().clone())
                .collect();
            let mut pinned = self.pinned.lock();
            if let std::collections::btree_map::Entry::Vacant(e) = pinned.entry(travel) {
                for p in &parts {
                    p.store().pin_view(view);
                }
                e.insert(view);
            }
        }
        plan
    }

    /// Release a travel's snapshot pins (no-op for unpinned travels).
    /// Stores reopened since the pin ignore the unbalanced unpin.
    fn release_snapshot(&self, travel: TravelId) {
        let view = { self.pinned.lock().remove(&travel) };
        if let Some(view) = view {
            for s in &self.slots {
                let part = s.partition.lock().clone();
                part.store().unpin_view(view);
            }
        }
    }

    fn dispatch_submit(
        &self,
        travel: TravelId,
        coordinator: usize,
        plan: Arc<Plan>,
    ) -> Result<(), ClusterError> {
        let plan = self.freeze_snapshot(travel, plan);
        {
            let mut routes = self.routes.lock();
            routes.insert(
                travel,
                Route {
                    coordinator,
                    coord_epoch: self.slots[coordinator].epoch.load(Ordering::SeqCst),
                    tepoch: 0,
                    failovers: 0,
                    plan: plan.clone(),
                },
            );
            while routes.len() > MAX_ROUTES {
                routes.pop_first();
            }
        }
        self.client
            .send(
                coordinator,
                Msg::Submit {
                    travel,
                    plan,
                    client: self.client.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)
    }

    /// Release a travel's admission slot and dispatch queued submissions
    /// into the freed capacity. Called on every observed completion and
    /// on abandoning a travel (timeout restart, cancellation).
    fn release_slot(&self, travel: TravelId) {
        // The travel is finished (done, timed out, or cancelled):
        // compaction may reclaim versions its snapshot was holding.
        self.release_snapshot(travel);
        let limit = self.engine.max_concurrent_travels;
        let mut to_send = Vec::new();
        {
            let mut adm = self.admission.lock();
            adm.in_flight.remove(&travel);
            if let Some(pos) = adm.pending.iter().position(|p| p.travel == travel) {
                adm.pending.remove(pos);
            }
            while limit == 0 || adm.in_flight.len() < limit {
                match adm.pending.pop_front() {
                    Some(p) => {
                        adm.in_flight.insert(p.travel);
                        if let Some(t) = adm.times.get_mut(&p.travel) {
                            t.1 = Some(Instant::now());
                        }
                        to_send.push(p);
                    }
                    None => break,
                }
            }
        }
        for p in to_send {
            let _ = self.dispatch_submit(p.travel, p.coordinator, p.plan);
        }
    }

    /// Travels currently admitted and not yet observed complete. Useful
    /// for asserting no ticket leaks after a multi-tenant run.
    pub fn active_travels(&self) -> usize {
        self.admission.lock().in_flight.len()
    }

    /// Travels parked in the admission queue.
    pub fn pending_travels(&self) -> usize {
        self.admission.lock().pending.len()
    }

    /// Stash-key of a client-bound message (travel id or request id).
    fn msg_key(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::TravelDone { travel, .. }
            | Msg::ProgressReport { travel, .. }
            | Msg::CancelAck { travel, .. }
            | Msg::RecoverDone { travel, .. } => Some(*travel),
            Msg::IngestAck { req, .. } | Msg::VertexReply { req, .. } => Some(*req),
            // Placement acks key on the map version, offset into a range
            // no travel/request id reaches (ids are sequential from 1).
            Msg::PlacementAck { version, .. } => Some((1u64 << 62) | *version),
            Msg::MigrateApplied { mig, .. } => Some(*mig),
            // Suspicion reports all share one key: the healer is the only
            // waiter and drains them in arrival order.
            Msg::Suspect { .. } => Some(SUSPECT_KEY),
            // Server-bound traffic never reaches the client mailbox; listed
            // explicitly so a new client-bound variant fails gt-lint here.
            Msg::Submit { .. }
            | Msg::Abort { .. }
            | Msg::ProgressQuery { .. }
            | Msg::Cancel { .. }
            | Msg::SourceScan { .. }
            | Msg::Visit { .. }
            | Msg::ExecCreated { .. }
            | Msg::ExecTerminated { .. }
            | Msg::OriginSatisfied { .. }
            | Msg::Results { .. }
            | Msg::SyncStart { .. }
            | Msg::SyncFrontier { .. }
            | Msg::SyncOrigin { .. }
            | Msg::SyncStepDone { .. }
            | Msg::Ingest { .. }
            | Msg::GetVertex { .. }
            | Msg::Relay { .. }
            | Msg::RelayAck { .. }
            | Msg::CoordRecover { .. }
            | Msg::CoordHandoff { .. }
            | Msg::ReAnnounce { .. }
            | Msg::PlacementUpdate { .. }
            | Msg::ReplicateWrite { .. }
            | Msg::ReplicateAck { .. }
            | Msg::ReplicateLedger { .. }
            | Msg::MigrateBegin { .. }
            | Msg::MigrateData { .. }
            | Msg::MigrateCutover { .. }
            | Msg::MigrateFinish { .. }
            | Msg::Heartbeat { .. }
            | Msg::SuspectAck { .. }
            | Msg::ReReplicateBegin { .. }
            | Msg::ReReplicateData { .. }
            | Msg::ReReplicateCutover { .. }
            | Msg::ReReplicateFinish { .. }
            | Msg::Crash
            | Msg::Shutdown => None,
        }
    }

    /// Wait for the first client-bound message with `key` matching
    /// `want`, stashing every other client-bound message so concurrent
    /// waiters on other keys still see theirs. Returns the message and
    /// the instant it was received from the fabric.
    fn await_client_msg(
        &self,
        key: u64,
        want: impl Fn(&Msg) -> bool,
        deadline: Instant,
    ) -> Result<(Msg, Instant), ClusterError> {
        loop {
            {
                let mut mb = self.mailbox.lock();
                if let Some(pos) = mb.iter().position(|(k, m, _)| *k == key && want(m)) {
                    if let Some((_, msg, at)) = mb.remove(pos) {
                        return Ok((msg, at));
                    }
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClusterError::slice_timeout());
            }
            match self
                .client
                .recv_timeout(left.min(Duration::from_millis(25)))
            {
                Ok(env) => {
                    let received = Instant::now();
                    // Every observed completion frees an admission slot,
                    // regardless of which travel this waiter is after —
                    // queued submissions make progress even while the
                    // client blocks on a different travel.
                    if let Msg::TravelDone { travel, .. } = &env.msg {
                        self.release_slot(*travel);
                    }
                    if Self::msg_key(&env.msg) == Some(key) && want(&env.msg) {
                        return Ok((env.msg, received));
                    }
                    if let Some(k) = Self::msg_key(&env.msg) {
                        self.mailbox.lock().push_back((k, env.msg, received));
                    }
                }
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) => return Err(ClusterError::Disconnected),
            }
        }
    }

    /// Wait for a started traversal (up to `timeout`).
    ///
    /// The wait runs in short slices; between slices the client checks
    /// the travel's current coordinator. If that server crashed (or
    /// crash-restarted) since the travel was routed, the travel is
    /// **failed over**: its durable ledger stream is replayed on a
    /// successor server, every server re-announces its journal, and the
    /// traversal resumes under a bumped travel-epoch — transparently to
    /// this call, which keeps waiting for the same `TravelDone`.
    ///
    /// On timeout the travel is abandoned: an abort is broadcast so the
    /// servers drop its state, and its admission slot is released so
    /// queued co-tenants (or a caller's resubmission) can run. A travel
    /// whose completion is permanently lost must not pin a concurrency
    /// slot forever. The [`TravelError::Timeout`] carries the
    /// coordinator's last reachable progress estimate.
    pub fn wait(&self, ticket: &Ticket, timeout: Duration) -> Result<TravelResult, ClusterError> {
        let travel = ticket.travel;
        let deadline = Instant::now() + timeout;
        loop {
            if self.cancelled.lock().contains(&travel) {
                return Err(ClusterError::Travel(TravelError::Cancelled { travel }));
            }
            let slice = deadline.min(Instant::now() + self.engine.wait_poll);
            match self.await_client_msg(travel, |m| matches!(m, Msg::TravelDone { .. }), slice) {
                Ok((Msg::TravelDone { outcome, .. }, received)) => {
                    let mut r = TravelResult::from_outcome(
                        outcome,
                        received.saturating_duration_since(ticket.started),
                        ticket.restarts,
                    );
                    r.failovers = self
                        .routes
                        .lock()
                        .remove(&travel)
                        .map(|rt| rt.failovers)
                        .unwrap_or(0);
                    if let Some((submitted, admitted)) = self.admission.lock().times.remove(&travel)
                    {
                        r.admit_wait = admitted
                            .map(|a| a.saturating_duration_since(submitted))
                            .unwrap_or_default();
                    }
                    return Ok(r);
                }
                // The matcher only admits TravelDone; anything else means a
                // matcher/key bug — keep waiting rather than kill the client.
                Ok(_) => continue,
                Err(e) if e.is_timeout() => {
                    let died = {
                        let routes = self.routes.lock();
                        routes.get(&travel).map(|r| (r.coordinator, r.coord_epoch))
                    };
                    if let Some((coord, coord_epoch)) = died {
                        let host_lost = self.server_crashed(coord)
                            || self.slots[coord].epoch.load(Ordering::SeqCst) != coord_epoch;
                        if host_lost {
                            if !self.engine.reliable_delivery_enabled() {
                                // No epoch fencing: the travel is
                                // unrecoverable in place.
                                self.abandon(travel);
                                return Err(ClusterError::Travel(TravelError::CoordinatorLost {
                                    travel,
                                }));
                            }
                            match self.failover(travel) {
                                Ok(()) => {}
                                Err(ClusterError::Travel(TravelError::FailoverStalled {
                                    ..
                                })) => {
                                    // The successor took the handoff but
                                    // never confirmed recovery — fail fast
                                    // instead of burning the whole timeout.
                                    self.abandon(travel);
                                    return Err(ClusterError::Travel(
                                        TravelError::FailoverStalled { travel },
                                    ));
                                }
                                Err(_) => {
                                    self.abandon(travel);
                                    return Err(ClusterError::Travel(
                                        TravelError::CoordinatorLost { travel },
                                    ));
                                }
                            }
                        }
                    }
                    if Instant::now() >= deadline {
                        let last_progress = self.try_progress_snapshot(ticket, timeout);
                        self.abandon(travel);
                        return Err(ClusterError::Travel(TravelError::Timeout {
                            attempts: ticket.restarts + 1,
                            last_progress,
                        }));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Best-effort progress fetch for a travel being given up on; `None`
    /// when the coordinator is unreachable. The reply wait is capped at
    /// 250 ms *and* the caller's own timeout: this query fires after the
    /// caller's deadline already expired, so a short `wait(5ms)` must
    /// not overshoot by a fresh quarter-second window when the
    /// coordinator is up but unresponsive (e.g. network-isolated).
    fn try_progress_snapshot(&self, ticket: &Ticket, budget: Duration) -> Option<ProgressSnapshot> {
        let coordinator = self
            .routes
            .lock()
            .get(&ticket.travel)
            .map(|r| r.coordinator)
            .unwrap_or(ticket.coordinator);
        if self.server_crashed(coordinator) {
            return None;
        }
        self.client
            .send(
                coordinator,
                Msg::ProgressQuery {
                    travel: ticket.travel,
                    client: self.client.id(),
                },
            )
            .ok()?;
        match self.await_client_msg(
            ticket.travel,
            |m| matches!(m, Msg::ProgressReport { .. }),
            Instant::now() + budget.min(Duration::from_millis(250)),
        ) {
            Ok((Msg::ProgressReport { snapshot, .. }, _)) => Some(snapshot),
            Ok(_) | Err(_) => None,
        }
    }

    /// Collect a travel's ledger events from every surviving copy: the
    /// (possibly dead) coordinator's own file, plus every replica stream
    /// peers keep for it (`travel-ledger-replica-<coord>.log` next to
    /// their own stores, shipped via [`Msg::ReplicateLedger`]). The single
    /// most complete copy wins — streams are never concatenated, so a
    /// lagging replica can only degrade recovery toward re-drive, never
    /// double-apply an event.
    fn read_ledger_events(&self, coord: usize, travel: TravelId) -> Vec<LedgerEvent> {
        let mut candidates: Vec<PathBuf> = Vec::new();
        if let Some(p) = &self.slots[coord].ledger_path {
            candidates.push(p.clone());
        }
        for (s, slot) in self.slots.iter().enumerate() {
            if s == coord {
                continue;
            }
            if let Some(dir) = slot.ledger_path.as_deref().and_then(|p| p.parent()) {
                candidates.push(dir.join(format!("travel-ledger-replica-{coord}.log")));
            }
        }
        let mut best: Vec<LedgerEvent> = Vec::new();
        for path in candidates {
            let Ok(replay) = replay_blobs(&path) else {
                continue;
            };
            let events: Vec<LedgerEvent> = replay
                .blobs
                .iter()
                .filter_map(|b| LedgerEvent::decode(b))
                .filter(|(t, _)| *t == travel)
                .map(|(_, ev)| ev)
                .collect();
            if events.len() > best.len() {
                best = events;
            }
        }
        best
    }

    /// Re-home an orphaned travel's coordinator role onto a successor.
    ///
    /// Steps (see DESIGN.md, "Coordinator fault tolerance"):
    /// 1. Re-check under the failover lock — a concurrent waiter may have
    ///    already re-homed the travel.
    /// 2. Read the dead coordinator's durable ledger stream, falling back
    ///    to replica copies on peers (read-only — the restarted
    ///    incarnation may already hold the file open, and may truncate it
    ///    once it hosts nothing, which is why the read happens *before*
    ///    the restart).
    /// 3. Restart the dead server: its shard is needed to finish the
    ///    traversal, and the re-announce barrier spans every server.
    /// 4. Pick the successor: the next live non-decommissioned server
    ///    after the dead one (deterministic, for same-seed
    ///    reproducibility).
    /// 5. Seed the successor ([`Msg::CoordRecover`]), broadcast the
    ///    handoff ([`Msg::CoordHandoff`]) under the bumped travel-epoch,
    ///    and wait for the successor's [`Msg::RecoverDone`] acknowledgment
    ///    (bounded — a successor that never confirms surfaces
    ///    [`TravelError::FailoverStalled`]).
    fn failover(&self, travel: TravelId) -> Result<(), ClusterError> {
        let _serialize = self.failover_lock.lock();
        let (dead, plan, tepoch) = {
            let routes = self.routes.lock();
            let Some(r) = routes.get(&travel) else {
                return Ok(()); // completed (or abandoned) meanwhile
            };
            let host_alive = !self.server_crashed(r.coordinator)
                && self.slots[r.coordinator].epoch.load(Ordering::SeqCst) == r.coord_epoch;
            if host_alive {
                return Ok(()); // a concurrent waiter already re-homed it
            }
            (r.coordinator, r.plan.clone(), r.tepoch)
        };
        let events = self.read_ledger_events(dead, travel);
        let restart_deadline = Instant::now() + Duration::from_secs(5);
        while self.server_crashed(dead) {
            // Tolerate races with an external restart watcher: either of
            // us succeeding is fine.
            if self.restart_server(dead).is_ok() {
                break;
            }
            if Instant::now() >= restart_deadline {
                return Err(ClusterError::Recovery(format!(
                    "server {dead} stayed down through failover"
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let n = self.slots.len();
        let successor = (1..=n)
            .map(|k| (dead + k) % n)
            .find(|&s| !self.server_crashed(s) && !self.placement.is_decommissioned(s))
            .or_else(|| {
                (1..=n)
                    .map(|k| (dead + k) % n)
                    .find(|&s| !self.server_crashed(s))
            })
            .ok_or_else(|| ClusterError::Recovery("no live server to host the failover".into()))?;
        // gt-lint: allow(guard-across-channel, "serializing concurrent failovers is the failover lock's whole job")
        self.handoff_to(travel, successor, plan, tepoch + 1, events, Some(dead))
    }

    /// Re-drive a travel whose *live* coordinator must shed the role or
    /// whose data dependencies shifted under it (replica promotion). The
    /// coordinator's own ledger file is readable concurrently
    /// (`replay_blobs` tolerates a torn tail), so recovery follows the
    /// exact crash path, minus the restart.
    fn redrive(&self, travel: TravelId, restarted: Option<usize>) -> Result<(), ClusterError> {
        let _serialize = self.failover_lock.lock();
        let (old_coord, plan, tepoch) = {
            let routes = self.routes.lock();
            let Some(r) = routes.get(&travel) else {
                return Ok(()); // completed (or abandoned) meanwhile
            };
            (r.coordinator, r.plan.clone(), r.tepoch)
        };
        let events = self.read_ledger_events(old_coord, travel);
        let n = self.slots.len();
        // Always move the role: the old coordinator clears its hosted
        // state when the handoff names someone else.
        let successor = (1..=n)
            .map(|k| (old_coord + k) % n)
            .find(|&s| !self.server_crashed(s) && !self.placement.is_decommissioned(s))
            .ok_or_else(|| ClusterError::Recovery("no live server to host the re-drive".into()))?;
        // gt-lint: allow(guard-across-channel, "serializing concurrent failovers is the failover lock's whole job")
        self.handoff_to(travel, successor, plan, tepoch + 1, events, restarted)
    }

    /// Ship a travel's coordinator role to `successor` under travel-epoch
    /// `epoch`: seed it with the recovered ledger `events`, broadcast the
    /// handoff, fabricate empty re-announces for crashed servers so the
    /// barrier can complete, update the client route, and await the
    /// successor's [`Msg::RecoverDone`]. Caller holds the failover lock.
    fn handoff_to(
        &self,
        travel: TravelId,
        successor: usize,
        plan: Arc<Plan>,
        epoch: u64,
        events: Vec<LedgerEvent>,
        restarted: Option<usize>,
    ) -> Result<(), ClusterError> {
        let n = self.slots.len();
        let succ_epoch = self.slots[successor].epoch.load(Ordering::SeqCst);
        let recover = Msg::CoordRecover {
            travel,
            epoch,
            plan: plan.clone(),
            client: self.client.id(),
            events,
        };
        let send_round = |round: &Msg| -> Result<(), ClusterError> {
            self.client
                // gt-lint: allow(guard-across-channel, "serializing the recover+handoff sends is the failover lock's whole job")
                .send(successor, round.clone())
                .map_err(|_| ClusterError::Disconnected)?;
            for s in 0..n {
                if self.server_crashed(s) {
                    // A crashed server can't re-announce; satisfy the
                    // barrier on its behalf with an empty journal (its
                    // in-memory work is gone — re-drive covers it).
                    self.client
                        .send(
                            successor,
                            Msg::ReAnnounce {
                                travel,
                                epoch,
                                server: s,
                                created: Vec::new(),
                                terminated: Vec::new(),
                                results: Vec::new(),
                            },
                        )
                        .map_err(|_| ClusterError::Disconnected)?;
                    continue;
                }
                self.client
                    .send(
                        s,
                        Msg::CoordHandoff {
                            travel,
                            epoch,
                            coordinator: successor,
                            restarted,
                        },
                    )
                    .map_err(|_| ClusterError::Disconnected)?;
            }
            Ok(())
        };
        send_round(&recover)?;
        {
            let mut routes = self.routes.lock();
            if let Some(r) = routes.get_mut(&travel) {
                r.coordinator = successor;
                r.coord_epoch = succ_epoch;
                r.tepoch = epoch;
                r.failovers += 1;
            }
        }
        self.fabric.stats().record_handoff();
        // Acknowledged handoff: wait for the successor to confirm it has
        // rebuilt the travel (re-announce barrier done, traversal
        // re-driven or directly completed). Without this, a successor that
        // is isolated or wedged silently eats the travel until the
        // client's whole timeout expires.
        let deadline = Instant::now() + RECOVER_DEADLINE;
        loop {
            let slice = deadline.min(Instant::now() + RECOVER_RENUDGE);
            match self.await_client_msg(
                travel,
                |m| matches!(m, Msg::RecoverDone { epoch: e, .. } if *e >= epoch),
                slice,
            ) {
                Ok(_) => return Ok(()),
                Err(e) if e.is_timeout() => {
                    let epoch_moved = self
                        .routes
                        .lock()
                        .get(&travel)
                        .map(|r| r.tepoch != epoch)
                        .unwrap_or(true);
                    if epoch_moved {
                        // A newer handoff superseded this one; its own
                        // acknowledgment wait takes over.
                        return Ok(());
                    }
                    if Instant::now() >= deadline {
                        if self.server_crashed(successor) {
                            // Successor died mid-recovery: the next wait
                            // slice re-detects the dead host and fails
                            // over again (double-failover path).
                            return Ok(());
                        }
                        return Err(ClusterError::Travel(TravelError::FailoverStalled {
                            travel,
                        }));
                    }
                    // Re-nudge: duplicates are epoch-fenced on the servers
                    // (an already-applied recover/handoff is ignored).
                    send_round(&recover)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Give up on a travel: abort it everywhere, free its admission slot
    /// (dispatching queued submissions into the capacity), and forget its
    /// bookkeeping.
    fn abandon(&self, travel: TravelId) {
        for s in 0..self.slots.len() {
            let _ = self.client.send(s, Msg::Abort { travel });
        }
        self.release_slot(travel);
        self.admission.lock().times.remove(&travel);
        self.routes.lock().remove(&travel);
        self.mailbox.lock().retain(|(k, _, _)| *k != travel);
    }

    /// Cancel a started traversal cluster-wide.
    ///
    /// If the travel is still parked in the admission queue it is simply
    /// removed and `Ok(false)` is returned ("never started"). Otherwise a
    /// [`Msg::Cancel`] is broadcast; every server aborts the travel's
    /// executions, drops its scheduling-queue entries and cache
    /// partition, marks the id retired (so stray in-flight requests are
    /// ignored), and acknowledges. Once all servers have acknowledged the
    /// admission slot is released and `Ok(true)` is returned.
    pub fn cancel(&self, ticket: &Ticket) -> Result<bool, ClusterError> {
        let travel = ticket.travel;
        {
            let mut adm = self.admission.lock();
            if let Some(pos) = adm.pending.iter().position(|p| p.travel == travel) {
                adm.pending.remove(pos);
                adm.times.remove(&travel);
                return Ok(false);
            }
        }
        for s in 0..self.slots.len() {
            self.client
                .send(
                    s,
                    Msg::Cancel {
                        travel,
                        client: self.client.id(),
                    },
                )
                .map_err(|_| ClusterError::Disconnected)?;
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        for _ in 0..self.slots.len() {
            self.await_client_msg(travel, |m| matches!(m, Msg::CancelAck { .. }), deadline)?;
        }
        self.release_slot(travel);
        self.admission.lock().times.remove(&travel);
        self.routes.lock().remove(&travel);
        {
            // Mark cancelled so a concurrent `wait()` on this ticket
            // reports `TravelError::Cancelled` instead of timing out.
            let mut cancelled = self.cancelled.lock();
            cancelled.insert(travel);
            while cancelled.len() > MAX_ROUTES {
                cancelled.pop_first();
            }
        }
        // A completion may have raced the cancellation; drop any stashed
        // messages for this travel so later waiters can't see them.
        self.mailbox.lock().retain(|(k, _, _)| *k != travel);
        Ok(true)
    }

    /// Query the coordinator's progress estimate for an in-flight travel
    /// (§IV-C's progress reporting).
    pub fn progress(&self, ticket: &Ticket) -> Result<ProgressSnapshot, ClusterError> {
        // After a failover the coordinator has moved; follow the route.
        let coordinator = self
            .routes
            .lock()
            .get(&ticket.travel)
            .map(|r| r.coordinator)
            .unwrap_or(ticket.coordinator);
        self.client
            .send(
                coordinator,
                Msg::ProgressQuery {
                    travel: ticket.travel,
                    client: self.client.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        match self
            .await_client_msg(
                ticket.travel,
                |m| matches!(m, Msg::ProgressReport { .. }),
                Instant::now() + Duration::from_secs(10),
            )?
            .0
        {
            Msg::ProgressReport { snapshot, .. } => Ok(snapshot),
            other => Err(ClusterError::Recovery(format!(
                "unexpected reply to progress query: {other:?}"
            ))),
        }
    }

    /// Ingest vertices and edges into the live cluster (§I: "live
    /// updates … in real time"). Entities are routed to their owning
    /// servers, written through the WAL-backed stores, and become
    /// immediately visible to traversals and point queries. Returns the
    /// number of entities applied.
    pub fn ingest(
        &self,
        vertices: Vec<gt_graph::Vertex>,
        edges: Vec<gt_graph::Edge>,
    ) -> Result<usize, ClusterError> {
        let n = self.slots.len();
        let mut v_by_owner: Vec<Vec<gt_graph::Vertex>> = vec![Vec::new(); n];
        for v in vertices {
            v_by_owner[self.placement.primary_of_vid(v.id)].push(v);
        }
        let mut e_by_owner: Vec<Vec<gt_graph::Edge>> = vec![Vec::new(); n];
        for e in edges {
            e_by_owner[self.placement.primary_of_vid(e.src)].push(e);
        }
        let mut pending = Vec::new();
        for (owner, (vs, es)) in v_by_owner.into_iter().zip(e_by_owner).enumerate() {
            if vs.is_empty() && es.is_empty() {
                continue;
            }
            let req = self.travel_ctr.fetch_add(1, Ordering::Relaxed);
            self.client
                .send(
                    owner,
                    Msg::Ingest {
                        req,
                        client: self.client.id(),
                        vertices: vs,
                        edges: es,
                    },
                )
                .map_err(|_| ClusterError::Disconnected)?;
            pending.push((req, owner));
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut applied = 0usize;
        for (req, owner) in pending {
            match self
                .await_client_msg(req, |m| matches!(m, Msg::IngestAck { .. }), deadline)?
                .0
            {
                Msg::IngestAck {
                    applied: a, wseq, ..
                } => {
                    // Read-your-replication barrier: remember the highest
                    // acked write sequence per origin. Replica reads below
                    // this mark redirect to the primary.
                    self.acked_w[owner].fetch_max(wseq, Ordering::Release);
                    applied += a;
                }
                other => {
                    return Err(ClusterError::Recovery(format!(
                        "unexpected reply to ingest: {other:?}"
                    )))
                }
            }
        }
        Ok(applied)
    }

    /// Low-latency point query (§I: "frequent metadata operations such
    /// as permission checking"): fetch one vertex from its owning server.
    pub fn get_vertex(&self, vertex: VertexId) -> Result<Option<gt_graph::Vertex>, ClusterError> {
        let primary = self.placement.primary_of_vid(vertex);
        let (owner, barrier) = self.route_point_read(vertex, primary);
        let req = self.travel_ctr.fetch_add(1, Ordering::Relaxed);
        self.client
            .send(
                owner,
                Msg::GetVertex {
                    req,
                    client: self.client.id(),
                    vertex,
                    barrier,
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        match self
            .await_client_msg(
                req,
                |m| matches!(m, Msg::VertexReply { .. }),
                Instant::now() + Duration::from_secs(30),
            )?
            .0
        {
            Msg::VertexReply { vertex, .. } => Ok(vertex.map(|b| *b)),
            other => Err(ClusterError::Recovery(format!(
                "unexpected reply to vertex fetch: {other:?}"
            ))),
        }
    }

    /// Pick the serving holder for a point read. With replica reads off
    /// (the default) this is always the primary with no barrier —
    /// byte-identical to the pre-replica-read code. With them on, the
    /// least-loaded live holder serves, carrying the read-your-replication
    /// barrier (the highest ingest sequence this client saw acked for the
    /// primary) so acked writes are never invisible.
    fn route_point_read(&self, vertex: VertexId, primary: usize) -> (usize, u64) {
        if !self.engine.replica_reads {
            return (primary, 0);
        }
        let holders: Vec<usize> = self
            .placement
            .holders_of_vid(vertex)
            .into_iter()
            .filter(|&s| !self.server_crashed(s))
            .collect();
        if holders.len() < 2 {
            return (primary, 0);
        }
        let loads: Vec<u64> = holders
            .iter()
            .map(|&s| self.slots[s].metrics.real_io_visits.load(Ordering::Relaxed))
            .collect();
        let Some(&min) = loads.iter().min() else {
            return (primary, 0);
        };
        // Ties (the idle-cluster common case) spread by vertex hash, so
        // equal-load holders share the point-read traffic evenly.
        let tied: Vec<usize> = holders
            .into_iter()
            .zip(&loads)
            .filter(|&(_, &l)| l == min)
            .map(|(s, _)| s)
            .collect();
        let pick = tied[gt_graph::splitmix64(vertex.0) as usize % tied.len()];
        if pick == primary {
            (primary, 0)
        } else {
            self.slots[pick]
                .metrics
                .replica_reads
                .fetch_add(1, Ordering::Relaxed);
            (pick, self.acked_w[primary].load(Ordering::Acquire))
        }
    }

    /// This cluster's durability level (see [`DurabilityLevel`]).
    pub fn durability(&self) -> DurabilityLevel {
        self.durability
    }

    /// Typed warning for clusters that silently lack durability. `None`
    /// for store-owning clusters; [`Cluster::from_partitions`] clusters
    /// get an explanation of what crash recovery cannot do for them.
    pub fn durability_warning(&self) -> Option<&'static str> {
        match self.durability {
            DurabilityLevel::Durable => None,
            DurabilityLevel::Ephemeral => Some(
                "cluster built over borrowed partitions (from_partitions): no WAL replay on \
                 restart, no durable travel ledgers, no replication — a server crash loses its \
                 shard and in-flight coordinator state for good; recovery degrades to \
                 timeout-and-resubmit",
            ),
        }
    }

    /// Snapshot of the client's (authoritative) placement map.
    pub fn placement(&self) -> PlacementMap {
        self.placement.snapshot()
    }

    /// Effective replication factor (clamped to `1..=n_servers` at build).
    pub fn replication_factor(&self) -> usize {
        self.replication
    }

    /// Install `map` as the authoritative placement and push it to every
    /// live server, waiting until each has acknowledged the version
    /// (epoch-fenced: servers ignore maps older than what they hold).
    fn broadcast_placement(&self, map: PlacementMap) -> Result<(), ClusterError> {
        let version = map.version;
        self.placement.install(map.clone());
        let shared = Arc::new(map);
        let live: Vec<usize> = (0..self.slots.len())
            .filter(|&s| !self.server_crashed(s))
            .collect();
        for &s in &live {
            self.client
                .send(
                    s,
                    Msg::PlacementUpdate {
                        map: shared.clone(),
                        client: self.client.id(),
                    },
                )
                .map_err(|_| ClusterError::Disconnected)?;
        }
        let key = (1u64 << 62) | version;
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut acked = BTreeSet::new();
        loop {
            // Re-check liveness every slice: a server that crashes after
            // the send can never ack this version — its next incarnation
            // is seeded with the authoritative map on restart instead.
            if live
                .iter()
                .all(|&s| acked.contains(&s) || self.server_crashed(s))
            {
                return Ok(());
            }
            let slice = deadline.min(Instant::now() + Duration::from_millis(100));
            match self.await_client_msg(key, |m| matches!(m, Msg::PlacementAck { .. }), slice) {
                Ok((Msg::PlacementAck { server, .. }, _)) => {
                    acked.insert(server);
                }
                Ok(_) => {}
                Err(e) if e.is_timeout() => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Promote replicas after a primary crash: every partition `dead`
    /// primaried is re-pointed at its first surviving replica (the data
    /// is already there — synchronous [`Msg::ReplicateWrite`] fan-out
    /// keeps replicas byte-equivalent), the new map is broadcast, and
    /// every travel coordinated by a *live* server is re-driven so its
    /// frontier work lost with the dead shard is re-issued against the
    /// promoted copies. Travels coordinated by `dead` itself recover
    /// through the regular [`Cluster::wait`] failover path.
    ///
    /// After the map flips, the dead slot is revived as a *data-less
    /// worker*: it primaries nothing and replicates nothing, but the
    /// stepped (Sync) engine's per-depth barrier counts every server, so
    /// the process must exist even if its disk is gone — promotion works
    /// even when the old store directory was wiped, because the promoted
    /// replicas own the data now.
    ///
    /// Requires replication ≥ 2 to be useful; with no replicas the
    /// partition becomes unowned and this returns an error.
    pub fn promote(&self, dead: usize) -> Result<Vec<usize>, ClusterError> {
        if !self.server_crashed(dead) {
            return Err(ClusterError::Recovery(format!(
                "server {dead} has not crashed; promotion is for dead primaries"
            )));
        }
        let mut map = self.placement.snapshot();
        let promoted = map.promote(dead);
        if promoted.is_empty() && !map.primaried_by(dead).is_empty() {
            return Err(ClusterError::Recovery(format!(
                "server {dead} has partitions with no replicas to promote (replication factor 1)"
            )));
        }
        self.broadcast_placement(map)?;
        // Revive the slot as an empty worker (see above). A failed
        // restart is tolerable for the asynchronous engines — they only
        // talk to servers the map routes to.
        let _ = self.restart_server(dead);
        // Re-drive travels whose coordinator is live: their in-flight
        // frontier work on the dead shard is gone, and only a fresh
        // re-drive against the promoted replicas recovers it.
        let routed: Vec<(TravelId, usize, u64)> = {
            let routes = self.routes.lock();
            routes
                .iter()
                .map(|(t, r)| (*t, r.coordinator, r.coord_epoch))
                .collect()
        };
        for (travel, coord, coord_epoch) in routed {
            let host_alive = !self.server_crashed(coord)
                && self.slots[coord].epoch.load(Ordering::SeqCst) == coord_epoch;
            if host_alive {
                // Best-effort: the map flip above is already durable, so a
                // re-drive that stalls (e.g. the revived slot still booting
                // when the handoff barrier forms) must not fail the
                // promotion — `Cluster::wait` re-drives any stalled travel
                // through its own failover path.
                let _ = self.redrive(travel, Some(dead));
            }
        }
        Ok(promoted)
    }

    /// Migrate one partition's primary role to `to`: snapshot transfer
    /// from the current primary's store segments, mutation delta
    /// catch-up, then an epoch-bumped cutover that re-routes traffic —
    /// including the frontiers of travels already in flight. The source
    /// keeps its (now stale, never again written) copy, so stragglers
    /// routed under the old map still read correct data.
    pub fn migrate(&self, partition: usize, to: usize) -> Result<(), ClusterError> {
        let snapshot = self.placement.snapshot();
        if to >= self.slots.len() || partition >= snapshot.n_partitions() {
            return Err(ClusterError::Recovery(format!(
                "migrate({partition}, {to}): no such partition or server"
            )));
        }
        let from = snapshot.primary_of(partition);
        if from == to {
            return Ok(());
        }
        if self.server_crashed(from) || self.server_crashed(to) {
            return Err(ClusterError::Recovery(format!(
                "migrate({partition}, {to}): source or target is down"
            )));
        }
        // Migration ids share the travel/request id namespace, so acks
        // stash cleanly in the client mailbox.
        let mig = self.travel_ctr.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(60);
        self.client
            .send(
                from,
                Msg::MigrateBegin {
                    mig,
                    partition,
                    to,
                    client: self.client.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        // Phase 0: bulk snapshot applied on the target.
        self.await_client_msg(
            mig,
            |m| matches!(m, Msg::MigrateApplied { phase: 0, .. }),
            deadline,
        )?;
        // Phase 1: source seals the delta trap and ships writes that
        // raced the snapshot.
        self.client
            .send(from, Msg::MigrateCutover { mig })
            .map_err(|_| ClusterError::Disconnected)?;
        self.await_client_msg(
            mig,
            |m| matches!(m, Msg::MigrateApplied { phase: 1, .. }),
            deadline,
        )?;
        // Cutover: flip the primary and broadcast. In-flight frontiers
        // route to `to` as soon as each server installs the new map.
        let mut map = self.placement.snapshot();
        map.set_primary(partition, to);
        self.broadcast_placement(map)?;
        for s in [from, to] {
            self.client
                .send(s, Msg::MigrateFinish { mig })
                .map_err(|_| ClusterError::Disconnected)?;
        }
        Ok(())
    }

    /// Drain a server for removal: mark it decommissioned (it hosts no
    /// new coordinator roles and receives no new primaries), migrate
    /// every partition it primaries to the least-loaded active servers,
    /// and broadcast the final map. The server stays up throughout —
    /// travels it currently coordinates or serves finish normally on its
    /// retained (stale) copies. Returns the executed move plan.
    pub fn decommission(&self, server: usize) -> Result<Vec<Move>, ClusterError> {
        if server >= self.slots.len() {
            return Err(ClusterError::Recovery(format!("no server {server}")));
        }
        let active = self.placement.snapshot().active_servers().len();
        if active <= 1 {
            return Err(ClusterError::Recovery(
                "cannot decommission the last active server".into(),
            ));
        }
        let mut map = self.placement.snapshot();
        map.decommission(server);
        self.broadcast_placement(map)?;
        self.execute_rebalance()
    }

    /// Load-aware rebalance: plan shard moves from observed per-server
    /// real-I/O visit counts ([`gt_placement::rebalance::plan_moves`])
    /// and execute them as live migrations. Returns the executed plan
    /// (empty when already balanced).
    pub fn rebalance(&self) -> Result<Vec<Move>, ClusterError> {
        self.execute_rebalance()
    }

    fn execute_rebalance(&self) -> Result<Vec<Move>, ClusterError> {
        let loads: Vec<u64> = self
            .slots
            .iter()
            .map(|s| s.metrics.real_io_visits.load(Ordering::Relaxed))
            .collect();
        let moves = plan_moves(&loads, &self.placement.snapshot());
        for m in &moves {
            self.migrate(m.partition, m.to)?;
        }
        Ok(moves)
    }

    /// Submit a traversal and wait (60 s default timeout, no restarts).
    pub fn submit(&self, q: &GTravel) -> Result<TravelResult, ClusterError> {
        self.submit_opts(q, Duration::from_secs(60), 0)
    }

    /// Submit with an explicit timeout and restart budget: on timeout the
    /// travel is aborted and resubmitted from scratch (the paper's v1
    /// fault handling, §IV-C).
    pub fn submit_opts(
        &self,
        q: &GTravel,
        timeout: Duration,
        max_restarts: u32,
    ) -> Result<TravelResult, ClusterError> {
        let plan = Arc::new(q.compile()?);
        let started = Instant::now();
        let mut attempts = 0u32;
        loop {
            let mut ticket = self.start_plan(plan.clone())?;
            ticket.restarts = attempts;
            match self.wait(&ticket, timeout) {
                Ok(mut r) => {
                    r.elapsed = started.elapsed();
                    r.restarts = attempts;
                    return Ok(r);
                }
                Err(e) if e.is_timeout() && attempts < max_restarts => {
                    // `wait` already aborted the travel everywhere and
                    // freed its slot. Back off (capped exponential)
                    // before resubmitting with a fresh travel id — under
                    // a crash the cluster needs a moment to recover, and
                    // hammering it with instant retries just feeds the
                    // next attempt into the same failure.
                    let backoff = RESUBMIT_BACKOFF_BASE
                        .checked_mul(1u32 << attempts.min(16))
                        .unwrap_or(RESUBMIT_BACKOFF_CAP)
                        .min(RESUBMIT_BACKOFF_CAP);
                    std::thread::sleep(backoff);
                    attempts += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Per-server instrumentation snapshots (Fig. 7 data).
    ///
    /// MVCC counters live in each store (they survive neither restarts
    /// nor store reopens the same way [`ServerMetrics`] does), so they
    /// are mirrored into the server's metrics here, monotonically, right
    /// before the snapshot is taken. With snapshot isolation off the
    /// store reports all-zero stats and the mirror never moves.
    pub fn metrics(&self) -> Vec<MetricsSnapshot> {
        self.slots
            .iter()
            .map(|s| {
                let vs = s.partition.lock().store().version_stats();
                let m = &s.metrics;
                m.views_pinned.fetch_max(vs.views_pinned, Ordering::Relaxed);
                m.view_pin_peak
                    .fetch_max(vs.view_pin_peak, Ordering::Relaxed);
                m.stale_seq_reads
                    .fetch_max(vs.stale_seq_reads, Ordering::Relaxed);
                m.compactions_deferred
                    .fetch_max(vs.compactions_deferred, Ordering::Relaxed);
                m.snapshot()
            })
            .collect()
    }

    /// The cluster-wide MVCC sequence clock's latest value (0 with
    /// snapshot isolation off). A travel submitted with `as_of(seq)` for
    /// a seq observed here reads the graph as of this instant.
    pub fn current_seq(&self) -> u64 {
        self.slots[0].partition.lock().store().current_seq()
    }

    /// One travel's counters aggregated across every server (concurrent
    /// multi-tenant accounting: I/O splits, queue residency).
    pub fn travel_metrics(&self, ticket: &Ticket) -> TravelMetrics {
        let mut agg = TravelMetrics::default();
        for s in &self.slots {
            agg.merge(&s.metrics.travel_snapshot(ticket.travel));
        }
        agg
    }

    /// Counters for every tracked travel, aggregated across servers.
    pub fn all_travel_metrics(&self) -> BTreeMap<TravelId, TravelMetrics> {
        let mut out: BTreeMap<TravelId, TravelMetrics> = BTreeMap::new();
        for s in &self.slots {
            for (t, m) in s.metrics.travel_snapshots() {
                out.entry(t).or_default().merge(&m);
            }
        }
        out
    }

    /// Zero every server's counters (between experiment runs).
    pub fn reset_metrics(&self) {
        for s in &self.slots {
            s.metrics.reset();
        }
    }

    /// Per-server storage I/O statistics.
    pub fn io_stats(&self) -> Vec<gt_kvstore::iomodel::IoStatsSnapshot> {
        self.slots
            .iter()
            .map(|s| s.partition.lock().io_stats())
            .collect()
    }

    /// Drop every server's block cache (cold-start between runs).
    pub fn drop_storage_caches(&self) {
        for s in &self.slots {
            s.partition.lock().drop_caches();
        }
    }

    /// Isolate (or reconnect) one server — its traffic is silently
    /// dropped, the paper's silent-failure scenario.
    pub fn isolate_server(&self, id: usize, isolated: bool) {
        self.fabric.isolate(id, isolated);
    }

    /// Fabric traffic counters.
    pub fn net_stats(&self) -> Arc<gt_net::NetStats> {
        self.fabric.stats()
    }

    /// Block until every server is live and every partition is back at
    /// full replication factor, or `timeout` elapses. The convergence
    /// primitive of the chaos tests: after a crash schedule, a
    /// self-healing cluster must reach this state with **zero** client
    /// intervention.
    pub fn await_self_heal(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let all_live = (0..self.slots.len()).all(|s| !self.server_crashed(s));
            if all_live
                && self
                    .placement
                    .snapshot()
                    .under_replicated(self.replication)
                    .is_empty()
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Healer action on a confirmed-dead server: epoch-fenced promotion
    /// of its replicas (crediting `auto_promotions` on each new primary),
    /// falling back to a plain restart when there is nothing to promote
    /// (replication factor 1 — WAL replay restores the shard on durable
    /// clusters, and `promote` itself revives the slot otherwise).
    fn heal_dead_server(&self, dead: usize) {
        if !self.server_crashed(dead) {
            return; // raced a concurrent restart — nothing to heal
        }
        match self.promote(dead) {
            Ok(promoted) => {
                let map = self.placement.snapshot();
                for &p in &promoted {
                    self.slots[map.primary_of(p)]
                        .metrics
                        .auto_promotions
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                let _ = self.restart_server(dead);
            }
        }
    }

    /// One background scan: restore the replication factor of every
    /// under-replicated partition by copying it to the least-loaded live
    /// non-holder. Failures are left for the next scan — the source may
    /// itself be mid-promotion.
    fn heal_under_replicated(&self) {
        let map = self.placement.snapshot();
        let short = map.under_replicated(self.replication);
        if short.is_empty() {
            return;
        }
        let active: BTreeSet<usize> = map.active_servers().into_iter().collect();
        for (partition, _missing) in short {
            if self.server_crashed(map.primary_of(partition)) {
                continue; // promotion has to land first
            }
            let holders = map.holders_of(partition);
            let target = (0..self.slots.len())
                .filter(|s| active.contains(s) && !holders.contains(s))
                .filter(|&s| !self.server_crashed(s))
                .min_by_key(|&s| self.slots[s].metrics.real_io_visits.load(Ordering::Relaxed));
            if let Some(to) = target {
                let _ = self.rereplicate(partition, to);
            }
        }
    }

    /// Copy `partition` onto `to` as a new replica under live traffic:
    /// the same snapshot + delta-trap machinery as [`Cluster::migrate`]
    /// (bulk chunks ride the `Bulk` traffic class), except the cutover
    /// *adds* `to` to the replica set instead of flipping the primary.
    fn rereplicate(&self, partition: usize, to: usize) -> Result<(), ClusterError> {
        let snapshot = self.placement.snapshot();
        if to >= self.slots.len() || partition >= snapshot.n_partitions() {
            return Err(ClusterError::Recovery(format!(
                "rereplicate({partition}, {to}): no such partition or server"
            )));
        }
        let from = snapshot.primary_of(partition);
        if snapshot.holders_of(partition).contains(&to) {
            return Ok(()); // raced another heal — already a holder
        }
        if self.server_crashed(from) || self.server_crashed(to) {
            return Err(ClusterError::Recovery(format!(
                "rereplicate({partition}, {to}): source or target is down"
            )));
        }
        let mig = self.travel_ctr.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(30);
        self.client
            .send(
                from,
                Msg::ReReplicateBegin {
                    mig,
                    partition,
                    to,
                    client: self.client.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        // Phase 0: bulk snapshot applied on the target.
        self.await_client_msg(
            mig,
            |m| matches!(m, Msg::MigrateApplied { phase: 0, .. }),
            deadline,
        )?;
        // Phase 1: source seals the delta trap and ships racing writes.
        self.client
            .send(from, Msg::ReReplicateCutover { mig })
            .map_err(|_| ClusterError::Disconnected)?;
        self.await_client_msg(
            mig,
            |m| matches!(m, Msg::MigrateApplied { phase: 1, .. }),
            deadline,
        )?;
        // Cutover: add the replica and broadcast; from here every write
        // to the partition fans to `to` like any other holder.
        let mut map = self.placement.snapshot();
        if map.add_replica(partition, to) {
            self.broadcast_placement(map)?;
        }
        for s in [from, to] {
            self.client
                .send(s, Msg::ReReplicateFinish { mig })
                .map_err(|_| ClusterError::Disconnected)?;
        }
        Ok(())
    }

    /// Server-side half of [`Cluster::shutdown`]: stop every server and
    /// join their threads.
    fn shutdown_servers(&self) {
        for s in 0..self.slots.len() {
            let _ = self.client.send(s, Msg::Shutdown);
        }
        for s in &self.slots {
            if let Some(h) = s.handle.lock().take() {
                h.join();
            }
        }
    }
}

/// The self-healing loop, run on the `gt-healer` thread whenever the
/// cluster was built with a [`DetectionConfig`]. It shares the client
/// endpoint with the foreground API through the mailbox-stash protocol
/// (every receive stashes messages it doesn't want, keyed by
/// [`ClusterState::msg_key`], so concurrent waiters still see theirs):
///
/// 1. drain `Suspect` reports from the servers' phi-accrual detectors,
///    ground-truth each against the actual crash state, and answer with
///    a `SuspectAck` verdict (a false suspicion resets the reporter's
///    inter-arrival window and bumps its `false_suspicions` counter);
/// 2. heal confirmed-dead servers (promotion, falling back to restart);
/// 3. periodically scan for under-replicated partitions and re-replicate
///    them to the least-loaded live non-holders.
fn healer_loop(cluster: &Arc<ClusterState>, stop: &AtomicBool) {
    // Suspicions re-reported between a heal and the revived server's
    // first heartbeat are stale, not false: answering `confirmed` keeps
    // the reporter's `false_suspicions` honest (the standing suspicion
    // clears itself on that heartbeat).
    let mut healed: BTreeMap<usize, Instant> = BTreeMap::new();
    let mut last_scan = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        let slice = Instant::now() + HEALER_SLICE;
        match cluster.await_client_msg(SUSPECT_KEY, |m| matches!(m, Msg::Suspect { .. }), slice) {
            Ok((Msg::Suspect { from, suspect }, _)) => {
                let crashed = cluster.server_crashed(suspect);
                let stale = healed
                    .get(&suspect)
                    .is_some_and(|t| t.elapsed() < HEAL_STALE_WINDOW);
                let _ = cluster.client.send(
                    from,
                    Msg::SuspectAck {
                        suspect,
                        confirmed: crashed || stale,
                    },
                );
                if crashed {
                    cluster.heal_dead_server(suspect);
                    healed.insert(suspect, Instant::now());
                }
            }
            // The matcher only admits Suspect; anything else is a
            // key/matcher bug — ignore rather than kill the healer.
            Ok(_) => {}
            Err(e) if e.is_timeout() => {}
            // Disconnected mid-shutdown (or a wedged fabric): back off so
            // the loop doesn't spin hot until `stop` flips.
            Err(_) => std::thread::sleep(HEALER_SLICE),
        }
        if last_scan.elapsed() >= REREPLICATE_SCAN_EVERY {
            last_scan = Instant::now();
            cluster.heal_under_replicated();
        }
    }
}

/// Convenience: the network model used by the paper-style experiments.
pub fn default_experiment_net() -> NetConfig {
    NetConfig::cluster()
}
