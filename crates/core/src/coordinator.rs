//! Coordinator-side traversal state: the status-tracing ledger of the
//! asynchronous engines and the step controller of the synchronous
//! baseline.
//!
//! §IV-C: "we log the creation and termination events of executions in the
//! coordinator server. … An execution will not be considered finished in
//! the coordinator unless it has registered all its downstream executions
//! in the coordinator server and has reported its own termination.
//! Similarly, a graph traversal does not finish unless all the executions
//! created are marked as terminated in the coordinator server."
//!
//! Because creation reports and termination reports from *different*
//! servers race on independent links, a termination may arrive for an
//! execution the coordinator has not seen created yet. The ledger keeps
//! such events as *orphans*: the traversal is complete only when every
//! created execution is terminated **and** no orphan termination remains
//! unmatched — i.e. the created and terminated sets are equal — which is
//! exactly the paper's condition evaluated race-safely (terminations carry
//! the children list, so the sets can only become equal once the whole
//! execution tree has quiesced).
//!
//! # Interaction with the fault-injecting transport
//!
//! Under a [`ChaosPlan`](crate::faults::ChaosPlan) the relay layer in
//! `server.rs` already provides exactly-once, in-order delivery per
//! `(travel, sender)` stream (sequence numbers, acks, retransmission,
//! epoch fencing), so the ledger normally never sees a duplicated or
//! reordered event. The ledger is nevertheless written to be idempotent —
//! duplicate `exec_created`/`exec_terminated` events are no-ops and
//! orphan terminations are parked until their creation arrives — so a
//! defect in the transport degrades to a stuck travel (caught by the
//! silent-failure timeout) rather than a wrong result.

use crate::lang::Plan;
use crate::message::{ProgressSnapshot, SyncExpect, TravelOutcome};
use crate::{ExecId, TravelId};
use gt_graph::VertexId;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------
// Durable ledger events
// ---------------------------------------------------------------------

/// One event of a travel's durable, event-sourced ledger stream.
///
/// The coordinator appends these to its blob log *before* applying them
/// in memory, so a successor can rebuild the ledger after the
/// coordinator crashes. Every event is stamped with the travel-epoch it
/// was hosted under: after a failover re-drives a travel under a bumped
/// epoch, stale events from an older hosting of the same travel (e.g.
/// when failover lands back on a previous host) are ignored at replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerEvent {
    /// `exec_created` arrived.
    Created {
        /// Travel-epoch the hosting coordinator ran under.
        epoch: u64,
        /// The created execution.
        exec: ExecId,
        /// Depth of the created execution.
        depth: u16,
    },
    /// `exec_terminated` arrived (children ride along, as on the wire).
    Terminated {
        /// Travel-epoch the hosting coordinator ran under.
        epoch: u64,
        /// The terminated execution.
        exec: ExecId,
        /// Downstream executions registered by the termination report.
        children: Vec<(ExecId, u16)>,
    },
    /// Result vertices arrived.
    Results {
        /// Travel-epoch the hosting coordinator ran under.
        epoch: u64,
        /// `(depth, vertex)` pairs.
        items: Vec<(u16, VertexId)>,
    },
    /// Compacted checkpoint of the whole ledger state; replay restarts
    /// from the latest snapshot, bounding recovery work.
    Snapshot {
        /// Travel-epoch the hosting coordinator ran under.
        epoch: u64,
        /// Every created execution with its depth.
        created: Vec<(ExecId, u16)>,
        /// Every terminated execution (orphans included).
        terminated: Vec<ExecId>,
        /// Flattened results.
        results: Vec<(u16, VertexId)>,
    },
}

const EV_CREATED: u8 = 1;
const EV_TERMINATED: u8 = 2;
const EV_RESULTS: u8 = 3;
const EV_SNAPSHOT: u8 = 4;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

impl LedgerEvent {
    /// Travel-epoch stamp of the event.
    pub fn epoch(&self) -> u64 {
        match self {
            LedgerEvent::Created { epoch, .. }
            | LedgerEvent::Terminated { epoch, .. }
            | LedgerEvent::Results { epoch, .. }
            | LedgerEvent::Snapshot { epoch, .. } => *epoch,
        }
    }

    /// Serialize as one blob-log record: `tag | travel | epoch | body`.
    pub fn encode(&self, travel: TravelId) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            LedgerEvent::Created { epoch, exec, depth } => {
                out.push(EV_CREATED);
                put_u64(&mut out, travel);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, exec.0);
                put_u16(&mut out, *depth);
            }
            LedgerEvent::Terminated {
                epoch,
                exec,
                children,
            } => {
                out.push(EV_TERMINATED);
                put_u64(&mut out, travel);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, exec.0);
                put_u32(&mut out, children.len() as u32);
                for (c, d) in children {
                    put_u64(&mut out, c.0);
                    put_u16(&mut out, *d);
                }
            }
            LedgerEvent::Results { epoch, items } => {
                out.push(EV_RESULTS);
                put_u64(&mut out, travel);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, items.len() as u32);
                for (d, v) in items {
                    put_u16(&mut out, *d);
                    put_u64(&mut out, v.0);
                }
            }
            LedgerEvent::Snapshot {
                epoch,
                created,
                terminated,
                results,
            } => {
                out.push(EV_SNAPSHOT);
                put_u64(&mut out, travel);
                put_u64(&mut out, *epoch);
                put_u32(&mut out, created.len() as u32);
                for (e, d) in created {
                    put_u64(&mut out, e.0);
                    put_u16(&mut out, *d);
                }
                put_u32(&mut out, terminated.len() as u32);
                for e in terminated {
                    put_u64(&mut out, e.0);
                }
                put_u32(&mut out, results.len() as u32);
                for (d, v) in results {
                    put_u16(&mut out, *d);
                    put_u64(&mut out, v.0);
                }
            }
        }
        out
    }

    /// Decode one blob-log record. `None` for unknown tags or malformed
    /// bodies (forward compatibility: unknown records are skipped, the
    /// CRC framing already rejected torn writes).
    pub fn decode(blob: &[u8]) -> Option<(TravelId, LedgerEvent)> {
        let mut r = Reader { buf: blob, pos: 0 };
        let tag = r.take(1)?[0];
        let travel = r.u64()?;
        let epoch = r.u64()?;
        let ev = match tag {
            EV_CREATED => LedgerEvent::Created {
                epoch,
                exec: ExecId(r.u64()?),
                depth: r.u16()?,
            },
            EV_TERMINATED => {
                let exec = ExecId(r.u64()?);
                let n = r.u32()? as usize;
                let mut children = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    children.push((ExecId(r.u64()?), r.u16()?));
                }
                LedgerEvent::Terminated {
                    epoch,
                    exec,
                    children,
                }
            }
            EV_RESULTS => {
                let n = r.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    items.push((r.u16()?, VertexId(r.u64()?)));
                }
                LedgerEvent::Results { epoch, items }
            }
            EV_SNAPSHOT => {
                let n = r.u32()? as usize;
                let mut created = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    created.push((ExecId(r.u64()?), r.u16()?));
                }
                let n = r.u32()? as usize;
                let mut terminated = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    terminated.push(ExecId(r.u64()?));
                }
                let n = r.u32()? as usize;
                let mut results = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    results.push((r.u16()?, VertexId(r.u64()?)));
                }
                LedgerEvent::Snapshot {
                    epoch,
                    created,
                    terminated,
                    results,
                }
            }
            _ => return None,
        };
        if r.pos != blob.len() {
            return None;
        }
        Some((travel, ev))
    }
}

/// Ledger for one asynchronous traversal.
#[derive(Debug)]
pub struct TravelLedger {
    /// The plan (kept for result assembly).
    pub plan: Arc<Plan>,
    /// Client endpoint awaiting `TravelDone`.
    pub client: usize,
    created: HashSet<ExecId>,
    terminated: HashSet<ExecId>,
    /// Terminations that arrived before their creation report.
    orphans: HashSet<ExecId>,
    /// |created ∩ terminated|.
    matched: usize,
    /// Outstanding executions per depth (created − terminated).
    outstanding: BTreeMap<u16, i64>,
    depth_of: HashMap<ExecId, u16>,
    results: BTreeMap<u16, BTreeSet<VertexId>>,
    created_total: u64,
    terminated_total: u64,
    /// Submission time (for diagnostics / failure timeouts).
    pub started: Instant,
    /// Last event time (silent-failure detection).
    pub last_event: Instant,
    /// Travel-epoch this ledger is hosted under (bumped by failover).
    pub epoch: u64,
    /// Durable events appended since the last snapshot checkpoint (the
    /// hosting server uses this to decide when to compact).
    pub events_since_snapshot: u64,
}

impl TravelLedger {
    /// Fresh ledger for a submitted traversal.
    pub fn new(plan: Arc<Plan>, client: usize) -> Self {
        Self::new_with_epoch(plan, client, 0)
    }

    /// Fresh ledger hosted under a given travel-epoch (failover path).
    pub fn new_with_epoch(plan: Arc<Plan>, client: usize, epoch: u64) -> Self {
        let now = Instant::now();
        TravelLedger {
            plan,
            client,
            created: HashSet::new(),
            terminated: HashSet::new(),
            orphans: HashSet::new(),
            matched: 0,
            outstanding: BTreeMap::new(),
            depth_of: HashMap::new(),
            results: BTreeMap::new(),
            created_total: 0,
            terminated_total: 0,
            started: now,
            last_event: now,
            epoch,
            events_since_snapshot: 0,
        }
    }

    /// Record an execution-creation event.
    pub fn exec_created(&mut self, exec: ExecId, depth: u16) {
        self.last_event = Instant::now();
        if !self.created.insert(exec) {
            return; // duplicate (e.g. eager report + termination children)
        }
        self.created_total += 1;
        self.depth_of.insert(exec, depth);
        if self.orphans.remove(&exec) {
            self.matched += 1;
            *self.outstanding.entry(depth).or_insert(0) -= 1;
        } else {
            *self.outstanding.entry(depth).or_insert(0) += 1;
        }
    }

    /// Record an execution termination, registering its children
    /// atomically (they ride in the same message).
    pub fn exec_terminated(&mut self, exec: ExecId, children: &[(ExecId, u16)]) {
        for &(child, depth) in children {
            self.exec_created(child, depth);
        }
        self.last_event = Instant::now();
        if !self.terminated.insert(exec) {
            return;
        }
        self.terminated_total += 1;
        if self.created.contains(&exec) {
            self.matched += 1;
            let depth = self.depth_of.get(&exec).copied().unwrap_or(0);
            *self.outstanding.entry(depth).or_insert(0) -= 1;
        } else {
            self.orphans.insert(exec);
        }
    }

    /// Record returned vertices.
    pub fn add_results(&mut self, items: &[(u16, VertexId)]) {
        self.last_event = Instant::now();
        for &(depth, v) in items {
            self.results.entry(depth).or_default().insert(v);
        }
    }

    /// The traversal-complete condition.
    pub fn is_done(&self) -> bool {
        !self.created.is_empty()
            && self.orphans.is_empty()
            && self.matched == self.created.len()
            && self.created.len() == self.terminated.len()
    }

    /// Progress estimate (§IV-C).
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            created: self.created_total,
            terminated: self.terminated_total,
            outstanding_by_depth: self
                .outstanding
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(&d, &n)| (d, n as u64))
                .collect(),
        }
    }

    /// Assemble the final outcome (call once [`TravelLedger::is_done`]).
    pub fn outcome(&self) -> TravelOutcome {
        TravelOutcome {
            by_depth: assemble_by_depth(&self.plan, &self.results),
            progress: self.progress(),
        }
    }

    /// Apply one durable event to the in-memory state. A `Snapshot`
    /// resets the ledger to the checkpointed state; the other events are
    /// the same idempotent mutators the live path uses.
    pub fn apply(&mut self, ev: &LedgerEvent) {
        match ev {
            LedgerEvent::Created { exec, depth, .. } => self.exec_created(*exec, *depth),
            LedgerEvent::Terminated { exec, children, .. } => self.exec_terminated(*exec, children),
            LedgerEvent::Results { items, .. } => self.add_results(items),
            LedgerEvent::Snapshot {
                created,
                terminated,
                results,
                ..
            } => {
                let (plan, client, epoch) = (self.plan.clone(), self.client, self.epoch);
                *self = TravelLedger::new_with_epoch(plan, client, epoch);
                for &(e, d) in created {
                    self.exec_created(e, d);
                }
                for &e in terminated {
                    self.exec_terminated(e, &[]);
                }
                self.add_results(results);
            }
        }
    }

    /// Rebuild a ledger from a durable event stream.
    ///
    /// Only events stamped with the stream's **maximum** travel-epoch
    /// are applied: if a host served the same travel under an older
    /// epoch (failover bounced back to it), those stale events describe
    /// a superseded execution tree and must not pollute the rebuilt
    /// state. Returns the ledger and the number of events applied.
    pub fn replay(plan: Arc<Plan>, client: usize, events: &[LedgerEvent]) -> (Self, u64) {
        let max_epoch = events.iter().map(|e| e.epoch()).max().unwrap_or(0);
        let mut ledger = TravelLedger::new_with_epoch(plan, client, max_epoch);
        // Start from the last snapshot (if any) to bound replay work.
        let live: Vec<&LedgerEvent> = events.iter().filter(|e| e.epoch() == max_epoch).collect();
        let start = live
            .iter()
            .rposition(|e| matches!(e, LedgerEvent::Snapshot { .. }))
            .unwrap_or(0);
        let mut applied = 0u64;
        for ev in &live[start..] {
            ledger.apply(ev);
            applied += 1;
        }
        (ledger, applied)
    }

    /// Compacted checkpoint event capturing the entire current state.
    pub fn snapshot_event(&self) -> LedgerEvent {
        LedgerEvent::Snapshot {
            epoch: self.epoch,
            created: self
                .created
                .iter()
                .map(|&e| (e, self.depth_of.get(&e).copied().unwrap_or(0)))
                .collect(),
            terminated: self.terminated.iter().copied().collect(),
            results: self.results_flat(),
        }
    }

    /// Flattened `(depth, vertex)` results (re-drive seeding: results
    /// are reachable vertices regardless of which execution-tree
    /// incarnation found them, so a successor's fresh drive can keep
    /// them — the per-depth sets dedup the overlap).
    pub fn results_flat(&self) -> Vec<(u16, VertexId)> {
        self.results
            .iter()
            .flat_map(|(&d, s)| s.iter().map(move |&v| (d, v)))
            .collect()
    }
}

/// Controller state for one synchronous traversal (§VI's baseline: "each
/// time, the controller makes sure that all previous executions have
/// finished and then starts the next step").
#[derive(Debug)]
pub struct SyncState {
    /// The plan.
    pub plan: Arc<Plan>,
    /// Client endpoint awaiting `TravelDone`.
    pub client: usize,
    /// Cluster size.
    pub n_servers: usize,
    /// Step currently executing.
    pub depth: u16,
    /// Servers whose `SyncStepDone` is still pending for `depth`.
    pub pending: HashSet<usize>,
    /// Frontier vertices promised per destination server for `depth + 1`.
    pub next_expected: HashMap<usize, u64>,
    /// Origin tokens promised per owner server (virtual final step).
    pub origin_expected: HashMap<usize, u64>,
    /// Collected results.
    pub results: BTreeMap<u16, BTreeSet<VertexId>>,
    /// Barrier count already performed (diagnostics).
    pub barriers: u64,
    /// Submission time.
    pub started: Instant,
}

impl SyncState {
    /// Fresh controller state.
    pub fn new(plan: Arc<Plan>, client: usize, n_servers: usize) -> Self {
        SyncState {
            plan,
            client,
            n_servers,
            depth: 0,
            pending: (0..n_servers).collect(),
            next_expected: HashMap::new(),
            origin_expected: HashMap::new(),
            results: BTreeMap::new(),
            barriers: 0,
            started: Instant::now(),
        }
    }

    /// Record one server's step-done report. Returns `true` when the
    /// whole step has completed (the barrier condition).
    pub fn step_done(
        &mut self,
        server: usize,
        depth: u16,
        sent: &[(usize, u64)],
        origin_sent: &[(usize, u64)],
    ) -> bool {
        if depth != self.depth || !self.pending.remove(&server) {
            return false; // stale or duplicate report
        }
        for &(dst, n) in sent {
            *self.next_expected.entry(dst).or_insert(0) += n;
        }
        for &(dst, n) in origin_sent {
            *self.origin_expected.entry(dst).or_insert(0) += n;
        }
        self.pending.is_empty()
    }

    /// Advance to the next step after a barrier. Returns the work list:
    /// `(depth, per-server expectation)`; empty when the traversal is over.
    pub fn advance(&mut self) -> Vec<(usize, u16, SyncExpect)> {
        self.barriers += 1;
        let final_depth = self.plan.depth();
        if self.depth < final_depth {
            // Interior step: arm servers expecting frontier vertices.
            self.depth += 1;
            let expected = std::mem::take(&mut self.next_expected);
            self.pending = expected.keys().copied().collect();
            expected
                .into_iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| (s, self.depth, SyncExpect::Vertices(n)))
                .collect()
        } else if self.depth == final_depth && !self.origin_expected.is_empty() {
            // Virtual origin-release step.
            self.depth += 1;
            let expected = std::mem::take(&mut self.origin_expected);
            self.pending = expected.keys().copied().collect();
            expected
                .into_iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| (s, self.depth, SyncExpect::OriginTokens(n)))
                .collect()
        } else {
            Vec::new()
        }
    }

    /// Record returned vertices.
    pub fn add_results(&mut self, items: &[(u16, VertexId)]) {
        for &(depth, v) in items {
            self.results.entry(depth).or_default().insert(v);
        }
    }

    /// Assemble the outcome.
    pub fn outcome(&self) -> TravelOutcome {
        TravelOutcome {
            by_depth: assemble_by_depth(&self.plan, &self.results),
            progress: ProgressSnapshot {
                created: self.barriers,
                terminated: self.barriers,
                outstanding_by_depth: Vec::new(),
            },
        }
    }
}

/// Sorted result lists for every *returned* depth of the plan, present
/// even when empty (so an empty traversal still reports its shape).
fn assemble_by_depth(
    plan: &Plan,
    results: &BTreeMap<u16, BTreeSet<VertexId>>,
) -> Vec<(u16, Vec<VertexId>)> {
    plan.returned_depths()
        .into_iter()
        .map(|d| {
            (
                d,
                results
                    .get(&d)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            )
        })
        .collect()
}

/// A coordinator role instance: one per travel on its coordinator server.
#[derive(Debug)]
pub enum CoordState {
    /// Asynchronous engines.
    Async(TravelLedger),
    /// Synchronous baseline.
    Sync(SyncState),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;

    fn plan() -> Arc<Plan> {
        Arc::new(GTravel::v([1u64]).e("a").e("b").compile().unwrap())
    }

    fn eid(s: usize, c: u64) -> ExecId {
        ExecId::new(s, c)
    }

    #[test]
    fn simple_tree_terminates() {
        let mut l = TravelLedger::new(plan(), 9);
        assert!(!l.is_done());
        l.exec_created(eid(0, 1), 0); // root
        assert!(!l.is_done());
        // Root terminates creating two children.
        l.exec_terminated(eid(0, 1), &[(eid(1, 1), 1), (eid(2, 1), 1)]);
        assert!(!l.is_done());
        l.exec_terminated(eid(1, 1), &[]);
        assert!(!l.is_done());
        l.exec_terminated(eid(2, 1), &[]);
        assert!(l.is_done());
        let p = l.progress();
        assert_eq!(p.created, 3);
        assert_eq!(p.terminated, 3);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn orphan_termination_does_not_finish_early() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        // A child's termination races ahead of its registration.
        l.exec_terminated(eid(1, 7), &[]);
        assert!(!l.is_done(), "orphan termination must not complete travel");
        // Root terminates, registering the child.
        l.exec_terminated(eid(0, 1), &[(eid(1, 7), 1)]);
        assert!(l.is_done());
    }

    #[test]
    fn duplicate_events_are_idempotent() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        l.exec_terminated(eid(0, 1), &[]);
        assert!(l.is_done());
        assert_eq!(l.progress().created, 1);
    }

    #[test]
    fn redelivered_termination_with_children_is_idempotent() {
        // A retransmitted ExecTerminated redelivers the children list too;
        // the second delivery must change nothing.
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        let children = [(eid(1, 1), 1), (eid(2, 1), 1)];
        l.exec_terminated(eid(0, 1), &children);
        let before = l.progress();
        l.exec_terminated(eid(0, 1), &children);
        let after = l.progress();
        assert_eq!(before.created, after.created);
        assert_eq!(before.terminated, after.terminated);
        assert_eq!(before.outstanding_by_depth, after.outstanding_by_depth);
        assert!(!l.is_done());
        l.exec_terminated(eid(1, 1), &[]);
        l.exec_terminated(eid(1, 1), &[]); // dup of a leaf termination
        l.exec_terminated(eid(2, 1), &[]);
        assert!(l.is_done());
        assert_eq!(l.progress().created, 3);
        assert_eq!(l.progress().terminated, 3);
    }

    #[test]
    fn outstanding_by_depth_tracks_progress() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[(eid(1, 1), 1), (eid(2, 1), 2)]);
        let p = l.progress();
        assert_eq!(p.outstanding_by_depth, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn results_dedup_per_depth() {
        // Plan with rtn() at depth 1 and 2 so both depths are returned.
        let p = Arc::new(
            GTravel::v([1u64])
                .e("a")
                .rtn()
                .e("b")
                .rtn()
                .compile()
                .unwrap(),
        );
        let mut l = TravelLedger::new(p, 0);
        l.add_results(&[(2, VertexId(5)), (2, VertexId(5)), (1, VertexId(3))]);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        let o = l.outcome();
        assert_eq!(
            o.by_depth,
            vec![(1, vec![VertexId(3)]), (2, vec![VertexId(5)])]
        );
    }

    #[test]
    fn outcome_reports_empty_returned_depths() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        assert_eq!(l.outcome().by_depth, vec![(2, vec![])]);
    }

    #[test]
    fn ledger_event_encode_decode_roundtrip() {
        let events = vec![
            LedgerEvent::Created {
                epoch: 3,
                exec: eid(2, 9),
                depth: 4,
            },
            LedgerEvent::Terminated {
                epoch: 3,
                exec: eid(2, 9),
                children: vec![(eid(0, 1), 5), (eid(1, 2), 5)],
            },
            LedgerEvent::Results {
                epoch: 3,
                items: vec![(1, VertexId(7)), (2, VertexId(8))],
            },
            LedgerEvent::Snapshot {
                epoch: 4,
                created: vec![(eid(0, 1), 0)],
                terminated: vec![eid(0, 1)],
                results: vec![(2, VertexId(5))],
            },
        ];
        for ev in events {
            let blob = ev.encode(77);
            let (travel, back) = LedgerEvent::decode(&blob).expect("decodes");
            assert_eq!(travel, 77);
            assert_eq!(back, ev);
        }
        assert!(LedgerEvent::decode(&[9, 0, 0]).is_none(), "unknown tag");
        let mut truncated = LedgerEvent::Results {
            epoch: 0,
            items: vec![(1, VertexId(1))],
        }
        .encode(1);
        truncated.pop();
        assert!(LedgerEvent::decode(&truncated).is_none());
    }

    #[test]
    fn replay_reconstructs_complete_ledger() {
        // A complete stream (crash landed after the last tracing event
        // but before TravelDone went out): replay alone must yield a
        // done ledger with the full result set — no re-drive needed.
        let mut live = TravelLedger::new(plan(), 0);
        let mut events = vec![
            LedgerEvent::Created {
                epoch: 0,
                exec: eid(0, 1),
                depth: 0,
            },
            LedgerEvent::Results {
                epoch: 0,
                items: vec![(2, VertexId(5))],
            },
            LedgerEvent::Terminated {
                epoch: 0,
                exec: eid(0, 1),
                children: vec![(eid(1, 1), 1)],
            },
            LedgerEvent::Terminated {
                epoch: 0,
                exec: eid(1, 1),
                children: vec![],
            },
        ];
        for ev in &events {
            live.apply(ev);
        }
        assert!(live.is_done());
        // Replay with a mid-stream snapshot checkpoint interleaved.
        events.insert(3, live_snapshot_after(&events[..3]));
        let (replayed, applied) = TravelLedger::replay(plan(), 0, &events);
        assert!(replayed.is_done(), "replayed ledger must be done");
        assert_eq!(replayed.outcome().by_depth, live.outcome().by_depth);
        // Replay started at the snapshot: snapshot + one tail event.
        assert_eq!(applied, 2);
    }

    fn live_snapshot_after(events: &[LedgerEvent]) -> LedgerEvent {
        let mut l = TravelLedger::new(plan(), 0);
        for ev in events {
            l.apply(ev);
        }
        l.snapshot_event()
    }

    #[test]
    fn replay_ignores_stale_travel_epochs() {
        // Events from an older hosting epoch describe a superseded
        // execution tree; only the max-epoch stream counts.
        let events = vec![
            LedgerEvent::Created {
                epoch: 0,
                exec: eid(0, 1),
                depth: 0,
            },
            LedgerEvent::Created {
                epoch: 1,
                exec: eid(0, 2),
                depth: 0,
            },
            LedgerEvent::Terminated {
                epoch: 1,
                exec: eid(0, 2),
                children: vec![],
            },
        ];
        let (l, applied) = TravelLedger::replay(plan(), 0, &events);
        assert_eq!(applied, 2);
        assert_eq!(l.epoch, 1);
        assert!(l.is_done(), "stale epoch-0 creation must not linger");
        assert_eq!(l.progress().created, 1);
    }

    #[test]
    fn snapshot_event_roundtrips_state_including_orphans() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(9, 9), &[]); // orphan termination
        l.add_results(&[(2, VertexId(3))]);
        let snap = l.snapshot_event();
        let mut back = TravelLedger::new(plan(), 0);
        back.apply(&snap);
        assert_eq!(back.progress().created, l.progress().created);
        assert_eq!(back.progress().terminated, l.progress().terminated);
        assert!(!back.is_done(), "orphan must survive the checkpoint");
        // Matching the orphan completes both the original and the copy.
        l.exec_terminated(eid(0, 1), &[(eid(9, 9), 1)]);
        back.exec_terminated(eid(0, 1), &[(eid(9, 9), 1)]);
        assert_eq!(l.is_done(), back.is_done());
        assert!(back.is_done());
        assert_eq!(back.results_flat(), vec![(2, VertexId(3))]);
    }

    #[test]
    fn sync_barrier_and_advance() {
        let mut s = SyncState::new(plan(), 0, 3);
        assert!(!s.step_done(0, 0, &[(1, 5)], &[]));
        assert!(!s.step_done(1, 0, &[(1, 2), (2, 1)], &[]));
        // Duplicate/stale reports ignored.
        assert!(!s.step_done(0, 0, &[(1, 99)], &[]));
        assert!(s.step_done(2, 0, &[], &[]));
        let next = s.advance();
        assert_eq!(s.depth, 1);
        let mut next_sorted = next.clone();
        next_sorted.sort_by_key(|(s, _, _)| *s);
        assert_eq!(next_sorted.len(), 2);
        assert!(matches!(next_sorted[0], (1, 1, SyncExpect::Vertices(7))));
        assert!(matches!(next_sorted[1], (2, 1, SyncExpect::Vertices(1))));
    }

    #[test]
    fn sync_virtual_origin_step() {
        let p = Arc::new(GTravel::v([1u64]).rtn().e("a").compile().unwrap());
        let mut s = SyncState::new(p, 0, 1);
        // Depth 0 produces frontier for depth 1.
        assert!(s.step_done(0, 0, &[(0, 1)], &[]));
        let next = s.advance();
        assert_eq!(next, vec![(0, 1, SyncExpect::Vertices(1))]);
        // Final step satisfies one origin token on server 0.
        assert!(s.step_done(0, 1, &[], &[(0, 1)]));
        let next = s.advance();
        assert_eq!(next, vec![(0, 2, SyncExpect::OriginTokens(1))]);
        assert!(s.step_done(0, 2, &[], &[]));
        assert!(
            s.advance().is_empty(),
            "traversal over after origin release"
        );
    }

    #[test]
    fn sync_finishes_without_origins() {
        let mut s = SyncState::new(plan(), 0, 1);
        assert!(s.step_done(0, 0, &[(0, 1)], &[]));
        s.advance();
        assert!(s.step_done(0, 1, &[(0, 1)], &[]));
        s.advance();
        assert!(s.step_done(0, 2, &[], &[]));
        assert!(s.advance().is_empty());
    }
}
