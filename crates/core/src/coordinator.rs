//! Coordinator-side traversal state: the status-tracing ledger of the
//! asynchronous engines and the step controller of the synchronous
//! baseline.
//!
//! §IV-C: "we log the creation and termination events of executions in the
//! coordinator server. … An execution will not be considered finished in
//! the coordinator unless it has registered all its downstream executions
//! in the coordinator server and has reported its own termination.
//! Similarly, a graph traversal does not finish unless all the executions
//! created are marked as terminated in the coordinator server."
//!
//! Because creation reports and termination reports from *different*
//! servers race on independent links, a termination may arrive for an
//! execution the coordinator has not seen created yet. The ledger keeps
//! such events as *orphans*: the traversal is complete only when every
//! created execution is terminated **and** no orphan termination remains
//! unmatched — i.e. the created and terminated sets are equal — which is
//! exactly the paper's condition evaluated race-safely (terminations carry
//! the children list, so the sets can only become equal once the whole
//! execution tree has quiesced).
//!
//! # Interaction with the fault-injecting transport
//!
//! Under a [`ChaosPlan`](crate::faults::ChaosPlan) the relay layer in
//! `server.rs` already provides exactly-once, in-order delivery per
//! `(travel, sender)` stream (sequence numbers, acks, retransmission,
//! epoch fencing), so the ledger normally never sees a duplicated or
//! reordered event. The ledger is nevertheless written to be idempotent —
//! duplicate `exec_created`/`exec_terminated` events are no-ops and
//! orphan terminations are parked until their creation arrives — so a
//! defect in the transport degrades to a stuck travel (caught by the
//! silent-failure timeout) rather than a wrong result.

use crate::lang::Plan;
use crate::message::{ProgressSnapshot, SyncExpect, TravelOutcome};
use crate::ExecId;
use gt_graph::VertexId;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Ledger for one asynchronous traversal.
#[derive(Debug)]
pub struct TravelLedger {
    /// The plan (kept for result assembly).
    pub plan: Arc<Plan>,
    /// Client endpoint awaiting `TravelDone`.
    pub client: usize,
    created: HashSet<ExecId>,
    terminated: HashSet<ExecId>,
    /// Terminations that arrived before their creation report.
    orphans: HashSet<ExecId>,
    /// |created ∩ terminated|.
    matched: usize,
    /// Outstanding executions per depth (created − terminated).
    outstanding: BTreeMap<u16, i64>,
    depth_of: HashMap<ExecId, u16>,
    results: BTreeMap<u16, BTreeSet<VertexId>>,
    created_total: u64,
    terminated_total: u64,
    /// Submission time (for diagnostics / failure timeouts).
    pub started: Instant,
    /// Last event time (silent-failure detection).
    pub last_event: Instant,
}

impl TravelLedger {
    /// Fresh ledger for a submitted traversal.
    pub fn new(plan: Arc<Plan>, client: usize) -> Self {
        let now = Instant::now();
        TravelLedger {
            plan,
            client,
            created: HashSet::new(),
            terminated: HashSet::new(),
            orphans: HashSet::new(),
            matched: 0,
            outstanding: BTreeMap::new(),
            depth_of: HashMap::new(),
            results: BTreeMap::new(),
            created_total: 0,
            terminated_total: 0,
            started: now,
            last_event: now,
        }
    }

    /// Record an execution-creation event.
    pub fn exec_created(&mut self, exec: ExecId, depth: u16) {
        self.last_event = Instant::now();
        if !self.created.insert(exec) {
            return; // duplicate (e.g. eager report + termination children)
        }
        self.created_total += 1;
        self.depth_of.insert(exec, depth);
        if self.orphans.remove(&exec) {
            self.matched += 1;
            *self.outstanding.entry(depth).or_insert(0) -= 1;
        } else {
            *self.outstanding.entry(depth).or_insert(0) += 1;
        }
    }

    /// Record an execution termination, registering its children
    /// atomically (they ride in the same message).
    pub fn exec_terminated(&mut self, exec: ExecId, children: &[(ExecId, u16)]) {
        for &(child, depth) in children {
            self.exec_created(child, depth);
        }
        self.last_event = Instant::now();
        if !self.terminated.insert(exec) {
            return;
        }
        self.terminated_total += 1;
        if self.created.contains(&exec) {
            self.matched += 1;
            let depth = self.depth_of.get(&exec).copied().unwrap_or(0);
            *self.outstanding.entry(depth).or_insert(0) -= 1;
        } else {
            self.orphans.insert(exec);
        }
    }

    /// Record returned vertices.
    pub fn add_results(&mut self, items: &[(u16, VertexId)]) {
        self.last_event = Instant::now();
        for &(depth, v) in items {
            self.results.entry(depth).or_default().insert(v);
        }
    }

    /// The traversal-complete condition.
    pub fn is_done(&self) -> bool {
        !self.created.is_empty()
            && self.orphans.is_empty()
            && self.matched == self.created.len()
            && self.created.len() == self.terminated.len()
    }

    /// Progress estimate (§IV-C).
    pub fn progress(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            created: self.created_total,
            terminated: self.terminated_total,
            outstanding_by_depth: self
                .outstanding
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(&d, &n)| (d, n as u64))
                .collect(),
        }
    }

    /// Assemble the final outcome (call once [`TravelLedger::is_done`]).
    pub fn outcome(&self) -> TravelOutcome {
        TravelOutcome {
            by_depth: assemble_by_depth(&self.plan, &self.results),
            progress: self.progress(),
        }
    }
}

/// Controller state for one synchronous traversal (§VI's baseline: "each
/// time, the controller makes sure that all previous executions have
/// finished and then starts the next step").
#[derive(Debug)]
pub struct SyncState {
    /// The plan.
    pub plan: Arc<Plan>,
    /// Client endpoint awaiting `TravelDone`.
    pub client: usize,
    /// Cluster size.
    pub n_servers: usize,
    /// Step currently executing.
    pub depth: u16,
    /// Servers whose `SyncStepDone` is still pending for `depth`.
    pub pending: HashSet<usize>,
    /// Frontier vertices promised per destination server for `depth + 1`.
    pub next_expected: HashMap<usize, u64>,
    /// Origin tokens promised per owner server (virtual final step).
    pub origin_expected: HashMap<usize, u64>,
    /// Collected results.
    pub results: BTreeMap<u16, BTreeSet<VertexId>>,
    /// Barrier count already performed (diagnostics).
    pub barriers: u64,
    /// Submission time.
    pub started: Instant,
}

impl SyncState {
    /// Fresh controller state.
    pub fn new(plan: Arc<Plan>, client: usize, n_servers: usize) -> Self {
        SyncState {
            plan,
            client,
            n_servers,
            depth: 0,
            pending: (0..n_servers).collect(),
            next_expected: HashMap::new(),
            origin_expected: HashMap::new(),
            results: BTreeMap::new(),
            barriers: 0,
            started: Instant::now(),
        }
    }

    /// Record one server's step-done report. Returns `true` when the
    /// whole step has completed (the barrier condition).
    pub fn step_done(
        &mut self,
        server: usize,
        depth: u16,
        sent: &[(usize, u64)],
        origin_sent: &[(usize, u64)],
    ) -> bool {
        if depth != self.depth || !self.pending.remove(&server) {
            return false; // stale or duplicate report
        }
        for &(dst, n) in sent {
            *self.next_expected.entry(dst).or_insert(0) += n;
        }
        for &(dst, n) in origin_sent {
            *self.origin_expected.entry(dst).or_insert(0) += n;
        }
        self.pending.is_empty()
    }

    /// Advance to the next step after a barrier. Returns the work list:
    /// `(depth, per-server expectation)`; empty when the traversal is over.
    pub fn advance(&mut self) -> Vec<(usize, u16, SyncExpect)> {
        self.barriers += 1;
        let final_depth = self.plan.depth();
        if self.depth < final_depth {
            // Interior step: arm servers expecting frontier vertices.
            self.depth += 1;
            let expected = std::mem::take(&mut self.next_expected);
            self.pending = expected.keys().copied().collect();
            expected
                .into_iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| (s, self.depth, SyncExpect::Vertices(n)))
                .collect()
        } else if self.depth == final_depth && !self.origin_expected.is_empty() {
            // Virtual origin-release step.
            self.depth += 1;
            let expected = std::mem::take(&mut self.origin_expected);
            self.pending = expected.keys().copied().collect();
            expected
                .into_iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| (s, self.depth, SyncExpect::OriginTokens(n)))
                .collect()
        } else {
            Vec::new()
        }
    }

    /// Record returned vertices.
    pub fn add_results(&mut self, items: &[(u16, VertexId)]) {
        for &(depth, v) in items {
            self.results.entry(depth).or_default().insert(v);
        }
    }

    /// Assemble the outcome.
    pub fn outcome(&self) -> TravelOutcome {
        TravelOutcome {
            by_depth: assemble_by_depth(&self.plan, &self.results),
            progress: ProgressSnapshot {
                created: self.barriers,
                terminated: self.barriers,
                outstanding_by_depth: Vec::new(),
            },
        }
    }
}

/// Sorted result lists for every *returned* depth of the plan, present
/// even when empty (so an empty traversal still reports its shape).
fn assemble_by_depth(
    plan: &Plan,
    results: &BTreeMap<u16, BTreeSet<VertexId>>,
) -> Vec<(u16, Vec<VertexId>)> {
    plan.returned_depths()
        .into_iter()
        .map(|d| {
            (
                d,
                results
                    .get(&d)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default(),
            )
        })
        .collect()
}

/// A coordinator role instance: one per travel on its coordinator server.
#[derive(Debug)]
pub enum CoordState {
    /// Asynchronous engines.
    Async(TravelLedger),
    /// Synchronous baseline.
    Sync(SyncState),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;

    fn plan() -> Arc<Plan> {
        Arc::new(GTravel::v([1u64]).e("a").e("b").compile().unwrap())
    }

    fn eid(s: usize, c: u64) -> ExecId {
        ExecId::new(s, c)
    }

    #[test]
    fn simple_tree_terminates() {
        let mut l = TravelLedger::new(plan(), 9);
        assert!(!l.is_done());
        l.exec_created(eid(0, 1), 0); // root
        assert!(!l.is_done());
        // Root terminates creating two children.
        l.exec_terminated(eid(0, 1), &[(eid(1, 1), 1), (eid(2, 1), 1)]);
        assert!(!l.is_done());
        l.exec_terminated(eid(1, 1), &[]);
        assert!(!l.is_done());
        l.exec_terminated(eid(2, 1), &[]);
        assert!(l.is_done());
        let p = l.progress();
        assert_eq!(p.created, 3);
        assert_eq!(p.terminated, 3);
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn orphan_termination_does_not_finish_early() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        // A child's termination races ahead of its registration.
        l.exec_terminated(eid(1, 7), &[]);
        assert!(!l.is_done(), "orphan termination must not complete travel");
        // Root terminates, registering the child.
        l.exec_terminated(eid(0, 1), &[(eid(1, 7), 1)]);
        assert!(l.is_done());
    }

    #[test]
    fn duplicate_events_are_idempotent() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        l.exec_terminated(eid(0, 1), &[]);
        assert!(l.is_done());
        assert_eq!(l.progress().created, 1);
    }

    #[test]
    fn redelivered_termination_with_children_is_idempotent() {
        // A retransmitted ExecTerminated redelivers the children list too;
        // the second delivery must change nothing.
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        let children = [(eid(1, 1), 1), (eid(2, 1), 1)];
        l.exec_terminated(eid(0, 1), &children);
        let before = l.progress();
        l.exec_terminated(eid(0, 1), &children);
        let after = l.progress();
        assert_eq!(before.created, after.created);
        assert_eq!(before.terminated, after.terminated);
        assert_eq!(before.outstanding_by_depth, after.outstanding_by_depth);
        assert!(!l.is_done());
        l.exec_terminated(eid(1, 1), &[]);
        l.exec_terminated(eid(1, 1), &[]); // dup of a leaf termination
        l.exec_terminated(eid(2, 1), &[]);
        assert!(l.is_done());
        assert_eq!(l.progress().created, 3);
        assert_eq!(l.progress().terminated, 3);
    }

    #[test]
    fn outstanding_by_depth_tracks_progress() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[(eid(1, 1), 1), (eid(2, 1), 2)]);
        let p = l.progress();
        assert_eq!(p.outstanding_by_depth, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn results_dedup_per_depth() {
        // Plan with rtn() at depth 1 and 2 so both depths are returned.
        let p = Arc::new(
            GTravel::v([1u64])
                .e("a")
                .rtn()
                .e("b")
                .rtn()
                .compile()
                .unwrap(),
        );
        let mut l = TravelLedger::new(p, 0);
        l.add_results(&[(2, VertexId(5)), (2, VertexId(5)), (1, VertexId(3))]);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        let o = l.outcome();
        assert_eq!(
            o.by_depth,
            vec![(1, vec![VertexId(3)]), (2, vec![VertexId(5)])]
        );
    }

    #[test]
    fn outcome_reports_empty_returned_depths() {
        let mut l = TravelLedger::new(plan(), 0);
        l.exec_created(eid(0, 1), 0);
        l.exec_terminated(eid(0, 1), &[]);
        assert_eq!(l.outcome().by_depth, vec![(2, vec![])]);
    }

    #[test]
    fn sync_barrier_and_advance() {
        let mut s = SyncState::new(plan(), 0, 3);
        assert!(!s.step_done(0, 0, &[(1, 5)], &[]));
        assert!(!s.step_done(1, 0, &[(1, 2), (2, 1)], &[]));
        // Duplicate/stale reports ignored.
        assert!(!s.step_done(0, 0, &[(1, 99)], &[]));
        assert!(s.step_done(2, 0, &[], &[]));
        let next = s.advance();
        assert_eq!(s.depth, 1);
        let mut next_sorted = next.clone();
        next_sorted.sort_by_key(|(s, _, _)| *s);
        assert_eq!(next_sorted.len(), 2);
        assert!(matches!(next_sorted[0], (1, 1, SyncExpect::Vertices(7))));
        assert!(matches!(next_sorted[1], (2, 1, SyncExpect::Vertices(1))));
    }

    #[test]
    fn sync_virtual_origin_step() {
        let p = Arc::new(GTravel::v([1u64]).rtn().e("a").compile().unwrap());
        let mut s = SyncState::new(p, 0, 1);
        // Depth 0 produces frontier for depth 1.
        assert!(s.step_done(0, 0, &[(0, 1)], &[]));
        let next = s.advance();
        assert_eq!(next, vec![(0, 1, SyncExpect::Vertices(1))]);
        // Final step satisfies one origin token on server 0.
        assert!(s.step_done(0, 1, &[], &[(0, 1)]));
        let next = s.advance();
        assert_eq!(next, vec![(0, 2, SyncExpect::OriginTokens(1))]);
        assert!(s.step_done(0, 2, &[], &[]));
        assert!(
            s.advance().is_empty(),
            "traversal over after origin release"
        );
    }

    #[test]
    fn sync_finishes_without_origins() {
        let mut s = SyncState::new(plan(), 0, 1);
        assert!(s.step_done(0, 0, &[(0, 1)], &[]));
        s.advance();
        assert!(s.step_done(0, 1, &[(0, 1)], &[]));
        s.advance();
        assert!(s.step_done(0, 2, &[], &[]));
        assert!(s.advance().is_empty());
    }
}
