//! Local request queues: plain FIFO and GraphTrek's scheduling & merging
//! queue (paper §V-B).
//!
//! Each server "puts the received requests into a local queue and replies
//! to the ancestor servers before processing"; a pool of worker threads
//! drains it. The two policies:
//!
//! * [`FifoQueue`] — arrival order, one vertex request at a time. This is
//!   the plain Async-GT configuration (and the per-step work list of the
//!   synchronous engine).
//! * [`MergingQueue`] — a two-level policy. **Across travels** it runs
//!   weighted fair queuing: each active travel accrues *virtual service*
//!   as its requests are processed (scaled by a weight that favours
//!   shallow plans), and the travel with the least virtual service is
//!   picked next — ties broken by smallest travel id so concurrent runs
//!   are deterministic. A travel joining (or re-joining) the queue starts
//!   at the current virtual floor, so it neither banks credit while idle
//!   nor starves incumbents. **Within a travel** it keeps the paper's
//!   *execution scheduling*: "the worker thread always chooses the
//!   request with the smallest step Id in the queue", helping slow steps
//!   catch up and bounding the step spread (which in turn keeps the
//!   traversal-affiliate cache effective); and *execution merging*: "we
//!   consolidate different steps on the same vertex … we need only to
//!   retrieve the vertex attributes or to scan its edges once locally."
//!   [`RequestQueue::pop`] returns every queued part for the chosen
//!   vertex, so the worker performs one storage access for all of them.

use crate::lang::Plan;
use crate::{ExecId, Token, Tokens, TravelId};
use gt_graph::VertexId;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::Instant;

/// Whether a request participates in the async protocol or a sync step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqMode {
    /// Asynchronous execution: flush dispatches `Visit`s + tracing events.
    Async,
    /// One synchronous step fragment: flush sends `SyncFrontier`s +
    /// `SyncStepDone`.
    SyncStep,
}

/// Accumulated output of one execution, flushed when every vertex request
/// belonging to it has been processed.
#[derive(Debug, Default)]
pub struct RequestOutput {
    /// Next-step vertices per owning server, with merged origin tokens.
    pub dst_by_owner: HashMap<usize, HashMap<VertexId, BTreeSet<Token>>>,
    /// Origin tokens satisfied by paths completing in this execution.
    pub satisfied: BTreeSet<Token>,
    /// Returned vertices produced directly by this execution.
    pub results: Vec<(u16, VertexId)>,
}

/// One *traversal execution* in flight on a server: the request batch it
/// arrived as, a countdown of unprocessed vertex requests, and the output
/// accumulator (§IV-C's unit of tracing).
#[derive(Debug)]
pub struct RequestState {
    /// Travel this execution belongs to.
    pub travel: TravelId,
    /// Depth its vertices enter at.
    pub depth: u16,
    /// Tracing id (allocated by the dispatching server).
    pub exec: ExecId,
    /// The plan.
    pub plan: Arc<Plan>,
    /// Coordinator server id.
    pub coordinator: usize,
    /// Travel-epoch this execution was admitted under; its flush is
    /// stamped with it so output of a superseded (pre-failover) execution
    /// is fenced at the receivers.
    pub tepoch: u64,
    /// Protocol flavour.
    pub mode: ReqMode,
    /// Vertex requests not yet processed; the last one flushes.
    pub remaining: AtomicUsize,
    /// Output accumulator.
    pub out: Mutex<RequestOutput>,
}

/// One vertex request: process `vertex` at `depth` carrying `tokens`.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// The vertex to visit.
    pub vertex: VertexId,
    /// The step it is visited at.
    pub depth: u16,
    /// Origin tokens riding on this path.
    pub tokens: Tokens,
    /// When the request entered the local queue (queue-residency metric).
    pub enqueued_at: Instant,
    /// The execution this request belongs to.
    pub req: Arc<RequestState>,
}

/// Queue behaviour shared by both policies.
pub trait RequestQueue: Send + Sync {
    /// Enqueue a batch of vertex requests.
    fn push_many(&self, items: Vec<WorkItem>);
    /// Blocking pop. Returns every queued part for one chosen vertex
    /// (always a single part for FIFO); `None` once closed and drained.
    fn pop(&self) -> Option<Vec<WorkItem>>;
    /// Close the queue; blocked and future pops return `None` after the
    /// queue drains.
    fn close(&self);
    /// Number of queued vertex requests.
    fn len(&self) -> usize;
    /// True when no vertex requests are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop every queued request of one travel (abort path).
    fn clear_travel(&self, travel: TravelId);
    /// Drop every queued request of every travel (server-crash path: the
    /// dying server's in-memory work vanishes wholesale).
    fn clear_all(&self);
}

// --------------------------------------------------------------- FIFO

#[derive(Default)]
struct FifoInner {
    /// Arrival order of distinct (travel, depth, vertex) entries.
    order: VecDeque<(TravelId, u16, VertexId)>,
    /// Entry → queued parts. Fig. 6 of the paper draws the local queue at
    /// exactly this granularity ("step1, v0 | step1, v1 | step2, v0 …"):
    /// a duplicate request arriving while its twin is *still queued*
    /// coalesces into the same entry instead of queuing again — only
    /// re-arrivals after the entry was processed become the redundant
    /// visits of §V-A.
    items: HashMap<(TravelId, u16, VertexId), Vec<WorkItem>>,
    live: usize,
    closed: bool,
}

/// Arrival-order queue with same-entry coalescing (plain Async-GT; the
/// per-step work lists of the synchronous engine).
#[derive(Default)]
pub struct FifoQueue {
    inner: Mutex<FifoInner>,
    cond: Condvar,
}

impl FifoQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RequestQueue for FifoQueue {
    fn push_many(&self, items: Vec<WorkItem>) {
        let mut g = self.inner.lock();
        for item in items {
            let key = (item.req.travel, item.depth, item.vertex);
            match g.items.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().push(item);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(vec![item]);
                    g.order.push_back(key);
                }
            }
            g.live += 1;
        }
        drop(g);
        self.cond.notify_all();
    }

    fn pop(&self) -> Option<Vec<WorkItem>> {
        let mut g = self.inner.lock();
        loop {
            while let Some(key) = g.order.pop_front() {
                if let Some(parts) = g.items.remove(&key) {
                    g.live -= parts.len();
                    return Some(parts);
                }
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().live
    }

    fn clear_travel(&self, travel: TravelId) {
        let mut g = self.inner.lock();
        let mut removed = 0;
        g.items.retain(|(t, _, _), parts| {
            if *t == travel {
                removed += parts.len();
                false
            } else {
                true
            }
        });
        g.live -= removed;
        g.order.retain(|(t, _, _)| *t != travel);
    }

    fn clear_all(&self) {
        let mut g = self.inner.lock();
        g.order.clear();
        g.items.clear();
        g.live = 0;
    }
}

// ----------------------------------------------- scheduling & merging

/// Virtual-service units charged per processed part at weight 1.
const VS_SCALE: u64 = 1024;

/// Fair-share weight for a travel whose plan is `depth` hops long:
/// shallow (interactive) plans get a larger share of worker service than
/// deep scans, so a short query is not drained behind a long one.
fn weight_for_depth(depth: u16) -> u64 {
    (12 / (u64::from(depth) + 1)).max(1)
}

/// One queued part: origin tokens, owning execution, enqueue time.
type QueuedPart = (Tokens, Arc<RequestState>, Instant);

#[derive(Default)]
struct TravelQ {
    /// depth → vertices awaiting processing at that depth, in vertex-id
    /// order. Sorted draining matters: storage clusters adjacent keys
    /// into runs, so visiting a backlog in key order turns most reads
    /// into sequential/warm accesses — the same disk-friendliness the
    /// paper's layout exists for (§IV-B, §VI).
    order: BTreeMap<u16, BTreeSet<VertexId>>,
    /// vertex → depth → queued parts.
    by_vertex: HashMap<VertexId, BTreeMap<u16, Vec<QueuedPart>>>,
    /// Weighted virtual service this travel has received (0 = uninitialized;
    /// a fresh entry joins at the queue's virtual floor).
    vservice: u64,
    /// Fair-share weight (≥ 1 once initialized, 0 marks a fresh entry).
    weight: u64,
}

#[derive(Default)]
struct MergingInner {
    travels: HashMap<TravelId, TravelQ>,
    live: usize,
    closed: bool,
    /// Virtual service of the least-served travel at the last fair pick;
    /// newly-arriving travels join here instead of at zero.
    vfloor: u64,
}

/// GraphTrek's scheduling & merging queue (§V-B), extended with weighted
/// fair cross-travel service for concurrent multi-travel execution.
pub struct MergingQueue {
    inner: Mutex<MergingInner>,
    cond: Condvar,
    fair: bool,
}

impl Default for MergingQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl MergingQueue {
    /// Empty queue with fair cross-travel scheduling.
    pub fn new() -> Self {
        Self::with_fairness(true)
    }

    /// Empty queue; `fair = false` reverts the cross-travel pick to the
    /// globally-smallest-step policy (single-tenant §V-B behaviour).
    pub fn with_fairness(fair: bool) -> Self {
        MergingQueue {
            inner: Mutex::new(MergingInner::default()),
            cond: Condvar::new(),
            fair,
        }
    }
}

impl RequestQueue for MergingQueue {
    fn push_many(&self, items: Vec<WorkItem>) {
        let mut g = self.inner.lock();
        let vfloor = g.vfloor;
        for item in items {
            let tq = g.travels.entry(item.req.travel).or_default();
            if tq.weight == 0 {
                // Fresh (or re-entrant) travel: join at the virtual floor
                // with a weight derived from its plan's length, scaled by
                // the tenant priority the front door stamped on the plan
                // (1 when no QoS gate is in play).
                tq.weight = weight_for_depth(item.req.plan.depth())
                    * u64::from(item.req.plan.qos_weight.max(1));
                tq.vservice = vfloor;
            }
            tq.order.entry(item.depth).or_default().insert(item.vertex);
            tq.by_vertex
                .entry(item.vertex)
                .or_default()
                .entry(item.depth)
                .or_default()
                .push((item.tokens, item.req.clone(), item.enqueued_at));
            g.live += 1;
        }
        drop(g);
        self.cond.notify_all();
    }

    fn pop(&self) -> Option<Vec<WorkItem>> {
        let mut g = self.inner.lock();
        loop {
            // Level 1 — cross-travel pick: least virtual service (fair)
            // or globally smallest head depth (legacy); ties broken by
            // travel id either way, so the schedule is deterministic.
            // Level 2 — within the travel: smallest depth, then smallest
            // vertex id at that depth.
            'search: while g.live > 0 {
                let picked = if self.fair {
                    g.travels
                        .iter()
                        .filter(|(_, tq)| !tq.order.is_empty())
                        .min_by_key(|(t, tq)| (tq.vservice, **t))
                        .map(|(t, _)| *t)
                } else {
                    // Lexicographic min over (head depth, travel id) —
                    // identical order to the fair branch's tie-break.
                    g.travels
                        .iter()
                        .filter_map(|(t, tq)| tq.order.keys().next().map(|d| (*d, *t)))
                        .min()
                        .map(|(_, t)| t)
                };
                let Some(travel) = picked else { break 'search };
                // The picked travel had a non-empty order map under this
                // same guard; the else-arms are unreachable but must not
                // take down a worker thread if that ever changes.
                let Some(tq) = g.travels.get_mut(&travel) else {
                    break 'search;
                };
                let Some(&depth) = tq.order.keys().next() else {
                    break 'search;
                };
                let (vertex, now_empty) = {
                    let Some(dq) = tq.order.get_mut(&depth) else {
                        break 'search;
                    };
                    (dq.pop_first(), dq.is_empty())
                };
                if now_empty {
                    tq.order.remove(&depth);
                }
                let Some(vertex) = vertex else { continue };
                // Merging: take every queued part for this vertex, at
                // every depth, so one storage access serves them all.
                let Some(depth_map) = tq.by_vertex.remove(&vertex) else {
                    continue; // stale order entry (already merged away)
                };
                let mut parts = Vec::new();
                for (d, entries) in depth_map {
                    for (tokens, req, enqueued_at) in entries {
                        parts.push(WorkItem {
                            vertex,
                            depth: d,
                            tokens,
                            enqueued_at,
                            req,
                        });
                    }
                }
                // Charge the service rendered, weighted; the floor tracks
                // the picked (least-served) travel so newcomers join level.
                let vs_at_pick = tq.vservice;
                tq.vservice = tq
                    .vservice
                    .saturating_add(parts.len() as u64 * VS_SCALE / tq.weight.max(1));
                g.live -= parts.len();
                if self.fair {
                    g.vfloor = g.vfloor.max(vs_at_pick);
                }
                if g.travels[&travel].order.is_empty() && g.travels[&travel].by_vertex.is_empty() {
                    g.travels.remove(&travel);
                }
                return Some(parts);
            }
            if g.closed {
                return None;
            }
            self.cond.wait(&mut g);
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.cond.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().live
    }

    fn clear_travel(&self, travel: TravelId) {
        let mut g = self.inner.lock();
        if let Some(tq) = g.travels.remove(&travel) {
            let removed: usize = tq
                .by_vertex
                .values()
                .map(|dm| dm.values().map(Vec::len).sum::<usize>())
                .sum();
            g.live -= removed;
        }
    }

    fn clear_all(&self) {
        let mut g = self.inner.lock();
        g.travels.clear();
        g.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;
    use std::sync::atomic::Ordering;

    fn req(travel: TravelId, depth: u16, n: usize) -> Arc<RequestState> {
        req_with_hops(travel, depth, n, 1)
    }

    /// Like [`req`] but with a plan of `hops` edge steps (fair-share
    /// weights derive from plan length).
    fn req_with_hops(travel: TravelId, depth: u16, n: usize, hops: usize) -> Arc<RequestState> {
        let mut q = GTravel::v([1u64]);
        for _ in 0..hops {
            q = q.e("x");
        }
        Arc::new(RequestState {
            travel,
            depth,
            exec: ExecId::new(0, depth as u64),
            plan: Arc::new(q.compile().unwrap()),
            coordinator: 0,
            tepoch: 0,
            mode: ReqMode::Async,
            remaining: AtomicUsize::new(n),
            out: Mutex::new(RequestOutput::default()),
        })
    }

    fn item(req: &Arc<RequestState>, vertex: u64) -> WorkItem {
        WorkItem {
            vertex: VertexId(vertex),
            depth: req.depth,
            tokens: vec![],
            enqueued_at: Instant::now(),
            req: req.clone(),
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let q = FifoQueue::new();
        let r = req(1, 0, 3);
        q.push_many(vec![item(&r, 1), item(&r, 2), item(&r, 3)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap()[0].vertex, VertexId(1));
        assert_eq!(q.pop().unwrap()[0].vertex, VertexId(2));
        assert_eq!(q.pop().unwrap()[0].vertex, VertexId(3));
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_coalesces_queued_duplicates() {
        let q = FifoQueue::new();
        let r1 = req(1, 2, 1);
        let r2 = req(1, 2, 1);
        // Same (travel, depth, vertex) queued twice before any pop: one
        // entry, two parts.
        q.push_many(vec![item(&r1, 7)]);
        q.push_many(vec![item(&r2, 7)]);
        assert_eq!(q.len(), 2);
        let parts = q.pop().unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(q.len(), 0);
        // A re-arrival after processing queues fresh (the §V-A redundant
        // visit the cache exists to kill).
        q.push_many(vec![item(&r1, 7)]);
        assert_eq!(q.pop().unwrap().len(), 1);
        // Different vertices never coalesce.
        q.push_many(vec![item(&r1, 8), item(&r1, 9)]);
        assert_eq!(q.pop().unwrap()[0].vertex, VertexId(8));
        assert_eq!(q.pop().unwrap()[0].vertex, VertexId(9));
    }

    #[test]
    fn fifo_clear_travel_is_selective() {
        let q = FifoQueue::new();
        let r1 = req(1, 0, 1);
        let r2 = req(2, 0, 1);
        q.push_many(vec![item(&r1, 1), item(&r2, 2)]);
        q.clear_travel(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap()[0].req.travel, 2);
    }

    #[test]
    fn clear_all_empties_both_queues() {
        let fifo = FifoQueue::new();
        let r1 = req(1, 0, 1);
        let r2 = req(2, 0, 1);
        fifo.push_many(vec![item(&r1, 1), item(&r2, 2)]);
        fifo.clear_all();
        assert_eq!(fifo.len(), 0);
        // Still usable after a wipe (restart reuses a fresh queue, but a
        // wiped one must not be poisoned).
        fifo.push_many(vec![item(&r1, 3)]);
        assert_eq!(fifo.pop().unwrap()[0].vertex, VertexId(3));

        let mq = MergingQueue::new();
        mq.push_many(vec![item(&r1, 1), item(&r2, 2)]);
        mq.clear_all();
        assert_eq!(mq.len(), 0);
        mq.push_many(vec![item(&r2, 4)]);
        assert_eq!(mq.pop().unwrap()[0].vertex, VertexId(4));
    }

    #[test]
    fn merging_queue_schedules_smallest_step_first() {
        let q = MergingQueue::new();
        let r2 = req(1, 2, 2);
        let r0 = req(1, 0, 1);
        let r1 = req(1, 1, 1);
        // Arrival order: depth 2, 0, 1 → pop order must be 0, 1, 2.
        q.push_many(vec![item(&r2, 10), item(&r2, 11)]);
        q.push_many(vec![item(&r0, 20)]);
        q.push_many(vec![item(&r1, 30)]);
        let depths: Vec<u16> = (0..4).map(|_| q.pop().unwrap()[0].depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 2]);
    }

    #[test]
    fn merging_queue_merges_same_vertex_across_steps() {
        let q = MergingQueue::new();
        let r1 = req(1, 1, 1);
        let r2 = req(1, 2, 2);
        // Vertex 7 queued at depth 1 and depth 2 → one pop yields both.
        q.push_many(vec![item(&r1, 7)]);
        q.push_many(vec![item(&r2, 7), item(&r2, 8)]);
        assert_eq!(q.len(), 3);
        let merged = q.pop().unwrap();
        assert_eq!(merged.len(), 2, "both depths in one pop");
        assert_eq!(merged[0].vertex, VertexId(7));
        assert_eq!(merged[0].depth, 1);
        assert_eq!(merged[1].depth, 2);
        // The stale depth-2 order entry for vertex 7 is skipped; vertex 8
        // is next.
        let rest = q.pop().unwrap();
        assert_eq!(rest[0].vertex, VertexId(8));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn merging_queue_does_not_merge_across_travels() {
        let q = MergingQueue::new();
        let a = req(1, 1, 1);
        let b = req(2, 1, 1);
        q.push_many(vec![item(&a, 7)]);
        q.push_many(vec![item(&b, 7)]);
        let first = q.pop().unwrap();
        assert_eq!(first.len(), 1);
        let second = q.pop().unwrap();
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].req.travel, second[0].req.travel);
    }

    #[test]
    fn merging_queue_same_vertex_same_depth_parts() {
        // Token re-propagation enqueues the same (vertex, depth) twice;
        // both parts must come out of one pop.
        let q = MergingQueue::new();
        let r = req(1, 1, 2);
        q.push_many(vec![item(&r, 7)]);
        q.push_many(vec![WorkItem {
            vertex: VertexId(7),
            depth: 1,
            tokens: vec![Token { owner: 3, id: 9 }],
            enqueued_at: Instant::now(),
            req: r.clone(),
        }]);
        let parts = q.pop().unwrap();
        assert_eq!(parts.len(), 2);
        assert!(q.pop_is_empty_nonblocking());
    }

    #[test]
    fn fair_pick_alternates_across_equal_travels() {
        // Two travels with equal weights and equal backlogs must share
        // service turn-about instead of one draining the other's tail.
        let q = MergingQueue::new();
        let a = req(1, 0, 4);
        let b = req(2, 0, 4);
        q.push_many(vec![item(&a, 1), item(&a, 2), item(&a, 3), item(&a, 4)]);
        q.push_many(vec![item(&b, 11), item(&b, 12), item(&b, 13), item(&b, 14)]);
        let order: Vec<TravelId> = (0..8).map(|_| q.pop().unwrap()[0].req.travel).collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn fair_weights_favor_shallow_plans() {
        // A 1-hop travel (weight 6) against a 5-hop travel (weight 2):
        // the shallow one must receive roughly 3× the service.
        let q = MergingQueue::new();
        let shallow = req_with_hops(1, 0, 8, 1);
        let deep = req_with_hops(2, 0, 8, 5);
        q.push_many((1..=8).map(|v| item(&shallow, v)).collect());
        q.push_many((11..=18).map(|v| item(&deep, v)).collect());
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            match q.pop().unwrap()[0].req.travel {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                t => panic!("unexpected travel {t}"),
            }
        }
        assert!(
            counts[0] > counts[1] * 2,
            "shallow plan must dominate early service: {counts:?}"
        );
        assert!(counts[1] > 0, "deep travel must not starve: {counts:?}");
    }

    #[test]
    fn fair_schedule_is_deterministic() {
        // Identical queue contents must drain in an identical order —
        // cross-travel ties resolve by travel id, never HashMap order.
        let build = || {
            let q = MergingQueue::new();
            let a = req(3, 1, 3);
            let b = req(7, 0, 3);
            let c = req(5, 2, 3);
            q.push_many(vec![item(&a, 4), item(&a, 2), item(&a, 9)]);
            q.push_many(vec![item(&b, 8), item(&b, 1)]);
            q.push_many(vec![item(&c, 6), item(&c, 3)]);
            q
        };
        let drain = |q: &MergingQueue| -> Vec<(TravelId, u16, VertexId)> {
            let mut out = Vec::new();
            while !q.pop_is_empty_nonblocking() {
                for p in q.pop().unwrap() {
                    out.push((p.req.travel, p.depth, p.vertex));
                }
            }
            out
        };
        let (q1, q2) = (build(), build());
        assert_eq!(drain(&q1), drain(&q2));
    }

    #[test]
    fn reentrant_travel_joins_at_virtual_floor() {
        // A travel that drains and comes back must not have banked
        // credit: a heavily-served incumbent still gets its fair turns.
        let q = MergingQueue::new();
        let a = req(1, 0, 16);
        let b = req(2, 0, 16);
        // Travel 1 runs alone for a while (accruing service).
        q.push_many((1..=4).map(|v| item(&a, v)).collect());
        for _ in 0..4 {
            q.pop().unwrap();
        }
        // Both travels now queue work; service must interleave rather
        // than letting travel 2 monopolize until it "catches up".
        q.push_many((5..=8).map(|v| item(&a, v)).collect());
        q.push_many((11..=14).map(|v| item(&b, v)).collect());
        let order: Vec<TravelId> = (0..8).map(|_| q.pop().unwrap()[0].req.travel).collect();
        let first_half = &order[..4];
        assert!(
            first_half.contains(&1) && first_half.contains(&2),
            "both travels must be served early: {order:?}"
        );
    }

    #[test]
    fn legacy_pick_keeps_global_smallest_step() {
        // with_fairness(false): the cross-travel pick reverts to the
        // globally smallest head depth (the paper's single-tenant rule).
        let q = MergingQueue::with_fairness(false);
        let deep = req(1, 2, 2);
        let shallow = req(2, 0, 1);
        q.push_many(vec![item(&deep, 10), item(&deep, 11)]);
        q.push_many(vec![item(&shallow, 20)]);
        assert_eq!(q.pop().unwrap()[0].depth, 0, "depth 0 first across travels");
        assert_eq!(q.pop().unwrap()[0].depth, 2);
        assert_eq!(q.pop().unwrap()[0].depth, 2);
    }

    #[test]
    fn merging_clear_travel() {
        let q = MergingQueue::new();
        let a = req(1, 1, 1);
        let b = req(2, 1, 1);
        q.push_many(vec![item(&a, 1), item(&a, 2)]);
        q.push_many(vec![item(&b, 3)]);
        q.clear_travel(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap()[0].req.travel, 2);
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        let q = Arc::new(MergingQueue::new());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop().map(|p| p[0].vertex));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let r = req(1, 0, 1);
        q.push_many(vec![item(&r, 42)]);
        assert_eq!(h.join().unwrap(), Some(VertexId(42)));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(FifoQueue::new());
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn remaining_counter_reflects_parts() {
        let r = req(1, 0, 2);
        assert_eq!(r.remaining.fetch_sub(1, Ordering::AcqRel), 2);
        assert_eq!(r.remaining.fetch_sub(1, Ordering::AcqRel), 1);
    }

    impl MergingQueue {
        /// Test helper: non-blocking emptiness check.
        fn pop_is_empty_nonblocking(&self) -> bool {
            self.inner.lock().live == 0
        }
    }
}
