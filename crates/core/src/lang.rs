//! The GTravel traversal language (paper §III).
//!
//! "GraphTrek defines an iterative query-building language to represent
//! property graph traversal operations … whose methods return the caller
//! GTravel instance to allow call chaining." The paper's core methods are
//! reproduced one-for-one:
//!
//! | paper                 | here                                        |
//! |-----------------------|---------------------------------------------|
//! | `v(ids…)` / `v()`     | [`GTravel::v`] / [`GTravel::v_all`]         |
//! | `e(label)`            | [`GTravel::e`]                              |
//! | `va(key, type, vals)` | [`GTravel::va`] with a [`PropFilter`]       |
//! | `ea(key, type, vals)` | [`GTravel::ea`]                             |
//! | `rtn()`               | [`GTravel::rtn`]                            |
//!
//! The data-auditing example of §III-A reads almost identically:
//!
//! ```
//! use graphtrek::lang::GTravel;
//! use gt_graph::PropFilter;
//!
//! let (t_s, t_e) = (0i64, 1000i64);
//! let q = GTravel::v([7u64])
//!     .e("run").ea(PropFilter::range("start_ts", t_s, t_e))
//!     .e("read").va(PropFilter::eq("type", "text"))
//!     .rtn();
//! let plan = q.compile().unwrap();
//! assert_eq!(plan.depth(), 2);
//! ```
//!
//! The vertex *type* ("User", "Execution", …) is exposed to filters as the
//! virtual property `"type"`, so the provenance query of the paper —
//! `v().va('type', EQ, 'Execution').rtn()…` — works verbatim; the engine
//! additionally recognizes a leading `type EQ` filter and serves it from
//! the per-type storage namespace instead of a full scan.

use gt_graph::{Cond, FilterSet, PropFilter, Props, VertexId};
use serde::{Deserialize, Serialize};

/// Entry-point selection for a traversal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Source {
    /// Begin from explicit vertex ids ("initially retrieved with searching
    /// or indexing mechanisms provided by any underlying graph storage").
    Ids(Vec<VertexId>),
    /// Begin from every vertex, narrowed by the source filters (the
    /// provenance pattern `v().va('type', EQ, …)`).
    All,
}

/// One compiled traversal step: the hop from depth `d` to depth `d+1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// Label of the edges followed in this step.
    pub edge_label: String,
    /// `ea()` filters on those edges.
    pub edge_filters: FilterSet,
    /// `va()` filters applied to the destination vertices (depth `d+1`).
    pub vertex_filters: FilterSet,
    /// Whether the destination working set is `rtn()`-marked.
    pub rtn: bool,
}

/// A fully validated traversal plan, ready for submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Entry-point selection.
    pub source: Source,
    /// `va()` filters on the source working set (depth 0).
    pub source_filters: FilterSet,
    /// Whether the source working set is `rtn()`-marked.
    pub source_rtn: bool,
    /// The steps; `steps.len()` is the traversal depth.
    pub steps: Vec<PlanStep>,
    /// User-requested time-travel bound: read the graph as of this
    /// sequence number ([`GTravel::as_of`]). `None` reads the latest.
    #[serde(default)]
    pub as_of: Option<u64>,
    /// Cluster-wide snapshot sequence captured at admission when the
    /// engine runs with snapshot isolation. Stamped by the coordinator,
    /// never by the query author; carried in the plan so re-driven
    /// travels (failover, migration) re-read the *same* snapshot.
    #[serde(default)]
    pub snapshot: Option<u64>,
    /// Merging-queue weight multiplier (tenant priority), stamped by the
    /// front door's QoS gate after parsing — never authored by queries.
    /// `1` is neutral: the queue's depth-based weighting is unchanged.
    #[serde(default)]
    pub qos_weight: u32,
}

impl Plan {
    /// Number of traversal steps (the paper's "N-step traversal").
    pub fn depth(&self) -> u16 {
        self.steps.len() as u16
    }

    /// Vertex filters applied at `depth` (0 = source).
    pub fn vertex_filters_at(&self, depth: u16) -> &FilterSet {
        if depth == 0 {
            &self.source_filters
        } else {
            &self.steps[depth as usize - 1].vertex_filters
        }
    }

    /// Whether the working set at `depth` is `rtn()`-marked.
    pub fn rtn_at(&self, depth: u16) -> bool {
        if depth == 0 {
            self.source_rtn
        } else {
            self.steps[depth as usize - 1].rtn
        }
    }

    /// The edge label/filters of the hop leaving `depth` (None at the end).
    pub fn hop_from(&self, depth: u16) -> Option<&PlanStep> {
        self.steps.get(depth as usize)
    }

    /// Whether any `rtn()` appears anywhere in the chain.
    pub fn has_rtn(&self) -> bool {
        self.source_rtn || self.steps.iter().any(|s| s.rtn)
    }

    /// Whether the final working set is part of the result. True when the
    /// chain has no `rtn()` at all (the default "return destination
    /// vertices" behaviour) or when the last step itself carries `rtn()`.
    pub fn returns_final(&self) -> bool {
        !self.has_rtn() || self.rtn_at(self.depth())
    }

    /// Depths whose working sets are returned to the user.
    pub fn returned_depths(&self) -> Vec<u16> {
        if !self.has_rtn() {
            return vec![self.depth()];
        }
        (0..=self.depth()).filter(|&d| self.rtn_at(d)).collect()
    }

    /// The sequence bound every read of this travel resolves against:
    /// the tighter of the user's `as_of()` and the admission snapshot.
    /// `None` means unversioned latest-reads.
    pub fn view_seq(&self) -> Option<u64> {
        match (self.as_of, self.snapshot) {
            (Some(a), Some(s)) => Some(a.min(s)),
            (a, s) => a.or(s),
        }
    }

    /// Rough serialized size, for the network bandwidth model.
    pub fn wire_size(&self) -> usize {
        let filters = |f: &FilterSet| f.0.len() * 32;
        let mut n = 24 + filters(&self.source_filters);
        n += 8 * (self.as_of.is_some() as usize + self.snapshot.is_some() as usize);
        if let Source::Ids(ids) = &self.source {
            n += ids.len() * 8;
        }
        for s in &self.steps {
            n += 16 + s.edge_label.len() + filters(&s.edge_filters) + filters(&s.vertex_filters);
        }
        n
    }

    /// If the source is "all vertices of one type", the type name.
    /// Lets the engine use the per-type namespace index instead of a
    /// full vertex scan.
    pub fn source_type_hint(&self) -> Option<&str> {
        if !matches!(self.source, Source::All) {
            return None;
        }
        self.source_filters.0.iter().find_map(|f| {
            if f.key == "type" {
                if let Cond::Eq(v) = &f.cond {
                    return v.as_str();
                }
            }
            None
        })
    }
}

/// Whether a vertex (type + properties) passes `filters`, with the vertex
/// type visible as the virtual `"type"` property.
///
/// `"type"` *always* refers to the vertex's entity type (shadowing any
/// same-named attribute): this keeps the filter semantics and the
/// per-type namespace index ([`Plan::source_type_hint`]) consistent by
/// construction. Entity attributes should use distinct keys (the
/// generators use `ftype` for a file's format, for example).
pub fn vertex_matches(vtype: &str, props: &Props, filters: &FilterSet) -> bool {
    filters.0.iter().all(|f| {
        if f.key == "type" {
            f.cond.test(&gt_graph::PropValue::Str(vtype.to_string()))
        } else {
            f.matches(props)
        }
    })
}

/// Errors detected when compiling a [`GTravel`] chain into a [`Plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// `ea()` appeared before any `e()` — there is no edge set to filter.
    EdgeFilterBeforeEdge,
    /// An `e()` call used an empty label.
    EmptyEdgeLabel,
    /// `v()` was given no ids (use [`GTravel::v_all`] for "all vertices").
    EmptySource,
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::EdgeFilterBeforeEdge => {
                write!(f, "ea() must follow an e() step")
            }
            LangError::EmptyEdgeLabel => write!(f, "e() requires a non-empty label"),
            LangError::EmptySource => write!(f, "v() requires at least one vertex id"),
        }
    }
}
impl std::error::Error for LangError {}

/// The chainable query builder (the paper's `GTravel` class).
#[derive(Debug, Clone, PartialEq)]
pub struct GTravel {
    source: Source,
    source_filters: FilterSet,
    source_rtn: bool,
    steps: Vec<PlanStep>,
    as_of: Option<u64>,
    errors: Vec<LangError>,
}

impl GTravel {
    /// `GTravel.v(id, …)` — begin from explicit vertices.
    pub fn v<I, V>(ids: I) -> GTravel
    where
        I: IntoIterator<Item = V>,
        V: Into<VertexId>,
    {
        let ids: Vec<VertexId> = ids.into_iter().map(Into::into).collect();
        let mut errors = Vec::new();
        if ids.is_empty() {
            errors.push(LangError::EmptySource);
        }
        GTravel {
            source: Source::Ids(ids),
            source_filters: FilterSet::none(),
            source_rtn: false,
            steps: Vec::new(),
            as_of: None,
            errors,
        }
    }

    /// `GTravel.v()` — begin from all vertices (narrow with [`GTravel::va`]).
    pub fn v_all() -> GTravel {
        GTravel {
            source: Source::All,
            source_filters: FilterSet::none(),
            source_rtn: false,
            steps: Vec::new(),
            as_of: None,
            errors: Vec::new(),
        }
    }

    /// `e(label)` — follow edges with `label` to the next working set.
    pub fn e(mut self, label: impl Into<String>) -> GTravel {
        let label = label.into();
        if label.is_empty() {
            self.errors.push(LangError::EmptyEdgeLabel);
        }
        self.steps.push(PlanStep {
            edge_label: label,
            edge_filters: FilterSet::none(),
            vertex_filters: FilterSet::none(),
            rtn: false,
        });
        self
    }

    /// `va(…)` — AND one property filter onto the *current* working set
    /// (the source before any `e()`, otherwise the latest step's
    /// destination vertices).
    pub fn va(mut self, filter: PropFilter) -> GTravel {
        match self.steps.last_mut() {
            Some(step) => step.vertex_filters.0.push(filter),
            None => self.source_filters.0.push(filter),
        }
        self
    }

    /// `ea(…)` — AND one property filter onto the edges of the latest
    /// `e()` step.
    pub fn ea(mut self, filter: PropFilter) -> GTravel {
        match self.steps.last_mut() {
            Some(step) => step.edge_filters.0.push(filter),
            None => self.errors.push(LangError::EdgeFilterBeforeEdge),
        }
        self
    }

    /// `rtn()` — mark the current working set for return; the vertices are
    /// delivered only if their resulting traversals reach the end of the
    /// chain (§IV-D).
    pub fn rtn(mut self) -> GTravel {
        match self.steps.last_mut() {
            Some(step) => step.rtn = true,
            None => self.source_rtn = true,
        }
        self
    }

    /// `as_of(seq)` — time-travel: resolve every read of this traversal
    /// against the graph as it existed at sequence number `seq` (as
    /// reported by `Cluster::current_seq`). Requires the cluster to run
    /// with snapshot isolation; repeated calls keep the tightest bound.
    pub fn as_of(mut self, seq: u64) -> GTravel {
        self.as_of = Some(self.as_of.map_or(seq, |prev| prev.min(seq)));
        self
    }

    /// `created_after(seq)` — keep only vertices of the *current* working
    /// set that were ingested strictly after sequence number `seq`.
    /// Compiles to a range filter on the [`gt_graph::CREATED_SEQ_PROP`]
    /// stamp written by versioned ingest.
    pub fn created_after(self, seq: u64) -> GTravel {
        let lo = (seq as i64).saturating_add(1);
        self.va(PropFilter::range(gt_graph::CREATED_SEQ_PROP, lo, i64::MAX))
    }

    /// Render the chain in the textual grammar of [`crate::parse`] —
    /// the canonical round-trip: `parse(&q.render())` builds a chain
    /// that compiles to the same [`Plan`] as `q` (assuming `q` is
    /// well-formed; error chains render their surface shape only).
    ///
    /// Two representational caveats: string values containing `'` are
    /// not expressible in the grammar, and [`GTravel::created_after`]
    /// renders as the `va()` stamp-range filter it desugars to.
    pub fn render(&self) -> String {
        fn value(v: &gt_graph::PropValue, out: &mut String) {
            use std::fmt::Write as _;
            match v {
                gt_graph::PropValue::Int(i) => {
                    let _ = write!(out, "{i}");
                }
                gt_graph::PropValue::Float(f) => {
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep the literal a float on the way back in.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                }
                gt_graph::PropValue::Str(s) => {
                    let _ = write!(out, "'{s}'");
                }
                gt_graph::PropValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        fn filters(call: &str, set: &FilterSet, out: &mut String) {
            use std::fmt::Write as _;
            for f in &set.0 {
                let _ = write!(out, ".{call}('{}', ", f.key);
                match &f.cond {
                    Cond::Eq(v) => {
                        out.push_str("EQ, ");
                        value(v, out);
                    }
                    Cond::In(vs) => {
                        out.push_str("IN, [");
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            value(v, out);
                        }
                        out.push(']');
                    }
                    Cond::Range(lo, hi) => {
                        out.push_str("RANGE, ");
                        value(lo, out);
                        out.push_str(", ");
                        value(hi, out);
                    }
                }
                out.push(')');
            }
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        match &self.source {
            Source::All => out.push_str("v()"),
            Source::Ids(ids) => {
                out.push_str("v(");
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", id.0);
                }
                out.push(')');
            }
        }
        filters("va", &self.source_filters, &mut out);
        if self.source_rtn {
            out.push_str(".rtn()");
        }
        for step in &self.steps {
            let _ = write!(out, ".e('{}')", step.edge_label);
            filters("ea", &step.edge_filters, &mut out);
            filters("va", &step.vertex_filters, &mut out);
            if step.rtn {
                out.push_str(".rtn()");
            }
        }
        if let Some(seq) = self.as_of {
            let _ = write!(out, ".as_of({seq})");
        }
        out
    }

    /// Validate and produce the immutable [`Plan`].
    pub fn compile(&self) -> Result<Plan, LangError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        Ok(Plan {
            source: self.source.clone(),
            source_filters: self.source_filters.clone(),
            source_rtn: self.source_rtn,
            steps: self.steps.clone(),
            as_of: self.as_of,
            snapshot: None,
            qos_weight: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gt_graph::PropValue;

    #[test]
    fn audit_query_compiles() {
        // §III-A data auditing example.
        let q = GTravel::v([1u64])
            .e("run")
            .ea(PropFilter::range("start_ts", 0i64, 99i64))
            .e("read")
            .va(PropFilter::eq("type", "text"))
            .rtn();
        let p = q.compile().unwrap();
        assert_eq!(p.depth(), 2);
        assert_eq!(p.steps[0].edge_label, "run");
        assert_eq!(p.steps[0].edge_filters.len(), 1);
        assert_eq!(p.steps[1].vertex_filters.len(), 1);
        assert!(p.rtn_at(2));
        assert!(p.returns_final());
        assert_eq!(p.returned_depths(), vec![2]);
    }

    #[test]
    fn provenance_query_compiles() {
        // §III-A provenance example: return the source executions.
        let q = GTravel::v_all()
            .va(PropFilter::eq("type", "Execution"))
            .rtn()
            .va(PropFilter::eq("model", "A"))
            .e("read")
            .va(PropFilter::eq("annotation", "B"));
        let p = q.compile().unwrap();
        assert_eq!(p.depth(), 1);
        assert!(p.source_rtn);
        assert_eq!(p.source_filters.len(), 2);
        assert!(!p.returns_final());
        assert_eq!(p.returned_depths(), vec![0]);
        assert_eq!(p.source_type_hint(), Some("Execution"));
    }

    #[test]
    fn default_returns_final_depth() {
        let p = GTravel::v([1u64]).e("a").e("b").compile().unwrap();
        assert!(!p.has_rtn());
        assert!(p.returns_final());
        assert_eq!(p.returned_depths(), vec![2]);
    }

    #[test]
    fn multiple_rtn_depths() {
        let p = GTravel::v([1u64])
            .rtn()
            .e("a")
            .e("b")
            .rtn()
            .compile()
            .unwrap();
        assert_eq!(p.returned_depths(), vec![0, 2]);
        assert!(p.returns_final());
    }

    #[test]
    fn intermediate_rtn_only() {
        let p = GTravel::v([1u64]).e("a").rtn().e("b").compile().unwrap();
        assert_eq!(p.returned_depths(), vec![1]);
        assert!(!p.returns_final());
    }

    #[test]
    fn ea_before_e_is_error() {
        let q = GTravel::v([1u64]).ea(PropFilter::eq("x", 1i64));
        assert_eq!(q.compile(), Err(LangError::EdgeFilterBeforeEdge));
    }

    #[test]
    fn empty_source_is_error() {
        let q = GTravel::v(Vec::<VertexId>::new());
        assert_eq!(q.compile(), Err(LangError::EmptySource));
    }

    #[test]
    fn empty_label_is_error() {
        let q = GTravel::v([1u64]).e("");
        assert_eq!(q.compile(), Err(LangError::EmptyEdgeLabel));
    }

    #[test]
    fn vertex_matches_virtual_type() {
        use gt_graph::Props;
        let props = Props::new().with("model", "A");
        let fs = FilterSet::none()
            .and(PropFilter::eq("type", "Execution"))
            .and(PropFilter::eq("model", "A"));
        assert!(vertex_matches("Execution", &props, &fs));
        assert!(!vertex_matches("File", &props, &fs));
        // The virtual "type" shadows a same-named attribute, so filter
        // semantics always agree with the per-type namespace index.
        let props2 = Props::new().with("type", "text");
        let fs2 = FilterSet::none().and(PropFilter::eq("type", "text"));
        assert!(!vertex_matches("File", &props2, &fs2));
        assert!(vertex_matches("text", &props2, &fs2));
    }

    #[test]
    fn source_type_hint_requires_all_source_and_eq() {
        let p = GTravel::v([1u64])
            .va(PropFilter::eq("type", "File"))
            .compile()
            .unwrap();
        assert_eq!(p.source_type_hint(), None, "ids source has no hint");
        let p = GTravel::v_all()
            .va(PropFilter::is_in("type", vec![PropValue::str("File")]))
            .compile()
            .unwrap();
        assert_eq!(p.source_type_hint(), None, "IN is not a hint");
    }

    #[test]
    fn as_of_keeps_tightest_bound_and_view_seq_combines() {
        let p = GTravel::v([1u64]).e("a").compile().unwrap();
        assert_eq!(p.as_of, None);
        assert_eq!(p.view_seq(), None, "no bound without as_of or snapshot");
        let p = GTravel::v([1u64])
            .as_of(9)
            .as_of(4)
            .e("a")
            .compile()
            .unwrap();
        assert_eq!(p.as_of, Some(4), "repeated as_of keeps the tightest");
        assert_eq!(p.snapshot, None, "compile never stamps a snapshot");
        assert_eq!(p.view_seq(), Some(4));
        let mut p2 = p.clone();
        p2.snapshot = Some(2);
        assert_eq!(p2.view_seq(), Some(2), "snapshot tightens as_of");
        p2.snapshot = Some(7);
        assert_eq!(p2.view_seq(), Some(4), "as_of tightens snapshot");
        let mut p3 = GTravel::v([1u64]).compile().unwrap();
        p3.snapshot = Some(11);
        assert_eq!(p3.view_seq(), Some(11));
    }

    #[test]
    fn created_after_compiles_to_stamp_filter() {
        let p = GTravel::v_all().created_after(41).compile().unwrap();
        assert_eq!(p.source_filters.len(), 1);
        let f = &p.source_filters.0[0];
        assert_eq!(f.key, gt_graph::CREATED_SEQ_PROP);
        assert!(f.cond.test(&PropValue::Int(42)), "strictly-after lo bound");
        assert!(!f.cond.test(&PropValue::Int(41)));
        // Mid-chain: binds to the latest step's destination set.
        let p = GTravel::v([1u64])
            .e("run")
            .created_after(5)
            .compile()
            .unwrap();
        assert_eq!(p.steps[0].vertex_filters.len(), 1);
        assert!(p.source_filters.is_empty());
    }

    #[test]
    fn wire_size_counts_temporal_bounds() {
        let plain = GTravel::v([1u64]).e("a").compile().unwrap();
        let bounded = GTravel::v([1u64]).as_of(3).e("a").compile().unwrap();
        assert!(bounded.wire_size() > plain.wire_size());
    }

    #[test]
    fn wire_size_grows_with_plan() {
        let small = GTravel::v([1u64]).e("a").compile().unwrap();
        let big = GTravel::v((0..100u64).collect::<Vec<_>>())
            .e("a")
            .e("b")
            .e("c")
            .compile()
            .unwrap();
        assert!(big.wire_size() > small.wire_size());
    }
}
