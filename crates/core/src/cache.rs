//! Traversal-affiliate caching (paper §V-A).
//!
//! "In each backend server, a preallocated cache is created once the
//! servers start. During the graph traversal, the server caches the
//! current execution … with the identification of a `{travel-id,
//! current-step, vertex-id}` triple. While serving a new request, the
//! server first checks whether it has been served before by querying the
//! cache. If there is a cache hit, then the server can safely abandon the
//! request." Eviction is the paper's time-based strategy: "for each
//! traversal instance, the triples with the smallest step Ids are
//! substituted", because a larger in-flight step id implies the oldest
//! steps have already quiesced.
//!
//! One extension is needed for correctness of `rtn()` routing: a request
//! can arrive carrying origin tokens the cached visit has not seen (two
//! asynchronous paths through differently-`rtn()`-marked ancestors). Such
//! a request is *not* redundant — its new tokens must still flow
//! downstream — so the cache records the seen token set per triple and
//! reports exactly the unseen remainder.

use crate::{Token, Tokens, TravelId};
use gt_graph::VertexId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Outcome of consulting the cache for one vertex request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheDecision {
    /// Never served before: process fully (one real visit).
    FirstVisit,
    /// Served before with the same (or a superset of) tokens: abandon.
    Redundant,
    /// Served before, but these origin tokens are new: re-propagate them
    /// downstream (the vertex data itself need not be re-filtered).
    NewTokens(Tokens),
}

#[derive(Default)]
struct TravelEntries {
    /// (step, vertex) → origin tokens already propagated from this visit.
    entries: BTreeMap<(u16, VertexId), BTreeSet<Token>>,
}

/// The per-server traversal-affiliate cache.
pub struct TraversalCache {
    inner: Mutex<HashMap<TravelId, TravelEntries>>,
    capacity: usize,
    /// Per-travel reserved floor: cross-travel eviction never shrinks a
    /// travel below this many triples, so one travel's flood cannot
    /// destroy a co-runner's working set. The capacity is soft — when
    /// nothing is evictable the cache briefly overflows instead.
    reserve_floor: usize,
    len: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for TraversalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraversalCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl TraversalCache {
    /// Create a cache bounded to `capacity` triples. Zero capacity
    /// disables caching (every request reports [`CacheDecision::FirstVisit`]),
    /// which is how the plain Async-GT configuration runs.
    /// `reserve_floor` is the per-travel triple count the cross-travel
    /// eviction pass must leave in place (`0` = no reservation).
    pub fn new(capacity: usize, reserve_floor: usize) -> Self {
        TraversalCache {
            inner: Mutex::new(HashMap::new()),
            capacity,
            reserve_floor,
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Consult-and-update for one request.
    pub fn observe(
        &self,
        travel: TravelId,
        step: u16,
        vertex: VertexId,
        tokens: &Tokens,
    ) -> CacheDecision {
        if self.capacity == 0 {
            return CacheDecision::FirstVisit;
        }
        let mut map = self.inner.lock();
        let entries = &mut map.entry(travel).or_default().entries;
        match entries.get_mut(&(step, vertex)) {
            Some(seen) => {
                let new: Tokens = tokens
                    .iter()
                    .copied()
                    .filter(|t| !seen.contains(t))
                    .collect();
                if new.is_empty() {
                    CacheDecision::Redundant
                } else {
                    seen.extend(new.iter().copied());
                    CacheDecision::NewTokens(new)
                }
            }
            None => {
                entries.insert((step, vertex), tokens.iter().copied().collect());
                let total = self.len.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if total > self.capacity {
                    self.evict_locked(&mut map, travel, (step, vertex));
                }
                CacheDecision::FirstVisit
            }
        }
    }

    /// Evict smallest-step triples, preferring the inserting travel, and
    /// never evicting the triple that was just inserted.
    fn evict_locked(
        &self,
        map: &mut HashMap<TravelId, TravelEntries>,
        inserted_travel: TravelId,
        inserted_key: (u16, VertexId),
    ) {
        let over = self
            .len
            .load(std::sync::atomic::Ordering::Relaxed)
            .saturating_sub(self.capacity);
        let mut to_remove = over;
        // Pass 1: the inserting travel's smallest steps.
        if let Some(te) = map.get_mut(&inserted_travel) {
            while to_remove > 0 {
                let key = match te.entries.keys().next().copied() {
                    Some(k) if k != inserted_key => k,
                    _ => break,
                };
                te.entries.remove(&key);
                to_remove -= 1;
            }
        }
        // Pass 2: other travels' smallest steps — but never below the
        // per-travel reserved floor, so a co-runner keeps the working set
        // it needs to kill its own redundant visits. If every other
        // travel sits at its floor, the cache soft-overflows instead.
        if to_remove > 0 {
            let travels: Vec<TravelId> = map
                .iter()
                .filter(|(t, e)| **t != inserted_travel && e.entries.len() > self.reserve_floor)
                .map(|(t, _)| *t)
                .collect();
            'outer: for t in travels {
                if let Some(te) = map.get_mut(&t) {
                    while to_remove > 0 && te.entries.len() > self.reserve_floor {
                        match te.entries.keys().next().copied() {
                            Some(k) => {
                                te.entries.remove(&k);
                                to_remove -= 1;
                            }
                            None => continue 'outer,
                        }
                    }
                    if to_remove == 0 {
                        break;
                    }
                }
            }
        }
        let removed = over - to_remove;
        self.len
            .fetch_sub(removed, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drop every triple belonging to a finished (or aborted) traversal.
    pub fn forget_travel(&self, travel: TravelId) {
        let mut map = self.inner.lock();
        if let Some(te) = map.remove(&travel) {
            self.len
                .fetch_sub(te.entries.len(), std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Number of cached triples.
    pub fn len(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(owner: u16, id: u64) -> Token {
        Token { owner, id }
    }

    #[test]
    fn first_then_redundant() {
        let c = TraversalCache::new(100, 0);
        let v = VertexId(5);
        assert_eq!(c.observe(1, 2, v, &vec![]), CacheDecision::FirstVisit);
        assert_eq!(c.observe(1, 2, v, &vec![]), CacheDecision::Redundant);
        // Different step or travel is a fresh visit.
        assert_eq!(c.observe(1, 3, v, &vec![]), CacheDecision::FirstVisit);
        assert_eq!(c.observe(2, 2, v, &vec![]), CacheDecision::FirstVisit);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn new_tokens_are_reported_once() {
        let c = TraversalCache::new(100, 0);
        let v = VertexId(5);
        assert_eq!(
            c.observe(1, 1, v, &vec![tok(0, 1)]),
            CacheDecision::FirstVisit
        );
        // Same token again: redundant.
        assert_eq!(
            c.observe(1, 1, v, &vec![tok(0, 1)]),
            CacheDecision::Redundant
        );
        // A new token must be propagated…
        assert_eq!(
            c.observe(1, 1, v, &vec![tok(0, 1), tok(2, 9)]),
            CacheDecision::NewTokens(vec![tok(2, 9)])
        );
        // …but only once.
        assert_eq!(
            c.observe(1, 1, v, &vec![tok(2, 9)]),
            CacheDecision::Redundant
        );
    }

    #[test]
    fn zero_capacity_disables() {
        let c = TraversalCache::new(0, 0);
        assert_eq!(
            c.observe(1, 1, VertexId(1), &vec![]),
            CacheDecision::FirstVisit
        );
        assert_eq!(
            c.observe(1, 1, VertexId(1), &vec![]),
            CacheDecision::FirstVisit
        );
        assert!(c.is_empty());
    }

    #[test]
    fn eviction_drops_smallest_steps_first() {
        let c = TraversalCache::new(4, 0);
        for step in 1..=4u16 {
            c.observe(7, step, VertexId(step as u64), &vec![]);
        }
        assert_eq!(c.len(), 4);
        // Inserting a 5th entry evicts the step-1 triple.
        c.observe(7, 5, VertexId(5), &vec![]);
        assert_eq!(c.len(), 4);
        assert_eq!(
            c.observe(7, 1, VertexId(1), &vec![]),
            CacheDecision::FirstVisit,
            "smallest step must have been evicted"
        );
        // Highest steps survive. (Step 5's entry is still present.)
        assert_eq!(
            c.observe(7, 5, VertexId(5), &vec![]),
            CacheDecision::Redundant
        );
    }

    #[test]
    fn eviction_can_reach_other_travels() {
        let c = TraversalCache::new(2, 0);
        c.observe(1, 9, VertexId(1), &vec![]);
        c.observe(1, 9, VertexId(2), &vec![]);
        // Travel 2's first insert overflows; travel 2 has nothing except
        // the inserted key, so travel 1 loses an entry.
        c.observe(2, 1, VertexId(3), &vec![]);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.observe(2, 1, VertexId(3), &vec![]),
            CacheDecision::Redundant
        );
    }

    #[test]
    fn reserve_floor_protects_co_runner() {
        // Travel 1 holds 3 triples; travel 2 floods. With a floor of 3,
        // travel 2's inserts must first eat their own tail and never
        // shrink travel 1.
        let c = TraversalCache::new(6, 3);
        for i in 0..3u64 {
            c.observe(1, 5, VertexId(i), &vec![]);
        }
        for i in 10..20u64 {
            c.observe(2, 1, VertexId(i), &vec![]);
        }
        for i in 0..3u64 {
            assert_eq!(
                c.observe(1, 5, VertexId(i), &vec![]),
                CacheDecision::Redundant,
                "travel 1's working set must survive travel 2's flood"
            );
        }
    }

    #[test]
    fn reserve_floor_soft_overflows_when_nothing_evictable() {
        // Both travels at their floor: an insert has nothing to evict
        // (pass 1 can't touch the inserted key, pass 2 is floored), so
        // the cache overflows rather than corrupting a working set.
        let c = TraversalCache::new(2, 2);
        c.observe(1, 1, VertexId(1), &vec![]);
        c.observe(1, 1, VertexId(2), &vec![]);
        c.observe(2, 1, VertexId(3), &vec![]);
        assert!(c.len() >= 2, "soft capacity: no eviction possible");
        assert_eq!(
            c.observe(1, 1, VertexId(1), &vec![]),
            CacheDecision::Redundant
        );
    }

    #[test]
    fn forget_travel_releases_capacity() {
        let c = TraversalCache::new(10, 0);
        for i in 0..5u64 {
            c.observe(3, 1, VertexId(i), &vec![]);
        }
        assert_eq!(c.len(), 5);
        c.forget_travel(3);
        assert!(c.is_empty());
        assert_eq!(
            c.observe(3, 1, VertexId(0), &vec![]),
            CacheDecision::FirstVisit
        );
    }
}
