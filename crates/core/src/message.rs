//! Wire messages exchanged between clients, coordinators, and backend
//! servers.
//!
//! One enum covers both engines: the asynchronous flow (`Visit` fan-out
//! with `ExecCreated`/`ExecTerminated` tracing, §IV-B/§IV-C) and the
//! synchronous baseline's controller protocol (`SyncStart` barriers with
//! server-to-server `SyncFrontier` data flow, §VI). Messages are plain
//! values — the "network" is [`gt_net`]'s simulated fabric — but each
//! reports an approximate [`WireSize`] so the bandwidth model can charge
//! transmission cost.

use crate::lang::Plan;
use crate::{ExecId, Tokens, TravelId};
use gt_graph::VertexId;
use gt_net::WireSize;
use std::sync::Arc;

/// Per-step progress estimate (§IV-C: "the count of current unfinished
/// traversal executions in each step can still help users estimate the
/// remaining work and time").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Executions created so far.
    pub created: u64,
    /// Executions terminated so far.
    pub terminated: u64,
    /// Outstanding (created − terminated) executions per step.
    pub outstanding_by_depth: Vec<(u16, u64)>,
}

impl ProgressSnapshot {
    /// Total outstanding executions.
    pub fn outstanding(&self) -> u64 {
        self.created.saturating_sub(self.terminated)
    }
}

/// Final outcome of a traversal, delivered to the client.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TravelOutcome {
    /// Returned vertices per returned depth, sorted and dedup'd.
    pub by_depth: Vec<(u16, Vec<VertexId>)>,
    /// Status-tracing totals at completion.
    pub progress: ProgressSnapshot,
}

/// How a `SyncStart` tells the server what to wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncExpect {
    /// Depth 0: resolve the source locally (scan or owned ids).
    ScanSource,
    /// Interior depth: process after receiving this many frontier vertices.
    Vertices(u64),
    /// Virtual final step: release origins after this many satisfied tokens.
    OriginTokens(u64),
}

/// All GraphTrek wire messages.
///
/// Request→acknowledgment pairings that the `*Ack` naming convention
/// cannot infer are declared for `gt-lint`'s protocol-conformance rule;
/// each declared request must have a reachable retry/timeout site at its
/// senders and a send site for its ack.
// gt-lint: pair(GetVertex -> VertexReply)
// gt-lint: pair(CoordRecover -> RecoverDone)
// gt-lint: pair(MigrateBegin -> MigrateApplied)
// gt-lint: pair(PlacementUpdate -> PlacementAck)
#[derive(Debug, Clone)]
pub enum Msg {
    // ------------------------------------------------------- client-facing
    /// Client → chosen coordinator server: run this traversal.
    Submit {
        /// Travel id (client-assigned).
        travel: TravelId,
        /// The compiled plan.
        plan: Arc<Plan>,
        /// Client endpoint to deliver `TravelDone` to.
        client: usize,
    },
    /// Client → coordinator: abandon a traversal (timeout/restart path).
    Abort {
        /// Travel id.
        travel: TravelId,
    },
    /// Client → coordinator: request a progress estimate.
    ProgressQuery {
        /// Travel id.
        travel: TravelId,
        /// Client endpoint to reply to.
        client: usize,
    },
    /// Coordinator → client: progress estimate reply.
    ProgressReport {
        /// Travel id.
        travel: TravelId,
        /// The estimate.
        snapshot: ProgressSnapshot,
    },
    /// Coordinator → client: traversal finished.
    TravelDone {
        /// Travel id.
        travel: TravelId,
        /// Results and final tracing totals.
        outcome: TravelOutcome,
    },
    /// Client → every server: cancel a traversal cluster-wide. Unlike
    /// [`Msg::Abort`] this is acknowledged, so the client can retire the
    /// travel's admission slot only after every server has dropped its
    /// queued work and its traversal-affiliate cache partition.
    Cancel {
        /// Travel id.
        travel: TravelId,
        /// Client endpoint to acknowledge to.
        client: usize,
    },
    /// Server → client: cancellation applied on this server.
    CancelAck {
        /// Travel id.
        travel: TravelId,
        /// Acknowledging server.
        server: usize,
    },

    // --------------------------------------------------- async traversal
    /// Coordinator → every server: resolve the traversal source locally
    /// and run depth 0 (used for `v()`-all / typed sources).
    SourceScan {
        /// Travel id.
        travel: TravelId,
        /// The plan.
        plan: Arc<Plan>,
        /// Coordinator server id.
        coordinator: usize,
        /// Execution id assigned to this scan (for tracing).
        exec: ExecId,
    },
    /// Server → server: process these frontier vertices at `depth`.
    Visit {
        /// Travel id.
        travel: TravelId,
        /// Depth the vertices enter the frontier at.
        depth: u16,
        /// Execution id assigned by the sender (for tracing).
        exec: ExecId,
        /// The plan (ships with every request, §IV-B).
        plan: Arc<Plan>,
        /// Coordinator server id.
        coordinator: usize,
        /// Vertices with their accumulated origin tokens.
        items: Vec<(VertexId, Tokens)>,
    },
    /// Server → coordinator: a downstream execution was created (§IV-C).
    ExecCreated {
        /// Travel id.
        travel: TravelId,
        /// The new execution.
        exec: ExecId,
        /// Depth it will run at.
        depth: u16,
    },
    /// Server → coordinator: an execution finished; its children are
    /// registered atomically with the termination (§IV-C).
    ExecTerminated {
        /// Travel id.
        travel: TravelId,
        /// The finished execution.
        exec: ExecId,
        /// Executions it spawned, with their depths.
        children: Vec<(ExecId, u16)>,
    },
    /// Final-step server → origin owner: these pending-return tokens had a
    /// path reach the end of the chain (§IV-D).
    OriginSatisfied {
        /// Travel id.
        travel: TravelId,
        /// Synthetic execution id covering the release (for tracing).
        exec: ExecId,
        /// Coordinator server id.
        coordinator: usize,
        /// Token ids local to the receiving server.
        tokens: Vec<u64>,
    },
    /// Any server → coordinator: returned vertices (depth-tagged).
    Results {
        /// Travel id.
        travel: TravelId,
        /// (depth, vertex) pairs.
        items: Vec<(u16, VertexId)>,
    },

    // ---------------------------------------------------- sync traversal
    /// Controller → server: begin (or arm) step `depth`.
    SyncStart {
        /// Travel id.
        travel: TravelId,
        /// The plan.
        plan: Arc<Plan>,
        /// Controller server id.
        coordinator: usize,
        /// Step to run.
        depth: u16,
        /// What to wait for before processing.
        expect: SyncExpect,
    },
    /// Server → server: frontier fragment for the next step (data flows
    /// between backend servers "without going through the controller").
    SyncFrontier {
        /// Travel id.
        travel: TravelId,
        /// Depth the vertices enter at.
        depth: u16,
        /// Vertices with origin tokens.
        items: Vec<(VertexId, Tokens)>,
    },
    /// Final-step server → origin owner (sync flavour of `OriginSatisfied`).
    SyncOrigin {
        /// Travel id.
        travel: TravelId,
        /// Token ids local to the receiving server.
        tokens: Vec<u64>,
    },
    /// Server → controller: this server finished its part of `depth`.
    SyncStepDone {
        /// Travel id.
        travel: TravelId,
        /// The finished step.
        depth: u16,
        /// Reporting server.
        server: usize,
        /// Frontier vertices sent per destination server.
        sent: Vec<(usize, u64)>,
        /// Origin tokens satisfied per owner server.
        origin_sent: Vec<(usize, u64)>,
    },

    // ------------------------------------------- online metadata updates
    //
    // The paper's system requirements (§Abstract, §I) include "live
    // updates (to ingest production information in real time)" and
    // "low-latency point queries (for frequent metadata operations such
    // as permission checking)" alongside large-scale traversals. These
    // messages are that online path: clients route them straight to the
    // owning server (the partitioner is public knowledge).
    /// Client → owner server: insert or replace vertices and edges.
    /// Edges must be grouped onto the server owning their source vertex.
    Ingest {
        /// Request id for the acknowledgment.
        req: u64,
        /// Client endpoint to acknowledge to.
        client: usize,
        /// Vertices to upsert.
        vertices: Vec<gt_graph::Vertex>,
        /// Edges to upsert.
        edges: Vec<gt_graph::Edge>,
    },
    /// Owner server → client: ingest acknowledged (durable in the WAL).
    IngestAck {
        /// Request id being acknowledged.
        req: u64,
        /// Vertices + edges applied.
        applied: usize,
        /// The primary's write watermark after this ingest. The client
        /// remembers the highest acked watermark per primary and sends it
        /// back as the read barrier on replica-routed point lookups.
        wseq: u64,
    },
    /// Client → owner server: point metadata lookup.
    GetVertex {
        /// Request id for the reply.
        req: u64,
        /// Client endpoint to reply to.
        client: usize,
        /// Vertex to fetch.
        vertex: VertexId,
        /// Read-your-replication barrier: the highest primary write
        /// watermark the client has seen acked for this vertex's
        /// partition. A replica parks the read until its applied
        /// watermark catches up; `0` (always satisfied) toward primaries.
        barrier: u64,
    },
    /// Owner server → client: point lookup reply.
    VertexReply {
        /// Request id being answered.
        req: u64,
        /// The vertex, if present.
        vertex: Option<Box<gt_graph::Vertex>>,
    },

    // --------------------------------------------- reliable delivery layer
    /// Server → server: a sequenced, retransmittable envelope around a
    /// data-plane message. Streams are per `(travel, from)`: the receiver
    /// delivers strictly in `seq` order (holding out-of-order arrivals in
    /// a reorder buffer), dedupes redeliveries, and fences by `epoch` so
    /// a restarted sender's stale pre-crash messages are discarded. Only
    /// `Relay` and `RelayAck` carry a chaos key — everything else is
    /// control plane and rides the fabric untouched.
    Relay {
        /// Travel the inner message belongs to.
        travel: TravelId,
        /// Sending server.
        from: usize,
        /// Sender's incarnation; bumped on every restart.
        epoch: u64,
        /// Travel-epoch the sender believes the travel runs under;
        /// bumped by coordinator failover. Receivers drop relays
        /// stamped with an older travel-epoch (stale work from the
        /// pre-failover execution tree).
        tepoch: u64,
        /// Per-`(travel, to)` sequence number, starting at 1.
        seq: u64,
        /// Transmission attempt (1 = first send). Folded into the chaos
        /// key so a retransmission re-rolls its fate.
        attempt: u64,
        /// The wrapped data-plane message.
        inner: Box<Msg>,
    },
    /// Server → server: cumulative-free ack for one relayed message.
    RelayAck {
        /// Travel of the acked message.
        travel: TravelId,
        /// Acking server.
        server: usize,
        /// Sequence number being acked.
        seq: u64,
        /// Attempt the ack answers (chaos-key uniqueness only).
        attempt: u64,
    },

    // --------------------------------------------- coordinator failover
    /// Failover orchestrator → successor server: take over hosting this
    /// travel's ledger under a bumped travel-epoch. Carries the durable
    /// event stream recovered from the crashed coordinator's ledger log
    /// (possibly empty when the log was unreachable); the successor
    /// replays it, then waits for every live server's [`Msg::ReAnnounce`]
    /// before deciding between "already complete" and a re-drive.
    CoordRecover {
        /// Travel id.
        travel: TravelId,
        /// Bumped travel-epoch the successor hosts under.
        epoch: u64,
        /// The plan.
        plan: Arc<Plan>,
        /// Client endpoint awaiting `TravelDone`.
        client: usize,
        /// Recovered durable ledger events.
        events: Vec<crate::coordinator::LedgerEvent>,
    },
    /// Failover orchestrator → every server: travel `travel` is now
    /// coordinated by `coordinator` under `epoch`. Receivers clear their
    /// per-travel transient state (stale work from the old execution
    /// tree), record the travel-epoch fence, and report what they told
    /// the dead coordinator via [`Msg::ReAnnounce`].
    CoordHandoff {
        /// Travel id.
        travel: TravelId,
        /// Bumped travel-epoch.
        epoch: u64,
        /// Successor coordinator server id.
        coordinator: usize,
        /// The crashed (now restarted) server, if one was restarted;
        /// `None` when the takeover re-homes a travel without restarting
        /// anything (replica promotion). Informational: every receiver
        /// restarts the travel's relay streams for the bumped epoch
        /// regardless (generational streams — see `InStream` in the
        /// server), so no targeted per-stream reset keys off this field.
        restarted: Option<usize>,
    },
    /// Server → successor coordinator: everything this server reported
    /// to the previous coordinator for `travel` (its sent-journal), so
    /// the successor can merge tracing state that never reached the
    /// durable log. Epoch-fenced: the successor ignores re-announcements
    /// for older travel-epochs.
    ReAnnounce {
        /// Travel id.
        travel: TravelId,
        /// Travel-epoch this report answers.
        epoch: u64,
        /// Reporting server.
        server: usize,
        /// Execution creations this server reported.
        created: Vec<(ExecId, u16)>,
        /// Execution terminations this server reported (with children).
        terminated: Vec<(ExecId, Vec<(ExecId, u16)>)>,
        /// Result vertices this server reported.
        results: Vec<(u16, VertexId)>,
    },

    /// Successor coordinator → failover orchestrator (client): recovery
    /// of `travel` under `epoch` is complete — the re-announce barrier
    /// closed and the travel was either directly completed or re-driven.
    /// Bounds the orchestrator's wait; without it the client would fall
    /// back to its whole-travel timeout when a handoff stalls.
    RecoverDone {
        /// Travel id.
        travel: TravelId,
        /// Travel-epoch the recovery ran under.
        epoch: u64,
    },

    // --------------------------------------- placement & shard migration
    /// Placement orchestrator (client) → every server: install this
    /// placement map if it is newer than the one held (version-fenced),
    /// then acknowledge.
    PlacementUpdate {
        /// The new map.
        map: Arc<gt_placement::PlacementMap>,
        /// Client endpoint to acknowledge to.
        client: usize,
    },
    /// Server → client: placement map at `version` is now in effect on
    /// this server (or a newer one already was).
    PlacementAck {
        /// Version being acknowledged.
        version: u64,
        /// Acknowledging server.
        server: usize,
    },
    /// Primary → replica holder: apply these replicated graph mutations
    /// (the synchronous log-shipping leg of an ingest).
    ReplicateWrite {
        /// Originating ingest request id.
        req: u64,
        /// The primary awaiting the ack.
        origin: usize,
        /// The primary's write watermark for this mutation; the replica
        /// advances its per-origin applied watermark to it (the replica
        /// side of the read barrier).
        wseq: u64,
        /// MVCC stamp the primary wrote the batch at (`None` when
        /// versioning is off). The replica applies at the same stamp so
        /// a snapshot resolves identically on every holder.
        seq: Option<u64>,
        /// Vertices to upsert.
        vertices: Vec<gt_graph::Vertex>,
        /// Edges to upsert.
        edges: Vec<gt_graph::Edge>,
    },
    /// Replica → primary: replicated write applied durably.
    ReplicateAck {
        /// Request id being acknowledged.
        req: u64,
        /// Acknowledging replica.
        server: usize,
    },
    /// Coordinator server → its ledger peers: append these encoded
    /// travel-ledger blobs to the replica copy of `from`'s ledger. With
    /// `reset`, truncate the replica first (the source ledger was reset
    /// after all its travels retired).
    ReplicateLedger {
        /// Server whose ledger is being mirrored.
        from: usize,
        /// Encoded `LedgerEvent` blobs, in append order.
        blobs: Vec<Vec<u8>>,
        /// Truncate the replica before appending.
        reset: bool,
    },
    /// Migration orchestrator (client) → source server: start migrating
    /// `partition` to server `to` — stream the snapshot, then buffer a
    /// mutation delta until cutover.
    MigrateBegin {
        /// Migration id (drawn from the travel-id namespace).
        mig: TravelId,
        /// Partition being moved.
        partition: usize,
        /// Target server.
        to: usize,
        /// Client endpoint orchestrating the migration.
        client: usize,
    },
    /// Source → target: one chunk of the partition being migrated.
    /// `phase` 0 chunks are the snapshot (segment-imported on the
    /// target); `phase` 1 chunks are the sealed mutation delta (applied
    /// through the write path so they shadow the snapshot).
    MigrateData {
        /// Migration id.
        mig: TravelId,
        /// Partition being moved.
        partition: usize,
        /// Raw `(namespace, key, value)` triples; a `None` value is a
        /// tombstone version (versioned stores ship deletes too, so a
        /// pinned snapshot resolves identically on the target).
        pairs: Vec<(String, Vec<u8>, Option<Vec<u8>>)>,
        /// 0 = snapshot, 1 = delta.
        phase: u8,
        /// Final chunk of this phase.
        last: bool,
        /// Client endpoint orchestrating the migration.
        client: usize,
    },
    /// Target → client: every chunk of `phase` has been applied.
    MigrateApplied {
        /// Migration id.
        mig: TravelId,
        /// Phase that completed (0 = snapshot, 1 = delta).
        phase: u8,
        /// Reporting (target) server.
        server: usize,
    },
    /// Client → source server: stop buffering, seal and ship the delta
    /// as phase-1 chunks.
    MigrateCutover {
        /// Migration id.
        mig: TravelId,
    },
    /// Client → source and target: the new placement map is live; drop
    /// all migration state for `mig`.
    MigrateFinish {
        /// Migration id.
        mig: TravelId,
    },

    // ------------------------------------------------- self-healing layer
    /// Server → server: liveness beacon from the failure detector. Sent
    /// raw, never relayed — losing one is exactly the signal the
    /// phi-accrual estimator is built to absorb — but it carries a chaos
    /// key, so injected drop/delay/duplication hits heartbeats like any
    /// data-plane message (false-positive suppression is tested against
    /// real jitter, not a chaos-exempt side channel).
    Heartbeat {
        /// Sending server.
        from: usize,
        /// Monotonic per-sender beacon number (chaos-key uniqueness).
        seq: u64,
        /// The sender's cumulative real-I/O visit count — a cheap load
        /// proxy for least-loaded replica-read routing.
        load: u64,
    },
    /// Monitor server → healer (client endpoint): peer `suspect`'s phi
    /// value crossed the suspicion threshold. Re-sent periodically while
    /// the suspicion stands, so a lost report cannot strand a dead
    /// primary.
    Suspect {
        /// Reporting monitor server.
        from: usize,
        /// The suspected-dead server.
        suspect: usize,
    },
    /// Healer → monitor server: verdict on a suspicion, from ground
    /// truth. `confirmed = false` is a false positive — the monitor
    /// counts it and resets its inter-arrival window for that peer so the
    /// estimator re-learns the link's real jitter.
    SuspectAck {
        /// The server that was suspected.
        suspect: usize,
        /// Was the peer actually dead?
        confirmed: bool,
    },
    /// Healer → source primary: start re-replicating `partition` to the
    /// new holder `to` — stream a snapshot, then buffer a mutation delta
    /// until cutover. Reuses the `migrate` snapshot + delta-trap
    /// machinery; only the cutover differs (the map gains a replica
    /// instead of re-pointing the primary).
    ReReplicateBegin {
        /// Flow id (drawn from the travel-id namespace).
        mig: TravelId,
        /// Partition being copied.
        partition: usize,
        /// The new replica holder.
        to: usize,
        /// Client endpoint orchestrating the flow.
        client: usize,
    },
    /// Source primary → new replica: one chunk of the partition copy.
    /// Phase semantics match [`Msg::MigrateData`] (0 = snapshot, raw
    /// import; 1 = sealed delta via the write path); each phase is acked
    /// with [`Msg::MigrateApplied`].
    ReReplicateData {
        /// Flow id.
        mig: TravelId,
        /// Partition being copied.
        partition: usize,
        /// Raw `(namespace, key, value)` triples; a `None` value is a
        /// tombstone version (versioned stores ship deletes too, so a
        /// pinned snapshot resolves identically on the target).
        pairs: Vec<(String, Vec<u8>, Option<Vec<u8>>)>,
        /// 0 = snapshot, 1 = delta.
        phase: u8,
        /// Final chunk of this phase.
        last: bool,
        /// Client endpoint orchestrating the flow.
        client: usize,
    },
    /// Healer → source primary: stop buffering, seal and ship the delta
    /// as phase-1 chunks.
    ReReplicateCutover {
        /// Flow id.
        mig: TravelId,
    },
    /// Healer → source and target: the replica is in the placement map;
    /// drop all flow state for `mig`.
    ReReplicateFinish {
        /// Flow id.
        mig: TravelId,
    },

    // -------------------------------------------------------------- misc
    /// Scripted fault: the receiving server crashes — threads exit, all
    /// in-memory state is dropped. Sent by the chaos harness.
    Crash,
    /// Stop the server's dispatcher and workers.
    Shutdown,
}

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        match self {
            Msg::Submit { plan, .. } => 24 + plan.wire_size(),
            Msg::Abort { .. } => 12,
            Msg::Cancel { .. } => 20,
            Msg::CancelAck { .. } => 20,
            Msg::ProgressQuery { .. } => 20,
            Msg::ProgressReport { snapshot, .. } => 28 + snapshot.outstanding_by_depth.len() * 10,
            Msg::TravelDone { outcome, .. } => {
                20 + outcome
                    .by_depth
                    .iter()
                    .map(|(_, v)| 2 + v.len() * 8)
                    .sum::<usize>()
            }
            Msg::SourceScan { plan, .. } => 32 + plan.wire_size(),
            Msg::Visit { items, plan, .. } => {
                // The plan rides along but is tiny next to the items.
                40 + plan.wire_size() + items.iter().map(|(_, t)| 8 + t.len() * 10).sum::<usize>()
            }
            Msg::ExecCreated { .. } => 28,
            Msg::ExecTerminated { children, .. } => 28 + children.len() * 10,
            Msg::OriginSatisfied { tokens, .. } => 36 + tokens.len() * 8,
            Msg::Results { items, .. } => 16 + items.len() * 10,
            Msg::SyncStart { plan, .. } => 36 + plan.wire_size(),
            Msg::SyncFrontier { items, .. } => {
                20 + items.iter().map(|(_, t)| 8 + t.len() * 10).sum::<usize>()
            }
            Msg::SyncOrigin { tokens, .. } => 16 + tokens.len() * 8,
            Msg::SyncStepDone {
                sent, origin_sent, ..
            } => 28 + (sent.len() + origin_sent.len()) * 12,
            Msg::Ingest {
                vertices, edges, ..
            } => {
                24 + vertices
                    .iter()
                    .map(|v| 16 + v.props.len() * 24)
                    .sum::<usize>()
                    + edges.iter().map(|e| 24 + e.props.len() * 24).sum::<usize>()
            }
            Msg::IngestAck { .. } => 20,
            Msg::GetVertex { .. } => 28,
            Msg::VertexReply { vertex, .. } => {
                16 + vertex.as_ref().map_or(0, |v| 16 + v.props.len() * 24)
            }
            Msg::CoordRecover { plan, events, .. } => {
                use crate::coordinator::LedgerEvent as Ev;
                28 + plan.wire_size()
                    + events
                        .iter()
                        .map(|e| match e {
                            Ev::Created { .. } => 28,
                            Ev::Terminated { children, .. } => 28 + children.len() * 10,
                            Ev::Results { items, .. } => 20 + items.len() * 10,
                            Ev::Snapshot {
                                created,
                                terminated,
                                results,
                                ..
                            } => {
                                32 + created.len() * 10 + terminated.len() * 8 + results.len() * 10
                            }
                        })
                        .sum::<usize>()
            }
            Msg::CoordHandoff { .. } => 32,
            Msg::ReAnnounce {
                created,
                terminated,
                results,
                ..
            } => {
                28 + created.len() * 10
                    + terminated
                        .iter()
                        .map(|(_, c)| 12 + c.len() * 10)
                        .sum::<usize>()
                    + results.len() * 10
            }
            Msg::Relay { inner, .. } => 48 + inner.wire_size(),
            Msg::RelayAck { .. } => 28,
            Msg::RecoverDone { .. } => 20,
            Msg::PlacementUpdate { map, .. } => {
                20 + map
                    .entries
                    .iter()
                    .map(|e| 8 + e.replicas.len() * 8)
                    .sum::<usize>()
                    + map.decommissioned.len()
            }
            Msg::PlacementAck { .. } => 20,
            Msg::ReplicateWrite {
                vertices, edges, ..
            } => {
                24 + vertices
                    .iter()
                    .map(|v| 16 + v.props.len() * 24)
                    .sum::<usize>()
                    + edges.iter().map(|e| 24 + e.props.len() * 24).sum::<usize>()
            }
            Msg::ReplicateAck { .. } => 20,
            Msg::ReplicateLedger { blobs, .. } => {
                16 + blobs.iter().map(|b| 4 + b.len()).sum::<usize>()
            }
            Msg::MigrateBegin { .. } => 32,
            Msg::MigrateData { pairs, .. } => {
                28 + pairs
                    .iter()
                    .map(|(ns, k, v)| 12 + ns.len() + k.len() + v.as_ref().map_or(0, Vec::len))
                    .sum::<usize>()
            }
            Msg::MigrateApplied { .. } => 24,
            Msg::MigrateCutover { .. } => 12,
            Msg::MigrateFinish { .. } => 12,
            Msg::Heartbeat { .. } => 20,
            Msg::Suspect { .. } => 16,
            Msg::SuspectAck { .. } => 12,
            Msg::ReReplicateBegin { .. } => 32,
            Msg::ReReplicateData { pairs, .. } => {
                28 + pairs
                    .iter()
                    .map(|(ns, k, v)| 12 + ns.len() + k.len() + v.as_ref().map_or(0, Vec::len))
                    .sum::<usize>()
            }
            Msg::ReReplicateCutover { .. } => 12,
            Msg::ReReplicateFinish { .. } => 12,
            Msg::Crash => 4,
            Msg::Shutdown => 4,
        }
    }

    fn traffic_class(&self) -> gt_net::TrafficClass {
        match self {
            // Snapshot chunks (migration and re-replication) ride the
            // bulk bandwidth lane so live travels aren't starved; a
            // relayed chunk inherits the class of its payload.
            Msg::MigrateData { .. } => gt_net::TrafficClass::Bulk,
            Msg::ReReplicateData { .. } => gt_net::TrafficClass::Bulk,
            Msg::Relay { inner, .. } => inner.traffic_class(),
            _ => gt_net::TrafficClass::Interactive,
        }
    }

    fn chaos_key(&self) -> Option<u64> {
        // The reliable layer's envelopes face the lossy transport; the
        // attempt counter is in the key so a retransmission re-rolls its
        // fate instead of being dropped forever. Heartbeats face it too —
        // raw and unacked, because absorbing loss and jitter is the
        // failure detector's job, and it must be tested against chaos.
        match self {
            Msg::Relay {
                travel,
                from,
                seq,
                attempt,
                ..
            } => Some(gt_net::chaos_key_of(&[
                1,
                *travel,
                *from as u64,
                *seq,
                *attempt,
            ])),
            Msg::RelayAck {
                travel,
                server,
                seq,
                attempt,
            } => Some(gt_net::chaos_key_of(&[
                2,
                *travel,
                *server as u64,
                *seq,
                *attempt,
            ])),
            Msg::Heartbeat { from, seq, .. } => {
                Some(gt_net::chaos_key_of(&[3, *from as u64, *seq]))
            }
            // Everything else rides inside a Relay envelope (or is
            // client/control traffic that bypasses chaos); listed
            // explicitly so a new wire-facing variant fails gt-lint here.
            Msg::Submit { .. }
            | Msg::Abort { .. }
            | Msg::ProgressQuery { .. }
            | Msg::ProgressReport { .. }
            | Msg::TravelDone { .. }
            | Msg::Cancel { .. }
            | Msg::CancelAck { .. }
            | Msg::SourceScan { .. }
            | Msg::Visit { .. }
            | Msg::ExecCreated { .. }
            | Msg::ExecTerminated { .. }
            | Msg::OriginSatisfied { .. }
            | Msg::Results { .. }
            | Msg::SyncStart { .. }
            | Msg::SyncFrontier { .. }
            | Msg::SyncOrigin { .. }
            | Msg::SyncStepDone { .. }
            | Msg::Ingest { .. }
            | Msg::IngestAck { .. }
            | Msg::GetVertex { .. }
            | Msg::VertexReply { .. }
            | Msg::CoordRecover { .. }
            | Msg::CoordHandoff { .. }
            | Msg::ReAnnounce { .. }
            | Msg::RecoverDone { .. }
            | Msg::PlacementUpdate { .. }
            | Msg::PlacementAck { .. }
            | Msg::ReplicateWrite { .. }
            | Msg::ReplicateAck { .. }
            | Msg::ReplicateLedger { .. }
            | Msg::MigrateBegin { .. }
            | Msg::MigrateData { .. }
            | Msg::MigrateApplied { .. }
            | Msg::MigrateCutover { .. }
            | Msg::MigrateFinish { .. }
            | Msg::Suspect { .. }
            | Msg::SuspectAck { .. }
            | Msg::ReReplicateBegin { .. }
            | Msg::ReReplicateData { .. }
            | Msg::ReReplicateCutover { .. }
            | Msg::ReReplicateFinish { .. }
            | Msg::Crash
            | Msg::Shutdown => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let plan = Arc::new(GTravel::v([1u64]).e("x").compile().unwrap());
        let small = Msg::Visit {
            travel: 1,
            depth: 0,
            exec: ExecId::new(0, 1),
            plan: plan.clone(),
            coordinator: 0,
            items: vec![(VertexId(1), vec![])],
        };
        let big = Msg::Visit {
            travel: 1,
            depth: 0,
            exec: ExecId::new(0, 1),
            plan,
            coordinator: 0,
            items: (0..100).map(|i| (VertexId(i), vec![])).collect(),
        };
        assert!(big.wire_size() > small.wire_size());
        assert!(Msg::Shutdown.wire_size() < 16);
    }

    #[test]
    fn only_relays_and_heartbeats_carry_chaos_keys() {
        let relay = Msg::Relay {
            travel: 3,
            from: 1,
            epoch: 0,
            tepoch: 0,
            seq: 5,
            attempt: 1,
            inner: Box::new(Msg::Results {
                travel: 3,
                items: vec![],
            }),
        };
        let retry = Msg::Relay {
            travel: 3,
            from: 1,
            epoch: 0,
            tepoch: 0,
            seq: 5,
            attempt: 2,
            inner: Box::new(Msg::Results {
                travel: 3,
                items: vec![],
            }),
        };
        let ack = Msg::RelayAck {
            travel: 3,
            server: 2,
            seq: 5,
            attempt: 1,
        };
        assert!(relay.chaos_key().is_some());
        assert!(ack.chaos_key().is_some());
        assert_ne!(
            relay.chaos_key(),
            retry.chaos_key(),
            "retransmissions re-roll their fate"
        );
        assert_ne!(relay.chaos_key(), ack.chaos_key());
        // Heartbeats face chaos too: each beacon rolls its own fate, so
        // a delay/drop plan jitters the detector's real input signal.
        let hb = |seq| Msg::Heartbeat {
            from: 1,
            seq,
            load: 0,
        };
        assert!(hb(7).chaos_key().is_some());
        assert_ne!(hb(7).chaos_key(), hb(8).chaos_key());
        assert_ne!(hb(7).chaos_key(), relay.chaos_key());
        // Control plane stays exempt — including the suspicion verdicts
        // and re-replication control (the healer's out-of-band channel).
        assert_eq!(Msg::Abort { travel: 3 }.chaos_key(), None);
        assert_eq!(
            Msg::Suspect {
                from: 0,
                suspect: 1
            }
            .chaos_key(),
            None
        );
        assert_eq!(
            Msg::SuspectAck {
                suspect: 1,
                confirmed: true
            }
            .chaos_key(),
            None
        );
        assert_eq!(Msg::ReReplicateCutover { mig: 4 }.chaos_key(), None);
        assert_eq!(Msg::Crash.chaos_key(), None);
        assert_eq!(Msg::Shutdown.chaos_key(), None);
        // The envelope charges for its header plus the payload.
        let inner = Msg::Results {
            travel: 3,
            items: vec![],
        };
        assert_eq!(relay.wire_size(), 48 + inner.wire_size());
        assert_eq!(ack.wire_size(), 28);
        // Failover control messages stay chaos-exempt (they model the
        // orchestrator's out-of-band channel, like Crash/Shutdown).
        let handoff = Msg::CoordHandoff {
            travel: 3,
            epoch: 1,
            coordinator: 2,
            restarted: Some(1),
        };
        assert_eq!(handoff.chaos_key(), None);
        assert!(handoff.wire_size() > 0);
        let reann = Msg::ReAnnounce {
            travel: 3,
            epoch: 1,
            server: 0,
            created: vec![(ExecId::new(0, 1), 0)],
            terminated: vec![(ExecId::new(0, 1), vec![(ExecId::new(1, 1), 1)])],
            results: vec![(1, VertexId(9))],
        };
        assert_eq!(reann.chaos_key(), None);
        assert!(reann.wire_size() > 28);
    }

    #[test]
    fn migrate_data_rides_the_bulk_lane() {
        use gt_net::TrafficClass;
        let chunk = Msg::MigrateData {
            mig: 9,
            partition: 1,
            pairs: vec![("verts".to_string(), vec![0u8; 8], Some(vec![1u8; 32]))],
            phase: 0,
            last: false,
            client: 3,
        };
        assert_eq!(chunk.traffic_class(), TrafficClass::Bulk);
        assert!(chunk.wire_size() > 40, "chunk charges for its payload");
        // A relayed chunk inherits the class; everything else stays
        // interactive.
        let relayed = Msg::Relay {
            travel: 9,
            from: 0,
            epoch: 0,
            tepoch: 0,
            seq: 1,
            attempt: 1,
            inner: Box::new(chunk),
        };
        assert_eq!(relayed.traffic_class(), TrafficClass::Bulk);
        assert_eq!(Msg::Crash.traffic_class(), TrafficClass::Interactive);
        assert_eq!(
            Msg::MigrateCutover { mig: 9 }.traffic_class(),
            TrafficClass::Interactive
        );
        // Re-replication chunks share the bulk lane with migration;
        // their control plane and heartbeats stay interactive.
        let rr = Msg::ReReplicateData {
            mig: 9,
            partition: 1,
            pairs: vec![("verts".to_string(), vec![0u8; 8], Some(vec![1u8; 32]))],
            phase: 0,
            last: false,
            client: 3,
        };
        assert_eq!(rr.traffic_class(), TrafficClass::Bulk);
        assert!(rr.wire_size() > 40, "chunk charges for its payload");
        assert_eq!(
            Msg::Heartbeat {
                from: 0,
                seq: 1,
                load: 0
            }
            .traffic_class(),
            TrafficClass::Interactive
        );
    }

    #[test]
    fn progress_outstanding() {
        let p = ProgressSnapshot {
            created: 10,
            terminated: 7,
            outstanding_by_depth: vec![(1, 3)],
        };
        assert_eq!(p.outstanding(), 3);
    }
}
