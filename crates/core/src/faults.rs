//! Straggler and delay injection (the Fig. 11 experiment model).
//!
//! §VII-C: "Servers may experience transient straggling behavior because
//! of concurrent I/O activity from other traversals or external
//! applications. … we emulated this phenomenon by inserting fixed (50 ms)
//! delay into individual vertex data accesses. Each time, multiple delays
//! (500 times…) were created to emulate a straggler that lasts a certain
//! period of time." A [`Straggler`] is exactly that: on a chosen server,
//! starting at a chosen traversal step, the next `count` vertex accesses
//! each pay `delay` extra.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One transient straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Straggler {
    /// Server the interference lands on.
    pub server: usize,
    /// Traversal step (depth) at which the interference is active.
    pub step: u16,
    /// Extra latency per affected vertex access.
    pub delay: Duration,
    /// Number of vertex accesses affected.
    pub count: u64,
}

/// A set of stragglers for one experiment run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The stragglers to inject.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's Fig. 11 configuration, parameterized: three stragglers
    /// placed round-robin over `servers` at steps 1, 3 and 7 (clamped to
    /// the traversal depth), each delaying `count` accesses by `delay`.
    pub fn round_robin_stragglers(
        servers: &[usize],
        depth: u16,
        delay: Duration,
        count: u64,
    ) -> Self {
        let steps = [1u16, 3, 7];
        let stragglers = steps
            .iter()
            .filter(|&&s| s <= depth)
            .enumerate()
            .map(|(i, &step)| Straggler {
                server: servers[i % servers.len()],
                step,
                delay,
                count,
            })
            .collect();
        FaultPlan { stragglers }
    }

    /// Instantiate the runtime state for one server.
    pub fn for_server(&self, server: usize) -> ServerFaults {
        ServerFaults {
            slots: self
                .stragglers
                .iter()
                .filter(|s| s.server == server)
                .map(|s| FaultSlot {
                    step: s.step,
                    delay: s.delay,
                    remaining: AtomicU64::new(s.count),
                })
                .collect(),
        }
    }

    /// True when no faults are configured.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty()
    }
}

/// A scripted server crash: "crash server `server` after `after_messages`
/// frontier messages at step ≥ `step`". Frontier messages are the
/// data-plane traversal messages (`Visit`, `SourceScan`, `SyncFrontier`);
/// counting them gives a workload-relative trigger that lands mid-travel
/// regardless of graph size. With `coordinator_events` set, the counter
/// instead runs over the coordinator-role tracing messages
/// (`ExecCreated`, `ExecTerminated`, `Results`, `SyncStepDone`), so the
/// crash reliably lands on a server while it is *hosting a ledger* — the
/// failover path's target. A crash point fires at most once per plan — a
/// restarted server does not re-arm it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Server that dies.
    pub server: usize,
    /// Traversal step (depth) at or after which the counter runs
    /// (ignored for coordinator-event triggers).
    pub step: u16,
    /// Number of qualifying messages to absorb before crashing.
    pub after_messages: u64,
    /// Count coordinator-role tracing messages instead of frontier
    /// messages.
    pub coordinator_events: bool,
}

impl CrashPoint {
    /// Frontier-message trigger (the PR 2 shape).
    pub fn frontier(server: usize, step: u16, after_messages: u64) -> Self {
        CrashPoint {
            server,
            step,
            after_messages,
            coordinator_events: false,
        }
    }

    /// Coordinator-event trigger: crash `server` after it absorbs
    /// `after_messages` ledger-tracing messages for travels it hosts.
    pub fn coordinator(server: usize, after_messages: u64) -> Self {
        CrashPoint {
            server,
            step: 0,
            after_messages,
            coordinator_events: true,
        }
    }
}

/// Seeded chaos model for one experiment run: lossy-transport
/// probabilities applied to inter-server traffic plus scripted crash
/// points. The transport faults are realized by the fabric's pure
/// decision function (`gt_net::ChaosConfig`), so the same seed replays
/// the same fault schedule (FoundationDB-style determinism).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability an inter-server data-plane message is dropped.
    pub drop: f64,
    /// Probability an inter-server data-plane message is duplicated.
    pub duplicate: f64,
    /// Probability an inter-server data-plane message is delayed.
    pub delay: f64,
    /// Maximum injected extra delay.
    pub max_delay: Duration,
    /// When true, delayed/duplicated messages may overtake later sends.
    pub reorder: bool,
    /// Scripted server crash points.
    pub crashes: Vec<CrashPoint>,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl ChaosPlan {
    /// No chaos: the transport behaves exactly as without this layer.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay: Duration::ZERO,
            reorder: false,
            crashes: Vec::new(),
        }
    }

    /// True when this plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.delay <= 0.0
            && !self.reorder
            && self.crashes.is_empty()
    }

    /// A representative lossy schedule: 8% drop, 8% duplication, 20%
    /// delay up to 2 ms with reordering. Meets the harness's "≥5% drop,
    /// ≥5% dup, reordering" bar.
    pub fn lossy(seed: u64) -> Self {
        ChaosPlan {
            seed,
            drop: 0.08,
            duplicate: 0.08,
            delay: 0.2,
            max_delay: Duration::from_millis(2),
            reorder: true,
            crashes: Vec::new(),
        }
    }

    /// Whether this plan requires the reliable-delivery layer (sequence
    /// numbers, acks, retransmission, epoch fencing). Any transport fault
    /// or crash does; pure `none()` does not, keeping the fast path
    /// byte-identical to the pre-chaos engine.
    pub fn requires_reliable_delivery(&self) -> bool {
        !self.is_none()
    }

    /// Lower this plan to the fabric's chaos model. `n_servers` bounds
    /// the scope so client links (endpoints ≥ n_servers) are exempt:
    /// chaos models a hostile backend interconnect, while the client
    /// channel stands in for the RPC front door with its own retry story.
    pub fn net_chaos(&self, n_servers: usize) -> gt_net::ChaosConfig {
        if self.drop <= 0.0 && self.duplicate <= 0.0 && self.delay <= 0.0 {
            return gt_net::ChaosConfig::off();
        }
        gt_net::ChaosConfig {
            seed: self.seed,
            drop_prob: self.drop,
            dup_prob: self.duplicate,
            delay_prob: self.delay,
            max_delay: self.max_delay,
            reorder: self.reorder,
            scope: n_servers,
        }
    }

    /// The crash point scripted for `server`, if any (first match wins).
    pub fn crash_for(&self, server: usize) -> Option<CrashPoint> {
        self.crashes.iter().copied().find(|c| c.server == server)
    }
}

/// Sleep for `d`, spinning only when the duration is below OS timer
/// granularity. An interfered thread must release the CPU (the straggler
/// models *I/O* interference, not compute), so genuine sleep is the
/// default.
pub fn sleep_exact(d: Duration) {
    if d >= Duration::from_micros(100) {
        std::thread::sleep(d);
        return;
    }
    let start = std::time::Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[derive(Debug)]
struct FaultSlot {
    step: u16,
    delay: Duration,
    remaining: AtomicU64,
}

/// Per-server runtime straggler state, consulted on every vertex access.
#[derive(Debug, Default)]
pub struct ServerFaults {
    slots: Vec<FaultSlot>,
}

impl ServerFaults {
    /// If a straggler is active for `step`, consume one delay credit and
    /// return the delay to sleep; `None` otherwise. Both engines call this
    /// at the same point (just before the storage access) so they face
    /// identical interference (§VII-C: "the two traversal engines are
    /// facing the same amount of external delays").
    pub fn charge(&self, step: u16) -> Option<Duration> {
        for slot in &self.slots {
            if slot.step != step {
                continue;
            }
            // Decrement one credit if any remain. AcqRel on the winning
            // exchange orders the credit handoff between the two engine
            // threads racing here, so a consumed credit is visible before
            // either thread acts on the delay it bought.
            let mut cur = slot.remaining.load(Ordering::Acquire);
            while cur > 0 {
                match slot.remaining.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some(slot.delay),
                    Err(now) => cur = now,
                }
            }
        }
        None
    }

    /// Remaining delay credits across all slots (diagnostics).
    pub fn remaining(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.remaining.load(Ordering::Acquire))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_consumes_credits_for_matching_step() {
        let plan = FaultPlan {
            stragglers: vec![Straggler {
                server: 2,
                step: 3,
                delay: Duration::from_millis(50),
                count: 2,
            }],
        };
        let f = plan.for_server(2);
        assert_eq!(f.charge(1), None);
        assert_eq!(f.charge(3), Some(Duration::from_millis(50)));
        assert_eq!(f.charge(3), Some(Duration::from_millis(50)));
        assert_eq!(f.charge(3), None, "credits exhausted");
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn other_servers_unaffected() {
        let plan = FaultPlan {
            stragglers: vec![Straggler {
                server: 2,
                step: 1,
                delay: Duration::from_millis(1),
                count: 10,
            }],
        };
        let f = plan.for_server(0);
        assert_eq!(f.charge(1), None);
        assert_eq!(f.remaining(), 0);
    }

    #[test]
    fn round_robin_matches_paper_shape() {
        let plan =
            FaultPlan::round_robin_stragglers(&[4, 9, 13], 8, Duration::from_millis(50), 500);
        assert_eq!(plan.stragglers.len(), 3);
        assert_eq!(
            plan.stragglers.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![1, 3, 7]
        );
        assert_eq!(
            plan.stragglers.iter().map(|s| s.server).collect::<Vec<_>>(),
            vec![4, 9, 13]
        );
        // Shallow traversals clamp the step list.
        let plan = FaultPlan::round_robin_stragglers(&[0], 2, Duration::ZERO, 1);
        assert_eq!(plan.stragglers.len(), 1);
    }

    #[test]
    fn chaos_plan_none_is_inert() {
        let p = ChaosPlan::none();
        assert!(p.is_none());
        assert!(!p.requires_reliable_delivery());
        assert!(p.net_chaos(4).is_off());
        assert_eq!(p.crash_for(0), None);
    }

    #[test]
    fn chaos_plan_lossy_meets_harness_bar() {
        let p = ChaosPlan::lossy(7);
        assert!(p.drop >= 0.05 && p.duplicate >= 0.05 && p.reorder);
        assert!(p.requires_reliable_delivery());
        let net = p.net_chaos(3);
        assert_eq!(net.seed, 7);
        assert_eq!(net.scope, 3);
        assert!(net.applies_to_link(0, 2));
        assert!(!net.applies_to_link(0, 3), "client link exempt");
    }

    #[test]
    fn crash_only_plan_requires_reliability_but_no_net_chaos() {
        let p = ChaosPlan {
            crashes: vec![CrashPoint::frontier(1, 2, 10)],
            ..ChaosPlan::none()
        };
        assert!(!p.is_none());
        assert!(p.requires_reliable_delivery());
        assert!(p.net_chaos(4).is_off(), "no transport faults configured");
        assert_eq!(p.crash_for(1), Some(CrashPoint::frontier(1, 2, 10)));
        assert_eq!(p.crash_for(0), None);
    }

    #[test]
    fn coordinator_crash_point_shape() {
        let c = CrashPoint::coordinator(2, 5);
        assert!(c.coordinator_events);
        assert_eq!((c.server, c.after_messages), (2, 5));
        let p = ChaosPlan {
            crashes: vec![c],
            ..ChaosPlan::none()
        };
        assert!(p.requires_reliable_delivery());
        assert_eq!(p.crash_for(2), Some(c));
    }

    #[test]
    fn concurrent_charges_never_overspend() {
        let plan = FaultPlan {
            stragglers: vec![Straggler {
                server: 0,
                step: 1,
                delay: Duration::from_nanos(1),
                count: 1000,
            }],
        };
        let f = std::sync::Arc::new(plan.for_server(0));
        let hits: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let f = f.clone();
                    s.spawn(move || (0..1000).filter(|_| f.charge(1).is_some()).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(hits, 1000, "exactly `count` credits must be granted");
    }
}
