//! Per-tenant quality of service for the front door.
//!
//! Servers are tenant-blind: QoS happens entirely at admission, before a
//! travel's `Submit` reaches the cluster. The gate does three things —
//!
//! 1. **Weighted priority.** Each tenant's weight is stamped onto the
//!    compiled plan ([`crate::lang::Plan::qos_weight`]); the merging
//!    queue multiplies it into its per-travel fair-share weight, so under
//!    saturation a weight-4 tenant is admitted work at ~4× the rate of a
//!    weight-1 tenant sharing the same servers.
//! 2. **Rate limiting.** An optional token bucket per tenant. A tenant
//!    over its rate is refused with a retry hint instead of queueing,
//!    so a throttled tenant cannot build a backlog that perturbs others.
//! 3. **Accounting.** Per-tenant counters for admitted / throttled /
//!    completed / cancelled-by-disconnect requests. With QoS disabled
//!    (the default) the gate is never consulted and every counter reads
//!    exactly zero.
//!
//! Deadlines ride alongside: the front door turns a client's
//! `deadline_ms` into a bounded wait and maps expiry onto the engine's
//! existing [`crate::cluster::TravelError::Timeout`].

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Rate limit for one tenant: a token bucket refilled continuously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity — the largest burst admitted at once.
    pub capacity: f64,
    /// Sustained refill rate, requests per second.
    pub per_second: f64,
}

/// Per-tenant policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Fair-share weight multiplier (floored at 1). Relative: a tenant
    /// with weight 4 gets ~4× the admitted throughput of weight 1 when
    /// both saturate the cluster.
    pub weight: u32,
    /// Optional request-rate cap; `None` = unlimited.
    pub rate: Option<RateLimit>,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1,
            rate: None,
        }
    }
}

/// Front-door QoS policy: per-tenant weights and rate limits.
#[derive(Debug, Clone, Default)]
pub struct QosConfig {
    /// Master switch. Off ⇒ the gate is bypassed entirely and all
    /// [`QosCounters`] stay zero.
    pub enabled: bool,
    /// Policy for tenants named here; unnamed tenants get
    /// [`TenantSpec::default`].
    pub tenants: BTreeMap<String, TenantSpec>,
}

impl QosConfig {
    /// An enabled policy with no per-tenant entries (every tenant gets
    /// the defaults — useful to turn accounting on by itself).
    pub fn enabled() -> Self {
        QosConfig {
            enabled: true,
            tenants: BTreeMap::new(),
        }
    }

    /// Builder-style: set one tenant's spec.
    pub fn tenant(mut self, name: impl Into<String>, spec: TenantSpec) -> Self {
        self.tenants.insert(name.into(), spec);
        self
    }

    /// Builder-style: set one tenant's weight, keeping any rate limit.
    pub fn weight(mut self, name: impl Into<String>, weight: u32) -> Self {
        self.tenants.entry(name.into()).or_default().weight = weight.max(1);
        self
    }

    /// Builder-style: cap one tenant's request rate.
    pub fn rate(mut self, name: impl Into<String>, capacity: f64, per_second: f64) -> Self {
        self.tenants.entry(name.into()).or_default().rate = Some(RateLimit {
            capacity: capacity.max(1.0),
            per_second: per_second.max(0.0),
        });
        self
    }

    /// The effective spec for a tenant name.
    pub fn spec_for(&self, tenant: &str) -> TenantSpec {
        self.tenants.get(tenant).cloned().unwrap_or_default()
    }
}

/// Per-tenant counters. Monotonic; all zero when QoS is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QosCounters {
    /// Requests admitted past the gate.
    pub admitted: u64,
    /// Requests refused by the rate limiter.
    pub throttled: u64,
    /// Admitted requests that finished (ok or engine error).
    pub completed: u64,
    /// In-flight requests retired because the tenant's connection died.
    pub cancelled_on_disconnect: u64,
    /// Admitted requests that missed their client deadline.
    pub deadline_missed: u64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

#[derive(Debug, Default)]
struct GateState {
    buckets: BTreeMap<String, Bucket>,
    counters: BTreeMap<String, QosCounters>,
}

/// Admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Run it; stamp this weight onto the plan.
    Admit {
        /// Fair-share multiplier for the plan's `qos_weight`.
        weight: u32,
    },
    /// Refuse it; the tenant may retry after roughly this long.
    Throttle {
        /// Time until the token bucket recovers one token.
        retry_after: Duration,
    },
}

/// The front door's admission gate. Cheap to share behind an `Arc`;
/// every operation is a short lock.
#[derive(Debug)]
pub struct QosGate {
    cfg: QosConfig,
    state: Mutex<GateState>,
}

impl QosGate {
    /// A gate enforcing `cfg`.
    pub fn new(cfg: QosConfig) -> Self {
        QosGate {
            cfg,
            state: Mutex::new(GateState::default()),
        }
    }

    /// Whether the gate is live. When false, callers skip it entirely.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Gate one request from `tenant` at time `now`. Disabled gates
    /// admit everything at neutral weight without touching counters.
    pub fn admit_at(&self, tenant: &str, now: Instant) -> Admission {
        if !self.cfg.enabled {
            return Admission::Admit { weight: 1 };
        }
        let spec = self.cfg.spec_for(tenant);
        let mut st = self.state.lock();
        if let Some(rate) = spec.rate {
            let bucket = st.buckets.entry(tenant.to_string()).or_insert(Bucket {
                tokens: rate.capacity,
                last: now,
            });
            let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
            bucket.last = now;
            bucket.tokens = (bucket.tokens + dt * rate.per_second).min(rate.capacity);
            if bucket.tokens < 1.0 {
                let deficit = 1.0 - bucket.tokens;
                let retry_after = if rate.per_second > 0.0 {
                    Duration::from_secs_f64(deficit / rate.per_second)
                } else {
                    // No refill: the bucket never recovers; report a
                    // sentinel pause rather than dividing by zero.
                    Duration::from_secs(3600)
                };
                st.counters.entry(tenant.to_string()).or_default().throttled += 1;
                return Admission::Throttle { retry_after };
            }
            bucket.tokens -= 1.0;
        }
        st.counters.entry(tenant.to_string()).or_default().admitted += 1;
        Admission::Admit {
            weight: spec.weight.max(1),
        }
    }

    /// Gate one request from `tenant` now.
    pub fn admit(&self, tenant: &str) -> Admission {
        self.admit_at(tenant, Instant::now())
    }

    /// Record that an admitted request finished.
    pub fn completed(&self, tenant: &str) {
        if !self.cfg.enabled {
            return;
        }
        self.state
            .lock()
            .counters
            .entry(tenant.to_string())
            .or_default()
            .completed += 1;
    }

    /// Record `n` in-flight requests retired by a connection drop.
    pub fn cancelled_on_disconnect(&self, tenant: &str, n: u64) {
        if !self.cfg.enabled || n == 0 {
            return;
        }
        self.state
            .lock()
            .counters
            .entry(tenant.to_string())
            .or_default()
            .cancelled_on_disconnect += n;
    }

    /// Record a missed client deadline.
    pub fn deadline_missed(&self, tenant: &str) {
        if !self.cfg.enabled {
            return;
        }
        self.state
            .lock()
            .counters
            .entry(tenant.to_string())
            .or_default()
            .deadline_missed += 1;
    }

    /// Snapshot of one tenant's counters (zeroes for unknown tenants).
    pub fn counters(&self, tenant: &str) -> QosCounters {
        self.state
            .lock()
            .counters
            .get(tenant)
            .copied()
            .unwrap_or_default()
    }

    /// Snapshot of every tenant's counters.
    pub fn all_counters(&self) -> BTreeMap<String, QosCounters> {
        self.state.lock().counters.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_gate_admits_everything_and_counts_nothing() {
        let gate = QosGate::new(QosConfig::default());
        for _ in 0..100 {
            assert_eq!(gate.admit("t"), Admission::Admit { weight: 1 });
        }
        gate.completed("t");
        gate.cancelled_on_disconnect("t", 3);
        gate.deadline_missed("t");
        assert_eq!(gate.counters("t"), QosCounters::default());
        assert!(gate.all_counters().is_empty());
    }

    #[test]
    fn weights_come_from_config() {
        let gate = QosGate::new(QosConfig::enabled().weight("gold", 4));
        assert_eq!(gate.admit("gold"), Admission::Admit { weight: 4 });
        assert_eq!(gate.admit("anon"), Admission::Admit { weight: 1 });
    }

    #[test]
    fn token_bucket_throttles_and_refills() {
        let gate = QosGate::new(QosConfig::enabled().rate("t", 2.0, 10.0));
        let t0 = Instant::now();
        assert!(matches!(gate.admit_at("t", t0), Admission::Admit { .. }));
        assert!(matches!(gate.admit_at("t", t0), Admission::Admit { .. }));
        let Admission::Throttle { retry_after } = gate.admit_at("t", t0) else {
            panic!("third immediate request should throttle");
        };
        assert!(retry_after <= Duration::from_millis(150));
        // 200 ms at 10/s refills two tokens.
        let t1 = t0 + Duration::from_millis(200);
        assert!(matches!(gate.admit_at("t", t1), Admission::Admit { .. }));
        assert!(matches!(gate.admit_at("t", t1), Admission::Admit { .. }));
        assert!(matches!(gate.admit_at("t", t1), Admission::Throttle { .. }));
        let c = gate.counters("t");
        assert_eq!(c.admitted, 4);
        assert_eq!(c.throttled, 2);
    }

    #[test]
    fn throttling_one_tenant_never_touches_another() {
        let gate = QosGate::new(QosConfig::enabled().rate("capped", 1.0, 0.5));
        let t0 = Instant::now();
        assert!(matches!(
            gate.admit_at("capped", t0),
            Admission::Admit { .. }
        ));
        assert!(matches!(
            gate.admit_at("capped", t0),
            Admission::Throttle { .. }
        ));
        for _ in 0..50 {
            assert!(matches!(gate.admit_at("free", t0), Admission::Admit { .. }));
        }
        assert_eq!(gate.counters("free").admitted, 50);
        assert_eq!(gate.counters("free").throttled, 0);
    }

    #[test]
    fn lifecycle_counters_accumulate() {
        let gate = QosGate::new(QosConfig::enabled());
        gate.admit("t");
        gate.completed("t");
        gate.cancelled_on_disconnect("t", 2);
        gate.deadline_missed("t");
        let c = gate.counters("t");
        assert_eq!(
            (
                c.admitted,
                c.completed,
                c.cancelled_on_disconnect,
                c.deadline_missed
            ),
            (1, 1, 2, 1)
        );
    }
}
