//! The cluster's front door: a [`gt_proto`] listener that real clients
//! connect to over TCP or UDS.
//!
//! The paper's client API (§IV-A) ships whole GTravel instances to a
//! chosen backend server; everything in this repo before the front door
//! did that through in-process method calls. [`FrontDoor`] exposes the
//! same contract over the versioned wire protocol: a connection says
//! hello (version negotiation + tenant identity), then submits GTravel
//! programs in the `parse.rs` grammar and receives typed results,
//! progress snapshots, and errors.
//!
//! Per-tenant QoS happens here and only here ([`crate::qos`]): servers
//! stay tenant-blind. The gate stamps each admitted plan's
//! [`Plan::qos_weight`], refuses over-rate tenants with a retry hint,
//! enforces per-request deadlines through the engine's own timeout
//! machinery, and — when a connection dies — retires the tenant's
//! in-flight travels through the existing cancel path so abandoned work
//! stops consuming the cluster.
//!
//! The door serves any [`Backend`]:
//! - [`ClusterState`] — the in-process cluster (single-process
//!   deployments, tests, benches; results are oracle-identical to
//!   calling [`ClusterState::submit`] directly).
//! - [`Agent`] — a thin remote client over a [`Conduit`], for
//!   multi-process deployments where each `gt-server` process hosts one
//!   backend server plus a front door.

use crate::cluster::{ClusterError, ClusterState, Ticket, TravelError, TravelResult};
use crate::lang::Plan;
use crate::message::{Msg, ProgressSnapshot};
use crate::qos::{Admission, QosConfig, QosGate};
use crate::TravelId;
use gt_proto::{negotiate, read_frame, send_server, ClientMsg, ServerMsg, WireError, WireProgress};
use gt_transport::{Conduit, SocketAddrSpec};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timeout applied to requests that carry no explicit deadline.
const DEFAULT_DEADLINE: Duration = Duration::from_secs(60);
/// The agent's receive slice while pumping its conduit.
const AGENT_SLICE: Duration = Duration::from_millis(10);
/// How long [`Agent::cancel`] waits for every server's ack.
const CANCEL_DEADLINE: Duration = Duration::from_secs(30);

// ------------------------------------------------------------- backend

/// What the front door needs from an execution engine. Implemented by
/// the in-process [`ClusterState`] and by the remote [`Agent`].
pub trait Backend: Send + Sync + 'static {
    /// Handle onto one in-flight travel.
    type Ticket: Clone + Send + Sync + 'static;
    /// Dispatch a compiled plan (QoS weight already stamped).
    fn begin(&self, plan: Arc<Plan>) -> Result<Self::Ticket, ClusterError>;
    /// Block until completion or `timeout`. On timeout the travel is
    /// aborted cluster-wide before the error returns.
    fn wait(&self, t: &Self::Ticket, timeout: Duration) -> Result<TravelResult, ClusterError>;
    /// Cancel an in-flight travel (retires it on every server).
    fn cancel(&self, t: &Self::Ticket) -> Result<bool, ClusterError>;
    /// Progress snapshot from the travel's coordinator.
    fn progress(&self, t: &Self::Ticket) -> Result<ProgressSnapshot, ClusterError>;
}

impl Backend for ClusterState {
    type Ticket = Ticket;
    fn begin(&self, plan: Arc<Plan>) -> Result<Ticket, ClusterError> {
        self.start_plan(plan)
    }
    fn wait(&self, t: &Ticket, timeout: Duration) -> Result<TravelResult, ClusterError> {
        ClusterState::wait(self, t, timeout)
    }
    fn cancel(&self, t: &Ticket) -> Result<bool, ClusterError> {
        ClusterState::cancel(self, t)
    }
    fn progress(&self, t: &Ticket) -> Result<ProgressSnapshot, ClusterError> {
        ClusterState::progress(self, t)
    }
}

// --------------------------------------------------------------- agent

/// Handle onto a travel dispatched through an [`Agent`].
#[derive(Debug, Clone, Copy)]
pub struct AgentTicket {
    travel: TravelId,
    coordinator: usize,
    started: Instant,
}

impl AgentTicket {
    /// The travel id this ticket tracks.
    pub fn travel(&self) -> TravelId {
        self.travel
    }
}

/// Messages received while a waiter was looking for something else,
/// keyed for the waiter they belong to.
#[derive(Default)]
struct AgentMailbox {
    done: HashMap<TravelId, crate::message::TravelOutcome>,
    progress: HashMap<TravelId, ProgressSnapshot>,
    cancel_acks: HashMap<TravelId, usize>,
    cancelled: BTreeSet<TravelId>,
    /// Whether some thread currently owns the conduit's receive side.
    pumping: bool,
}

/// A minimal remote client for one cluster: submits travels over a
/// [`Conduit`] endpoint and sorts the replies to concurrent waiters.
///
/// Unlike [`ClusterState`] it performs no failover orchestration — it is
/// the multi-process front door's path to servers it does not host, and
/// in that deployment a dead server is a dead process, restarted from
/// the outside. Travel ids embed the agent's endpoint id in their high
/// bits so concurrent agents in different processes never collide.
pub struct Agent {
    ep: Conduit<Msg>,
    n_servers: usize,
    ctr: AtomicU64,
    mail: Mutex<AgentMailbox>,
    cv: Condvar,
}

impl Agent {
    /// Wrap a client endpoint. `n_servers` is the number of backend
    /// servers (endpoints `0..n_servers` on the same fabric/mesh).
    pub fn new(ep: Conduit<Msg>, n_servers: usize) -> Agent {
        Agent {
            ep,
            n_servers,
            ctr: AtomicU64::new(1),
            mail: Mutex::new(AgentMailbox::default()),
            cv: Condvar::new(),
        }
    }

    /// Pump the conduit until `pick` yields, the deadline passes, or the
    /// conduit closes. Concurrent callers share one receive side: the
    /// thread holding the `pumping` flag receives and stashes for all.
    fn await_mail<R>(
        &self,
        deadline: Instant,
        mut pick: impl FnMut(&mut AgentMailbox) -> Option<R>,
    ) -> Result<Option<R>, ClusterError> {
        loop {
            let i_pump = {
                let mut mb = self.mail.lock();
                if let Some(r) = pick(&mut mb) {
                    return Ok(Some(r));
                }
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                if mb.pumping {
                    // Someone else is receiving; sleep until they stash.
                    self.cv.wait_for(&mut mb, AGENT_SLICE);
                    false
                } else {
                    mb.pumping = true;
                    true
                }
            };
            if i_pump {
                let r = self.ep.recv_timeout(AGENT_SLICE);
                let mut mb = self.mail.lock();
                mb.pumping = false;
                match r {
                    Ok(env) => match env.msg {
                        Msg::TravelDone { travel, outcome } => {
                            mb.done.insert(travel, outcome);
                        }
                        Msg::ProgressReport { travel, snapshot } => {
                            mb.progress.insert(travel, snapshot);
                        }
                        Msg::CancelAck { travel, .. } => {
                            *mb.cancel_acks.entry(travel).or_insert(0) += 1;
                        }
                        // Anything else addressed to a client endpoint is
                        // an artifact of a path the agent does not drive
                        // (no ingest, no placement orchestration).
                        // gt-lint: allow(wildcard-arm, "agent drives only submit/cancel/progress; the full Msg dispatch audit lives in server.rs and cluster.rs")
                        _ => {}
                    },
                    Err(gt_net::RecvError::Timeout) => {}
                    Err(gt_net::RecvError::Closed) => {
                        drop(mb);
                        return Err(ClusterError::Disconnected);
                    }
                }
                self.cv.notify_all();
            }
        }
    }
}

impl Backend for Agent {
    type Ticket = AgentTicket;

    fn begin(&self, plan: Arc<Plan>) -> Result<AgentTicket, ClusterError> {
        // High bits: endpoint id. Low bits: local counter. Distinct
        // agents (distinct endpoints) thus mint disjoint id ranges.
        let travel = ((self.ep.id() as u64) << 48) | self.ctr.fetch_add(1, Ordering::Relaxed);
        let coordinator = (travel as usize) % self.n_servers;
        self.ep
            .send(
                coordinator,
                Msg::Submit {
                    travel,
                    plan,
                    client: self.ep.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        Ok(AgentTicket {
            travel,
            coordinator,
            started: Instant::now(),
        })
    }

    fn wait(&self, t: &AgentTicket, timeout: Duration) -> Result<TravelResult, ClusterError> {
        let travel = t.travel;
        let got = self.await_mail(Instant::now() + timeout, |mb| {
            if mb.cancelled.contains(&travel) {
                return Some(None);
            }
            mb.done.remove(&travel).map(Some)
        })?;
        match got {
            Some(Some(outcome)) => Ok(TravelResult::from_outcome(outcome, t.started.elapsed(), 0)),
            Some(None) => Err(ClusterError::Travel(TravelError::Cancelled { travel })),
            None => {
                // Deadline: abort everywhere so the cluster stops
                // spending on a result nobody will read.
                for s in 0..self.n_servers {
                    let _ = self.ep.send(s, Msg::Abort { travel });
                }
                Err(ClusterError::Travel(TravelError::Timeout {
                    attempts: 1,
                    last_progress: None,
                }))
            }
        }
    }

    fn cancel(&self, t: &AgentTicket) -> Result<bool, ClusterError> {
        let travel = t.travel;
        for s in 0..self.n_servers {
            self.ep
                .send(
                    s,
                    Msg::Cancel {
                        travel,
                        client: self.ep.id(),
                    },
                )
                .map_err(|_| ClusterError::Disconnected)?;
        }
        let n = self.n_servers;
        let acked = self
            .await_mail(Instant::now() + CANCEL_DEADLINE, |mb| {
                (mb.cancel_acks.get(&travel).copied().unwrap_or(0) >= n).then_some(())
            })?
            .is_some();
        let mut mb = self.mail.lock();
        mb.cancel_acks.remove(&travel);
        mb.cancelled.insert(travel);
        // A completion may have raced the cancellation.
        mb.done.remove(&travel);
        drop(mb);
        self.cv.notify_all();
        Ok(acked)
    }

    fn progress(&self, t: &AgentTicket) -> Result<ProgressSnapshot, ClusterError> {
        self.ep
            .send(
                t.coordinator,
                Msg::ProgressQuery {
                    travel: t.travel,
                    client: self.ep.id(),
                },
            )
            .map_err(|_| ClusterError::Disconnected)?;
        let travel = t.travel;
        self.await_mail(Instant::now() + Duration::from_secs(10), |mb| {
            mb.progress.remove(&travel)
        })?
        .ok_or(ClusterError::Travel(TravelError::Timeout {
            attempts: 1,
            last_progress: None,
        }))
    }
}

// ------------------------------------------------------------- sockets

/// A connected client stream, TCP or UDS.
enum Sock {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Sock {
    fn try_clone(&self) -> std::io::Result<Sock> {
        Ok(match self {
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
            Sock::Uds(s) => Sock::Uds(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Sock::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Sock::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Tcp(s) => s.flush(),
            Sock::Uds(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Sock> {
        // Request/response frames are small and written in two syscalls
        // (length prefix, then payload); without TCP_NODELAY, Nagle +
        // delayed ACK turns every round-trip into tens of milliseconds.
        Ok(match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Sock::Tcp(s)
            }
            Listener::Uds(l) => Sock::Uds(l.accept()?.0),
        })
    }
}

/// Dial a front-door address (used by [`FrontDoor::stop`]'s self-wake;
/// `gt-client` has its own copy against `std` types).
fn dial(spec: &SocketAddrSpec) -> std::io::Result<Sock> {
    Ok(match spec {
        SocketAddrSpec::Tcp(a) => Sock::Tcp(TcpStream::connect(a)?),
        SocketAddrSpec::Uds(p) => Sock::Uds(UnixStream::connect(p)?),
    })
}

// ---------------------------------------------------------- front door

/// A running proto listener. Dropping it does **not** stop the accept
/// thread — call [`FrontDoor::stop`].
pub struct FrontDoor {
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    local: SocketAddrSpec,
    gate: Arc<QosGate>,
}

impl FrontDoor {
    /// Bind `spec` and serve proto connections against `backend`.
    /// TCP port 0 is resolved; check [`FrontDoor::local_addr`].
    pub fn serve<B: Backend>(
        backend: Arc<B>,
        spec: SocketAddrSpec,
        qos: QosConfig,
    ) -> std::io::Result<FrontDoor> {
        let (listener, local) = match &spec {
            SocketAddrSpec::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let local = SocketAddrSpec::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), local)
            }
            SocketAddrSpec::Uds(path) => {
                let _ = std::fs::remove_file(path);
                (Listener::Uds(UnixListener::bind(path)?), spec.clone())
            }
        };
        let gate = Arc::new(QosGate::new(qos));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = stop.clone();
            let gate = gate.clone();
            std::thread::Builder::new()
                .name("gt-frontdoor".into())
                .spawn(move || {
                    while let Ok(sock) = listener.accept() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let backend = backend.clone();
                        let gate = gate.clone();
                        // A connection that cannot get a thread is
                        // dropped; the client sees EOF and retries.
                        let _ = std::thread::Builder::new()
                            .name("gt-frontdoor-conn".into())
                            .spawn(move || serve_conn(sock, &backend, &gate));
                    }
                })?
        };
        Ok(FrontDoor {
            stop,
            accept: Some(accept),
            local,
            gate,
        })
    }

    /// The bound address (TCP port resolved).
    pub fn local_addr(&self) -> &SocketAddrSpec {
        &self.local
    }

    /// The QoS gate (per-tenant counters).
    pub fn gate(&self) -> &Arc<QosGate> {
        &self.gate
    }

    /// Stop accepting and join the accept thread. Already-open
    /// connections finish on their own threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = dial(&self.local); // wake the blocking accept
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let SocketAddrSpec::Uds(p) = &self.local {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// Map an engine error onto the wire.
fn wire_error(e: &ClusterError) -> WireError {
    match e {
        ClusterError::Lang(le) => WireError::Query(le.to_string()),
        ClusterError::Travel(TravelError::Timeout {
            attempts,
            last_progress,
        }) => WireError::Timeout {
            attempts: *attempts,
            last_progress: last_progress.as_ref().map(wire_progress),
        },
        ClusterError::Travel(TravelError::CoordinatorLost { .. }) => WireError::CoordinatorLost,
        ClusterError::Travel(TravelError::Cancelled { .. }) => WireError::Cancelled,
        ClusterError::Travel(TravelError::FailoverStalled { .. }) => WireError::FailoverStalled,
        other => WireError::Server(other.to_string()),
    }
}

fn wire_progress(p: &ProgressSnapshot) -> WireProgress {
    WireProgress {
        created: p.created,
        terminated: p.terminated,
        outstanding_by_depth: p.outstanding_by_depth.clone(),
    }
}

/// Serialize + send under the shared writer lock, ignoring IO errors
/// (a dead connection is detected by the read side).
fn reply(writer: &Mutex<Sock>, msg: &ServerMsg) {
    let mut w = writer.lock();
    let _ = send_server(&mut *w, msg);
}

/// One connection's lifecycle: hello, then a request loop; on exit the
/// tenant's in-flight travels are retired.
fn serve_conn<B: Backend>(mut sock: Sock, backend: &Arc<B>, gate: &Arc<QosGate>) {
    // Hello first. A malformed or absent hello closes the connection.
    let tenant = match read_frame(&mut sock) {
        Ok(Some(frame)) => match ClientMsg::decode(&frame) {
            Ok(ClientMsg::Hello { version, tenant }) => match negotiate(version) {
                Ok(v) => {
                    let _ = send_server(&mut sock, &ServerMsg::HelloAck { version: v });
                    tenant
                }
                Err((min, max)) => {
                    let _ = send_server(&mut sock, &ServerMsg::Unsupported { min, max });
                    return;
                }
            },
            // Any first frame that is not a hello is a protocol
            // violation: close without a reply.
            Ok(ClientMsg::Submit { .. })
            | Ok(ClientMsg::Progress { .. })
            | Ok(ClientMsg::Cancel { .. })
            | Ok(ClientMsg::Metrics)
            | Ok(ClientMsg::Goodbye)
            | Err(_) => return,
        },
        _ => return,
    };
    let writer = match sock.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Correlation id → in-flight ticket. Shared with worker threads,
    // which remove their entry once the travel resolves.
    let inflight: Arc<Mutex<HashMap<u64, B::Ticket>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut orderly = false;
    while let Ok(Some(frame)) = read_frame(&mut sock) {
        let msg = match ClientMsg::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                reply(
                    &writer,
                    &ServerMsg::Error {
                        id: 0,
                        error: WireError::Server(format!("bad frame: {e}")),
                    },
                );
                continue;
            }
        };
        match msg {
            ClientMsg::Hello { .. } => {
                // A second hello is a protocol violation; drop it.
            }
            ClientMsg::Submit { id, gtravel, opts } => {
                let compiled = crate::parse::parse(&gtravel)
                    .map_err(|e| e.to_string())
                    .and_then(|q| q.compile().map_err(|e| e.to_string()));
                let mut plan = match compiled {
                    Ok(p) => p,
                    Err(msg) => {
                        reply(
                            &writer,
                            &ServerMsg::Error {
                                id,
                                error: WireError::Query(msg),
                            },
                        );
                        continue;
                    }
                };
                match gate.admit(&tenant) {
                    Admission::Throttle { retry_after } => {
                        reply(
                            &writer,
                            &ServerMsg::Error {
                                id,
                                error: WireError::Throttled {
                                    retry_after_ms: retry_after.as_millis() as u64,
                                },
                            },
                        );
                        continue;
                    }
                    Admission::Admit { weight } => plan.qos_weight = weight,
                }
                let ticket = match backend.begin(Arc::new(plan)) {
                    Ok(t) => t,
                    Err(e) => {
                        gate.completed(&tenant);
                        reply(
                            &writer,
                            &ServerMsg::Error {
                                id,
                                error: wire_error(&e),
                            },
                        );
                        continue;
                    }
                };
                inflight.lock().insert(id, ticket.clone());
                let timeout = opts
                    .deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(DEFAULT_DEADLINE);
                let w_backend = backend.clone();
                let w_gate = gate.clone();
                let w_tenant = tenant.clone();
                let w_writer = writer.clone();
                let w_inflight = inflight.clone();
                let w_ticket = ticket.clone();
                let worker = std::thread::Builder::new()
                    .name("gt-frontdoor-req".into())
                    .spawn(move || {
                        let (backend, gate, tenant, writer, inflight, ticket) =
                            (w_backend, w_gate, w_tenant, w_writer, w_inflight, w_ticket);
                        let res = backend.wait(&ticket, timeout);
                        inflight.lock().remove(&id);
                        match res {
                            Ok(r) => {
                                gate.completed(&tenant);
                                reply(
                                    &writer,
                                    &ServerMsg::Result {
                                        id,
                                        by_depth: r
                                            .by_depth
                                            .iter()
                                            .map(|(d, vs)| (*d, vs.iter().map(|v| v.0).collect()))
                                            .collect(),
                                        progress: wire_progress(&r.progress),
                                        elapsed_us: r.elapsed.as_micros() as u64,
                                    },
                                );
                            }
                            Err(e) => {
                                if e.is_timeout() {
                                    gate.deadline_missed(&tenant);
                                } else if !matches!(
                                    e,
                                    ClusterError::Travel(TravelError::Cancelled { .. })
                                ) {
                                    gate.completed(&tenant);
                                }
                                reply(
                                    &writer,
                                    &ServerMsg::Error {
                                        id,
                                        error: wire_error(&e),
                                    },
                                );
                            }
                        }
                    });
                if worker.is_err() {
                    // Could not spawn: resolve inline so the request is
                    // never silently dropped.
                    if let Some(t) = inflight.lock().remove(&id) {
                        let _ = backend.cancel(&t);
                    }
                    reply(
                        &writer,
                        &ServerMsg::Error {
                            id,
                            error: WireError::Server("server overloaded".into()),
                        },
                    );
                }
            }
            ClientMsg::Progress { id } => {
                let ticket = inflight.lock().get(&id).cloned();
                match ticket {
                    None => reply(
                        &writer,
                        &ServerMsg::Error {
                            id,
                            error: WireError::Server("unknown request id".into()),
                        },
                    ),
                    Some(t) => match backend.progress(&t) {
                        Ok(p) => reply(
                            &writer,
                            &ServerMsg::Progress {
                                id,
                                progress: wire_progress(&p),
                            },
                        ),
                        Err(e) => reply(
                            &writer,
                            &ServerMsg::Error {
                                id,
                                error: wire_error(&e),
                            },
                        ),
                    },
                }
            }
            ClientMsg::Cancel { id } => {
                // The waiting worker observes the cancellation and
                // reports `Error{id, Cancelled}`; nothing to send here.
                let ticket = inflight.lock().get(&id).cloned();
                if let Some(t) = ticket {
                    let _ = backend.cancel(&t);
                }
            }
            ClientMsg::Metrics => {
                let mut counters = Vec::new();
                for (tenant, c) in gate.all_counters() {
                    counters.push((format!("{tenant}.admitted"), c.admitted));
                    counters.push((format!("{tenant}.throttled"), c.throttled));
                    counters.push((format!("{tenant}.completed"), c.completed));
                    counters.push((
                        format!("{tenant}.cancelled_on_disconnect"),
                        c.cancelled_on_disconnect,
                    ));
                    counters.push((format!("{tenant}.deadline_missed"), c.deadline_missed));
                }
                reply(&writer, &ServerMsg::MetricsReport { counters });
            }
            ClientMsg::Goodbye => {
                orderly = true;
                break;
            }
        }
    }
    // Connection gone (orderly or not): retire whatever is still in
    // flight so abandoned travels stop consuming the cluster. An orderly
    // goodbye with work outstanding is the client walking away from it —
    // same treatment, but only abnormal drops count as disconnects.
    let leftovers: Vec<B::Ticket> = inflight.lock().values().cloned().collect();
    if !leftovers.is_empty() {
        let n = leftovers.len() as u64;
        for t in &leftovers {
            let _ = backend.cancel(t);
        }
        if !orderly {
            gate.cancelled_on_disconnect(&tenant, n);
        }
    }
    sock.shutdown();
}
