//! Debug-build runtime lock-order enforcement.
//!
//! gt-lint's `lock-cycle` rule proves the *static* acquisition graph is
//! acyclic, but it reasons over a name-based call graph and cannot see
//! orders constructed at runtime (e.g. a closure stored in a map). This
//! module closes that gap dynamically: every shared lock in the server and
//! cluster layers is an [`OrderedMutex`] carrying a total-order *rank*, and
//! debug builds `debug_assert!` that each acquisition's rank is strictly
//! greater than every rank the current thread already holds. Any execution
//! that could deadlock under some interleaving trips the assertion on the
//! *first* out-of-order acquisition, deterministically, even when the run
//! itself would have gotten lucky.
//!
//! Release builds compile the bookkeeping away: `OrderedMutex<T>` is a
//! `parking_lot::Mutex<T>` plus two immutable words (rank and name), and
//! `lock()` is a plain forwarding call.
//!
//! The workspace's rank assignment lives next to each field declaration
//! (see `Shared` in `server.rs` and `Cluster` in `cluster.rs`); ranks are
//! spaced out so future locks can slot in between without renumbering.

use parking_lot::{Mutex, MutexGuard};
use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks (and names, for the panic message) of every `OrderedMutex`
    /// the current thread holds, in acquisition order.
    static HELD: std::cell::RefCell<Vec<(u32, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A `parking_lot::Mutex` with a fixed position in the process-wide lock
/// order. Acquisitions must happen in strictly increasing rank within a
/// thread; debug builds assert this on every `lock()`.
#[derive(Debug, Default)]
pub struct OrderedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

/// RAII guard returned by [`OrderedMutex::lock`]. Derefs to the protected
/// value; dropping it releases the lock and (in debug builds) pops the
/// rank from the thread's held-lock stack.
pub struct OrderedGuard<'a, T> {
    #[cfg(debug_assertions)]
    rank: u32,
    guard: MutexGuard<'a, T>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex at position `rank` in the global lock order.
    ///
    /// `name` is used only in the violation panic message; `rank` need not
    /// be unique, but two locks sharing a rank may never be held together.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquire the mutex, asserting (debug builds) that its rank exceeds
    /// every rank this thread already holds.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let held = held.borrow();
            if let Some(&(top_rank, top_name)) = held.iter().max_by_key(|&&(r, _)| r) {
                debug_assert!(
                    self.rank > top_rank,
                    "lock-order violation: acquiring `{}` (rank {}) while holding \
                     `{}` (rank {}); acquisitions must be in strictly increasing rank",
                    self.name,
                    self.rank,
                    top_name,
                    top_rank,
                );
            }
        });
        let guard = self.inner.lock();
        #[cfg(debug_assertions)]
        HELD.with(|held| held.borrow_mut().push((self.rank, self.name)));
        OrderedGuard {
            #[cfg(debug_assertions)]
            rank: self.rank,
            guard,
        }
    }

    /// Try to acquire without blocking. A successful `try_lock` still
    /// participates in the held-lock bookkeeping but is exempt from the
    /// ordering assertion: it cannot block, so it cannot deadlock.
    pub fn try_lock(&self) -> Option<OrderedGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        #[cfg(debug_assertions)]
        HELD.with(|held| held.borrow_mut().push((self.rank, self.name)));
        Some(OrderedGuard {
            #[cfg(debug_assertions)]
            rank: self.rank,
            guard,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// The lock's name in the rank table (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The lock's position in the global order (for diagnostics).
    pub fn rank(&self) -> u32 {
        self.rank
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&(r, _)| r == self.rank) {
                held.remove(i);
            }
        });
    }
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_acquisition_is_fine() {
        let a = OrderedMutex::new(1, "a", 0u32);
        let b = OrderedMutex::new(2, "b", 0u32);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 0);
    }

    #[test]
    fn reacquire_after_release_is_fine() {
        let a = OrderedMutex::new(1, "a", 0u32);
        let b = OrderedMutex::new(2, "b", 0u32);
        {
            let _gb = b.lock();
        }
        // b was released, so taking a (lower rank) afterwards is legal.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn guard_mutation_works() {
        let m = OrderedMutex::new(5, "m", Vec::new());
        m.lock().push(7u8);
        assert_eq!(*m.lock(), vec![7u8]);
        assert_eq!(m.into_inner(), vec![7u8]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = OrderedMutex::new(5, "m", ());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    // The violation test only exists in debug builds: in release builds the
    // assertion compiles away and there is nothing to trip.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn out_of_order_acquisition_panics() {
        let a = OrderedMutex::new(1, "a", ());
        let b = OrderedMutex::new(2, "b", ());
        let _gb = b.lock();
        let _ga = a.lock(); // rank 1 while holding rank 2: must panic
    }
}
