//! Binary serialization of [`Msg`] for the socket transport.
//!
//! The in-process fabric moves messages by value and never touches this
//! module; only frames crossing a real socket ([`gt_transport::socket`])
//! are encoded. Every variant is covered — any cluster workload (chaos
//! excepted; chaos requires the simulated fabric) can run over TCP/UDS —
//! and decoding is total: malformed bytes yield `None`, which the mesh
//! counts as a dropped frame, never a panic in a server thread.
//!
//! Conventions match the storage codecs (`gt_graph::codec`, the
//! coordinator's ledger blobs): little-endian integers, `u32` length
//! prefixes on sequences and strings, one leading tag byte per variant,
//! a presence byte (`0`/`1`) for `Option`s. Vertices, props, and ledger
//! events reuse their existing storage encodings verbatim so there is
//! exactly one byte-level truth per type.

use crate::coordinator::LedgerEvent;
use crate::lang::{Plan, PlanStep, Source};
use crate::message::{Msg, ProgressSnapshot, SyncExpect, TravelOutcome};
use crate::{ExecId, Token, Tokens};
use gt_graph::{Cond, Edge, FilterSet, PropFilter, PropValue, Vertex, VertexId};
use gt_placement::{PartitionEntry, PlacementMap};
use gt_transport::WireCodec;
use std::sync::Arc;

// Variant tags. Append-only: renumbering breaks mixed-version meshes.
const T_SUBMIT: u8 = 1;
const T_ABORT: u8 = 2;
const T_PROGRESS_QUERY: u8 = 3;
const T_PROGRESS_REPORT: u8 = 4;
const T_TRAVEL_DONE: u8 = 5;
const T_CANCEL: u8 = 6;
const T_CANCEL_ACK: u8 = 7;
const T_SOURCE_SCAN: u8 = 8;
const T_VISIT: u8 = 9;
const T_EXEC_CREATED: u8 = 10;
const T_EXEC_TERMINATED: u8 = 11;
const T_ORIGIN_SATISFIED: u8 = 12;
const T_RESULTS: u8 = 13;
const T_SYNC_START: u8 = 14;
const T_SYNC_FRONTIER: u8 = 15;
const T_SYNC_ORIGIN: u8 = 16;
const T_SYNC_STEP_DONE: u8 = 17;
const T_INGEST: u8 = 18;
const T_INGEST_ACK: u8 = 19;
const T_GET_VERTEX: u8 = 20;
const T_VERTEX_REPLY: u8 = 21;
const T_RELAY: u8 = 22;
const T_RELAY_ACK: u8 = 23;
const T_COORD_RECOVER: u8 = 24;
const T_COORD_HANDOFF: u8 = 25;
const T_REANNOUNCE: u8 = 26;
const T_RECOVER_DONE: u8 = 27;
const T_PLACEMENT_UPDATE: u8 = 28;
const T_PLACEMENT_ACK: u8 = 29;
const T_REPLICATE_WRITE: u8 = 30;
const T_REPLICATE_ACK: u8 = 31;
const T_REPLICATE_LEDGER: u8 = 32;
const T_MIGRATE_BEGIN: u8 = 33;
const T_MIGRATE_DATA: u8 = 34;
const T_MIGRATE_APPLIED: u8 = 35;
const T_MIGRATE_CUTOVER: u8 = 36;
const T_MIGRATE_FINISH: u8 = 37;
const T_HEARTBEAT: u8 = 38;
const T_SUSPECT: u8 = 39;
const T_SUSPECT_ACK: u8 = 40;
const T_REREPLICATE_BEGIN: u8 = 41;
const T_REREPLICATE_DATA: u8 = 42;
const T_REREPLICATE_CUTOVER: u8 = 43;
const T_REREPLICATE_FINISH: u8 = 44;
const T_CRASH: u8 = 45;
const T_SHUTDOWN: u8 = 46;

// Sub-codec tags.
const SRC_IDS: u8 = 1;
const SRC_ALL: u8 = 2;
const COND_EQ: u8 = 1;
const COND_IN: u8 = 2;
const COND_RANGE: u8 = 3;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_BOOL: u8 = 4;
const EXPECT_SCAN: u8 = 1;
const EXPECT_VERTICES: u8 = 2;
const EXPECT_ORIGIN_TOKENS: u8 = 3;

// ---------------------------------------------------------------- writer

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}
fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}
fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
        None => out.push(0),
    }
}

fn put_value(out: &mut Vec<u8>, v: &PropValue) {
    match v {
        PropValue::Int(i) => {
            out.push(VAL_INT);
            put_u64(out, *i as u64);
        }
        PropValue::Float(f) => {
            out.push(VAL_FLOAT);
            put_u64(out, f.to_bits());
        }
        PropValue::Str(s) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        PropValue::Bool(b) => {
            out.push(VAL_BOOL);
            put_bool(out, *b);
        }
    }
}

fn put_filters(out: &mut Vec<u8>, fs: &FilterSet) {
    put_u32(out, fs.0.len() as u32);
    for f in &fs.0 {
        put_str(out, &f.key);
        match &f.cond {
            Cond::Eq(v) => {
                out.push(COND_EQ);
                put_value(out, v);
            }
            Cond::In(vs) => {
                out.push(COND_IN);
                put_u32(out, vs.len() as u32);
                for v in vs {
                    put_value(out, v);
                }
            }
            Cond::Range(lo, hi) => {
                out.push(COND_RANGE);
                put_value(out, lo);
                put_value(out, hi);
            }
        }
    }
}

fn put_plan(out: &mut Vec<u8>, p: &Plan) {
    match &p.source {
        Source::Ids(ids) => {
            out.push(SRC_IDS);
            put_u32(out, ids.len() as u32);
            for id in ids {
                put_u64(out, id.0);
            }
        }
        Source::All => out.push(SRC_ALL),
    }
    put_filters(out, &p.source_filters);
    put_bool(out, p.source_rtn);
    put_u32(out, p.steps.len() as u32);
    for s in &p.steps {
        put_str(out, &s.edge_label);
        put_filters(out, &s.edge_filters);
        put_filters(out, &s.vertex_filters);
        put_bool(out, s.rtn);
    }
    put_opt_u64(out, p.as_of);
    put_opt_u64(out, p.snapshot);
    put_u32(out, p.qos_weight);
}

fn put_progress(out: &mut Vec<u8>, p: &ProgressSnapshot) {
    put_u64(out, p.created);
    put_u64(out, p.terminated);
    put_u32(out, p.outstanding_by_depth.len() as u32);
    for &(d, n) in &p.outstanding_by_depth {
        put_u16(out, d);
        put_u64(out, n);
    }
}

fn put_tokens(out: &mut Vec<u8>, ts: &Tokens) {
    put_u32(out, ts.len() as u32);
    for t in ts {
        put_u16(out, t.owner);
        put_u64(out, t.id);
    }
}

fn put_vertex(out: &mut Vec<u8>, v: &Vertex) {
    put_u64(out, v.id.0);
    put_bytes(out, &gt_graph::codec::encode_vertex(v));
}

fn put_edge(out: &mut Vec<u8>, e: &Edge) {
    put_u64(out, e.src.0);
    put_str(out, &e.label);
    put_u64(out, e.dst.0);
    put_bytes(out, &gt_graph::codec::encode_props(&e.props));
}

/// One replicated KV write: (namespace, key, value or tombstone).
type KvPair = (String, Vec<u8>, Option<Vec<u8>>);

fn put_pairs(out: &mut Vec<u8>, pairs: &[KvPair]) {
    put_u32(out, pairs.len() as u32);
    for (ns, k, v) in pairs {
        put_str(out, ns);
        put_bytes(out, k);
        match v {
            Some(v) => {
                out.push(1);
                put_bytes(out, v);
            }
            None => out.push(0),
        }
    }
}

// ---------------------------------------------------------------- reader

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn usize(&mut self) -> Option<usize> {
        Some(self.u64()? as usize)
    }
    fn boolean(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    /// Sequence length, sanity-capped against the remaining input so a
    /// hostile length prefix cannot trigger a huge allocation.
    fn seq_len(&mut self, min_elem: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_elem.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }
    fn string(&mut self) -> Option<String> {
        let n = self.seq_len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.seq_len(1)?;
        Some(self.take(n)?.to_vec())
    }
    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }

    fn value(&mut self) -> Option<PropValue> {
        match self.u8()? {
            VAL_INT => Some(PropValue::Int(self.u64()? as i64)),
            VAL_FLOAT => Some(PropValue::Float(f64::from_bits(self.u64()?))),
            VAL_STR => Some(PropValue::Str(self.string()?)),
            VAL_BOOL => Some(PropValue::Bool(self.boolean()?)),
            _ => None,
        }
    }

    fn filters(&mut self) -> Option<FilterSet> {
        let n = self.seq_len(6)?;
        let mut fs = Vec::with_capacity(n);
        for _ in 0..n {
            let key = self.string()?;
            let cond = match self.u8()? {
                COND_EQ => Cond::Eq(self.value()?),
                COND_IN => {
                    let m = self.seq_len(2)?;
                    let mut vs = Vec::with_capacity(m);
                    for _ in 0..m {
                        vs.push(self.value()?);
                    }
                    Cond::In(vs)
                }
                COND_RANGE => {
                    let lo = self.value()?;
                    let hi = self.value()?;
                    Cond::Range(lo, hi)
                }
                _ => return None,
            };
            fs.push(PropFilter { key, cond });
        }
        Some(FilterSet(fs))
    }

    fn plan(&mut self) -> Option<Plan> {
        let source = match self.u8()? {
            SRC_IDS => {
                let n = self.seq_len(8)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(VertexId(self.u64()?));
                }
                Source::Ids(ids)
            }
            SRC_ALL => Source::All,
            _ => return None,
        };
        let source_filters = self.filters()?;
        let source_rtn = self.boolean()?;
        let n = self.seq_len(14)?;
        let mut steps = Vec::with_capacity(n);
        for _ in 0..n {
            let edge_label = self.string()?;
            let edge_filters = self.filters()?;
            let vertex_filters = self.filters()?;
            let rtn = self.boolean()?;
            steps.push(PlanStep {
                edge_label,
                edge_filters,
                vertex_filters,
                rtn,
            });
        }
        let as_of = self.opt_u64()?;
        let snapshot = self.opt_u64()?;
        let qos_weight = self.u32()?;
        Some(Plan {
            source,
            source_filters,
            source_rtn,
            steps,
            as_of,
            snapshot,
            qos_weight,
        })
    }

    fn progress(&mut self) -> Option<ProgressSnapshot> {
        let created = self.u64()?;
        let terminated = self.u64()?;
        let n = self.seq_len(10)?;
        let mut outstanding_by_depth = Vec::with_capacity(n);
        for _ in 0..n {
            let d = self.u16()?;
            let c = self.u64()?;
            outstanding_by_depth.push((d, c));
        }
        Some(ProgressSnapshot {
            created,
            terminated,
            outstanding_by_depth,
        })
    }

    fn tokens(&mut self) -> Option<Tokens> {
        let n = self.seq_len(10)?;
        let mut ts = Vec::with_capacity(n);
        for _ in 0..n {
            let owner = self.u16()?;
            let id = self.u64()?;
            ts.push(Token { owner, id });
        }
        Some(ts)
    }

    fn vertex(&mut self) -> Option<Vertex> {
        let id = VertexId(self.u64()?);
        let data = self.bytes()?;
        gt_graph::codec::decode_vertex(id, &data)
    }

    fn edge(&mut self) -> Option<Edge> {
        let src = VertexId(self.u64()?);
        let label = self.string()?;
        let dst = VertexId(self.u64()?);
        let props = gt_graph::codec::decode_props(&self.bytes()?)?;
        Some(Edge {
            src,
            label,
            dst,
            props,
        })
    }

    fn pairs(&mut self) -> Option<Vec<KvPair>> {
        let n = self.seq_len(9)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let ns = self.string()?;
            let k = self.bytes()?;
            let v = match self.u8()? {
                0 => None,
                1 => Some(self.bytes()?),
                _ => return None,
            };
            out.push((ns, k, v));
        }
        Some(out)
    }

    fn exec_children(&mut self) -> Option<Vec<(ExecId, u16)>> {
        let n = self.seq_len(10)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let e = ExecId(self.u64()?);
            let d = self.u16()?;
            out.push((e, d));
        }
        Some(out)
    }

    fn depth_vertices(&mut self) -> Option<Vec<(u16, VertexId)>> {
        let n = self.seq_len(10)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let d = self.u16()?;
            let v = VertexId(self.u64()?);
            out.push((d, v));
        }
        Some(out)
    }

    fn frontier_items(&mut self) -> Option<Vec<(VertexId, Tokens)>> {
        let n = self.seq_len(12)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = VertexId(self.u64()?);
            let ts = self.tokens()?;
            out.push((v, ts));
        }
        Some(out)
    }

    fn finish<T>(self, value: T) -> Option<T> {
        if self.pos == self.buf.len() {
            Some(value)
        } else {
            None
        }
    }
}

// ------------------------------------------------------------- the codec

/// Recursion guard for nested [`Msg::Relay`] envelopes: the engine only
/// nests one level (an envelope around a data-plane message), so anything
/// deeper in an inbound frame is malformed by construction.
const MAX_RELAY_DEPTH: u32 = 4;

fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Submit {
            travel,
            plan,
            client,
        } => {
            out.push(T_SUBMIT);
            put_u64(out, *travel);
            put_plan(out, plan);
            put_usize(out, *client);
        }
        Msg::Abort { travel } => {
            out.push(T_ABORT);
            put_u64(out, *travel);
        }
        Msg::ProgressQuery { travel, client } => {
            out.push(T_PROGRESS_QUERY);
            put_u64(out, *travel);
            put_usize(out, *client);
        }
        Msg::ProgressReport { travel, snapshot } => {
            out.push(T_PROGRESS_REPORT);
            put_u64(out, *travel);
            put_progress(out, snapshot);
        }
        Msg::TravelDone { travel, outcome } => {
            out.push(T_TRAVEL_DONE);
            put_u64(out, *travel);
            put_u32(out, outcome.by_depth.len() as u32);
            for (d, vs) in &outcome.by_depth {
                put_u16(out, *d);
                put_u32(out, vs.len() as u32);
                for v in vs {
                    put_u64(out, v.0);
                }
            }
            put_progress(out, &outcome.progress);
        }
        Msg::Cancel { travel, client } => {
            out.push(T_CANCEL);
            put_u64(out, *travel);
            put_usize(out, *client);
        }
        Msg::CancelAck { travel, server } => {
            out.push(T_CANCEL_ACK);
            put_u64(out, *travel);
            put_usize(out, *server);
        }
        Msg::SourceScan {
            travel,
            plan,
            coordinator,
            exec,
        } => {
            out.push(T_SOURCE_SCAN);
            put_u64(out, *travel);
            put_plan(out, plan);
            put_usize(out, *coordinator);
            put_u64(out, exec.0);
        }
        Msg::Visit {
            travel,
            depth,
            exec,
            plan,
            coordinator,
            items,
        } => {
            out.push(T_VISIT);
            put_u64(out, *travel);
            put_u16(out, *depth);
            put_u64(out, exec.0);
            put_plan(out, plan);
            put_usize(out, *coordinator);
            put_u32(out, items.len() as u32);
            for (v, ts) in items {
                put_u64(out, v.0);
                put_tokens(out, ts);
            }
        }
        Msg::ExecCreated {
            travel,
            exec,
            depth,
        } => {
            out.push(T_EXEC_CREATED);
            put_u64(out, *travel);
            put_u64(out, exec.0);
            put_u16(out, *depth);
        }
        Msg::ExecTerminated {
            travel,
            exec,
            children,
        } => {
            out.push(T_EXEC_TERMINATED);
            put_u64(out, *travel);
            put_u64(out, exec.0);
            put_u32(out, children.len() as u32);
            for (c, d) in children {
                put_u64(out, c.0);
                put_u16(out, *d);
            }
        }
        Msg::OriginSatisfied {
            travel,
            exec,
            coordinator,
            tokens,
        } => {
            out.push(T_ORIGIN_SATISFIED);
            put_u64(out, *travel);
            put_u64(out, exec.0);
            put_usize(out, *coordinator);
            put_u32(out, tokens.len() as u32);
            for t in tokens {
                put_u64(out, *t);
            }
        }
        Msg::Results { travel, items } => {
            out.push(T_RESULTS);
            put_u64(out, *travel);
            put_u32(out, items.len() as u32);
            for (d, v) in items {
                put_u16(out, *d);
                put_u64(out, v.0);
            }
        }
        Msg::SyncStart {
            travel,
            plan,
            coordinator,
            depth,
            expect,
        } => {
            out.push(T_SYNC_START);
            put_u64(out, *travel);
            put_plan(out, plan);
            put_usize(out, *coordinator);
            put_u16(out, *depth);
            match expect {
                SyncExpect::ScanSource => out.push(EXPECT_SCAN),
                SyncExpect::Vertices(n) => {
                    out.push(EXPECT_VERTICES);
                    put_u64(out, *n);
                }
                SyncExpect::OriginTokens(n) => {
                    out.push(EXPECT_ORIGIN_TOKENS);
                    put_u64(out, *n);
                }
            }
        }
        Msg::SyncFrontier {
            travel,
            depth,
            items,
        } => {
            out.push(T_SYNC_FRONTIER);
            put_u64(out, *travel);
            put_u16(out, *depth);
            put_u32(out, items.len() as u32);
            for (v, ts) in items {
                put_u64(out, v.0);
                put_tokens(out, ts);
            }
        }
        Msg::SyncOrigin { travel, tokens } => {
            out.push(T_SYNC_ORIGIN);
            put_u64(out, *travel);
            put_u32(out, tokens.len() as u32);
            for t in tokens {
                put_u64(out, *t);
            }
        }
        Msg::SyncStepDone {
            travel,
            depth,
            server,
            sent,
            origin_sent,
        } => {
            out.push(T_SYNC_STEP_DONE);
            put_u64(out, *travel);
            put_u16(out, *depth);
            put_usize(out, *server);
            put_u32(out, sent.len() as u32);
            for (s, n) in sent {
                put_usize(out, *s);
                put_u64(out, *n);
            }
            put_u32(out, origin_sent.len() as u32);
            for (s, n) in origin_sent {
                put_usize(out, *s);
                put_u64(out, *n);
            }
        }
        Msg::Ingest {
            req,
            client,
            vertices,
            edges,
        } => {
            out.push(T_INGEST);
            put_u64(out, *req);
            put_usize(out, *client);
            put_u32(out, vertices.len() as u32);
            for v in vertices {
                put_vertex(out, v);
            }
            put_u32(out, edges.len() as u32);
            for e in edges {
                put_edge(out, e);
            }
        }
        Msg::IngestAck { req, applied, wseq } => {
            out.push(T_INGEST_ACK);
            put_u64(out, *req);
            put_usize(out, *applied);
            put_u64(out, *wseq);
        }
        Msg::GetVertex {
            req,
            client,
            vertex,
            barrier,
        } => {
            out.push(T_GET_VERTEX);
            put_u64(out, *req);
            put_usize(out, *client);
            put_u64(out, vertex.0);
            put_u64(out, *barrier);
        }
        Msg::VertexReply { req, vertex } => {
            out.push(T_VERTEX_REPLY);
            put_u64(out, *req);
            match vertex {
                Some(v) => {
                    out.push(1);
                    put_vertex(out, v);
                }
                None => out.push(0),
            }
        }
        Msg::Relay {
            travel,
            from,
            epoch,
            tepoch,
            seq,
            attempt,
            inner,
        } => {
            out.push(T_RELAY);
            put_u64(out, *travel);
            put_usize(out, *from);
            put_u64(out, *epoch);
            put_u64(out, *tepoch);
            put_u64(out, *seq);
            put_u64(out, *attempt);
            encode_msg(inner, out);
        }
        Msg::RelayAck {
            travel,
            server,
            seq,
            attempt,
        } => {
            out.push(T_RELAY_ACK);
            put_u64(out, *travel);
            put_usize(out, *server);
            put_u64(out, *seq);
            put_u64(out, *attempt);
        }
        Msg::CoordRecover {
            travel,
            epoch,
            plan,
            client,
            events,
        } => {
            out.push(T_COORD_RECOVER);
            put_u64(out, *travel);
            put_u64(out, *epoch);
            put_plan(out, plan);
            put_usize(out, *client);
            put_u32(out, events.len() as u32);
            for ev in events {
                put_bytes(out, &ev.encode(*travel));
            }
        }
        Msg::CoordHandoff {
            travel,
            epoch,
            coordinator,
            restarted,
        } => {
            out.push(T_COORD_HANDOFF);
            put_u64(out, *travel);
            put_u64(out, *epoch);
            put_usize(out, *coordinator);
            put_opt_u64(out, restarted.map(|r| r as u64));
        }
        Msg::ReAnnounce {
            travel,
            epoch,
            server,
            created,
            terminated,
            results,
        } => {
            out.push(T_REANNOUNCE);
            put_u64(out, *travel);
            put_u64(out, *epoch);
            put_usize(out, *server);
            put_u32(out, created.len() as u32);
            for (e, d) in created {
                put_u64(out, e.0);
                put_u16(out, *d);
            }
            put_u32(out, terminated.len() as u32);
            for (e, children) in terminated {
                put_u64(out, e.0);
                put_u32(out, children.len() as u32);
                for (c, d) in children {
                    put_u64(out, c.0);
                    put_u16(out, *d);
                }
            }
            put_u32(out, results.len() as u32);
            for (d, v) in results {
                put_u16(out, *d);
                put_u64(out, v.0);
            }
        }
        Msg::RecoverDone { travel, epoch } => {
            out.push(T_RECOVER_DONE);
            put_u64(out, *travel);
            put_u64(out, *epoch);
        }
        Msg::PlacementUpdate { map, client } => {
            out.push(T_PLACEMENT_UPDATE);
            put_u64(out, map.version);
            put_usize(out, map.n_servers);
            put_u32(out, map.entries.len() as u32);
            for e in &map.entries {
                put_usize(out, e.primary);
                put_u32(out, e.replicas.len() as u32);
                for r in &e.replicas {
                    put_usize(out, *r);
                }
            }
            put_u32(out, map.decommissioned.len() as u32);
            for d in &map.decommissioned {
                put_bool(out, *d);
            }
            put_usize(out, *client);
        }
        Msg::PlacementAck { version, server } => {
            out.push(T_PLACEMENT_ACK);
            put_u64(out, *version);
            put_usize(out, *server);
        }
        Msg::ReplicateWrite {
            req,
            origin,
            wseq,
            seq,
            vertices,
            edges,
        } => {
            out.push(T_REPLICATE_WRITE);
            put_u64(out, *req);
            put_usize(out, *origin);
            put_u64(out, *wseq);
            put_opt_u64(out, *seq);
            put_u32(out, vertices.len() as u32);
            for v in vertices {
                put_vertex(out, v);
            }
            put_u32(out, edges.len() as u32);
            for e in edges {
                put_edge(out, e);
            }
        }
        Msg::ReplicateAck { req, server } => {
            out.push(T_REPLICATE_ACK);
            put_u64(out, *req);
            put_usize(out, *server);
        }
        Msg::ReplicateLedger { from, blobs, reset } => {
            out.push(T_REPLICATE_LEDGER);
            put_usize(out, *from);
            put_bool(out, *reset);
            put_u32(out, blobs.len() as u32);
            for b in blobs {
                put_bytes(out, b);
            }
        }
        Msg::MigrateBegin {
            mig,
            partition,
            to,
            client,
        } => {
            out.push(T_MIGRATE_BEGIN);
            put_u64(out, *mig);
            put_usize(out, *partition);
            put_usize(out, *to);
            put_usize(out, *client);
        }
        Msg::MigrateData {
            mig,
            partition,
            pairs,
            phase,
            last,
            client,
        } => {
            out.push(T_MIGRATE_DATA);
            put_u64(out, *mig);
            put_usize(out, *partition);
            out.push(*phase);
            put_bool(out, *last);
            put_usize(out, *client);
            put_pairs(out, pairs);
        }
        Msg::MigrateApplied { mig, phase, server } => {
            out.push(T_MIGRATE_APPLIED);
            put_u64(out, *mig);
            out.push(*phase);
            put_usize(out, *server);
        }
        Msg::MigrateCutover { mig } => {
            out.push(T_MIGRATE_CUTOVER);
            put_u64(out, *mig);
        }
        Msg::MigrateFinish { mig } => {
            out.push(T_MIGRATE_FINISH);
            put_u64(out, *mig);
        }
        Msg::Heartbeat { from, seq, load } => {
            out.push(T_HEARTBEAT);
            put_usize(out, *from);
            put_u64(out, *seq);
            put_u64(out, *load);
        }
        Msg::Suspect { from, suspect } => {
            out.push(T_SUSPECT);
            put_usize(out, *from);
            put_usize(out, *suspect);
        }
        Msg::SuspectAck { suspect, confirmed } => {
            out.push(T_SUSPECT_ACK);
            put_usize(out, *suspect);
            put_bool(out, *confirmed);
        }
        Msg::ReReplicateBegin {
            mig,
            partition,
            to,
            client,
        } => {
            out.push(T_REREPLICATE_BEGIN);
            put_u64(out, *mig);
            put_usize(out, *partition);
            put_usize(out, *to);
            put_usize(out, *client);
        }
        Msg::ReReplicateData {
            mig,
            partition,
            pairs,
            phase,
            last,
            client,
        } => {
            out.push(T_REREPLICATE_DATA);
            put_u64(out, *mig);
            put_usize(out, *partition);
            out.push(*phase);
            put_bool(out, *last);
            put_usize(out, *client);
            put_pairs(out, pairs);
        }
        Msg::ReReplicateCutover { mig } => {
            out.push(T_REREPLICATE_CUTOVER);
            put_u64(out, *mig);
        }
        Msg::ReReplicateFinish { mig } => {
            out.push(T_REREPLICATE_FINISH);
            put_u64(out, *mig);
        }
        Msg::Crash => out.push(T_CRASH),
        Msg::Shutdown => out.push(T_SHUTDOWN),
    }
}

fn decode_msg(r: &mut Reader<'_>, relay_depth: u32) -> Option<Msg> {
    let tag = r.u8()?;
    let msg = match tag {
        T_SUBMIT => Msg::Submit {
            travel: r.u64()?,
            plan: Arc::new(r.plan()?),
            client: r.usize()?,
        },
        T_ABORT => Msg::Abort { travel: r.u64()? },
        T_PROGRESS_QUERY => Msg::ProgressQuery {
            travel: r.u64()?,
            client: r.usize()?,
        },
        T_PROGRESS_REPORT => Msg::ProgressReport {
            travel: r.u64()?,
            snapshot: r.progress()?,
        },
        T_TRAVEL_DONE => {
            let travel = r.u64()?;
            let n = r.seq_len(6)?;
            let mut by_depth = Vec::with_capacity(n);
            for _ in 0..n {
                let d = r.u16()?;
                let m = r.seq_len(8)?;
                let mut vs = Vec::with_capacity(m);
                for _ in 0..m {
                    vs.push(VertexId(r.u64()?));
                }
                by_depth.push((d, vs));
            }
            let progress = r.progress()?;
            Msg::TravelDone {
                travel,
                outcome: TravelOutcome { by_depth, progress },
            }
        }
        T_CANCEL => Msg::Cancel {
            travel: r.u64()?,
            client: r.usize()?,
        },
        T_CANCEL_ACK => Msg::CancelAck {
            travel: r.u64()?,
            server: r.usize()?,
        },
        T_SOURCE_SCAN => Msg::SourceScan {
            travel: r.u64()?,
            plan: Arc::new(r.plan()?),
            coordinator: r.usize()?,
            exec: ExecId(r.u64()?),
        },
        T_VISIT => Msg::Visit {
            travel: r.u64()?,
            depth: r.u16()?,
            exec: ExecId(r.u64()?),
            plan: Arc::new(r.plan()?),
            coordinator: r.usize()?,
            items: r.frontier_items()?,
        },
        T_EXEC_CREATED => Msg::ExecCreated {
            travel: r.u64()?,
            exec: ExecId(r.u64()?),
            depth: r.u16()?,
        },
        T_EXEC_TERMINATED => Msg::ExecTerminated {
            travel: r.u64()?,
            exec: ExecId(r.u64()?),
            children: r.exec_children()?,
        },
        T_ORIGIN_SATISFIED => {
            let travel = r.u64()?;
            let exec = ExecId(r.u64()?);
            let coordinator = r.usize()?;
            let n = r.seq_len(8)?;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(r.u64()?);
            }
            Msg::OriginSatisfied {
                travel,
                exec,
                coordinator,
                tokens,
            }
        }
        T_RESULTS => Msg::Results {
            travel: r.u64()?,
            items: r.depth_vertices()?,
        },
        T_SYNC_START => {
            let travel = r.u64()?;
            let plan = Arc::new(r.plan()?);
            let coordinator = r.usize()?;
            let depth = r.u16()?;
            let expect = match r.u8()? {
                EXPECT_SCAN => SyncExpect::ScanSource,
                EXPECT_VERTICES => SyncExpect::Vertices(r.u64()?),
                EXPECT_ORIGIN_TOKENS => SyncExpect::OriginTokens(r.u64()?),
                _ => return None,
            };
            Msg::SyncStart {
                travel,
                plan,
                coordinator,
                depth,
                expect,
            }
        }
        T_SYNC_FRONTIER => Msg::SyncFrontier {
            travel: r.u64()?,
            depth: r.u16()?,
            items: r.frontier_items()?,
        },
        T_SYNC_ORIGIN => {
            let travel = r.u64()?;
            let n = r.seq_len(8)?;
            let mut tokens = Vec::with_capacity(n);
            for _ in 0..n {
                tokens.push(r.u64()?);
            }
            Msg::SyncOrigin { travel, tokens }
        }
        T_SYNC_STEP_DONE => {
            let travel = r.u64()?;
            let depth = r.u16()?;
            let server = r.usize()?;
            let n = r.seq_len(16)?;
            let mut sent = Vec::with_capacity(n);
            for _ in 0..n {
                let s = r.usize()?;
                let c = r.u64()?;
                sent.push((s, c));
            }
            let m = r.seq_len(16)?;
            let mut origin_sent = Vec::with_capacity(m);
            for _ in 0..m {
                let s = r.usize()?;
                let c = r.u64()?;
                origin_sent.push((s, c));
            }
            Msg::SyncStepDone {
                travel,
                depth,
                server,
                sent,
                origin_sent,
            }
        }
        T_INGEST => {
            let req = r.u64()?;
            let client = r.usize()?;
            let n = r.seq_len(12)?;
            let mut vertices = Vec::with_capacity(n);
            for _ in 0..n {
                vertices.push(r.vertex()?);
            }
            let m = r.seq_len(24)?;
            let mut edges = Vec::with_capacity(m);
            for _ in 0..m {
                edges.push(r.edge()?);
            }
            Msg::Ingest {
                req,
                client,
                vertices,
                edges,
            }
        }
        T_INGEST_ACK => Msg::IngestAck {
            req: r.u64()?,
            applied: r.usize()?,
            wseq: r.u64()?,
        },
        T_GET_VERTEX => Msg::GetVertex {
            req: r.u64()?,
            client: r.usize()?,
            vertex: VertexId(r.u64()?),
            barrier: r.u64()?,
        },
        T_VERTEX_REPLY => {
            let req = r.u64()?;
            let vertex = match r.u8()? {
                0 => None,
                1 => Some(Box::new(r.vertex()?)),
                _ => return None,
            };
            Msg::VertexReply { req, vertex }
        }
        T_RELAY => {
            if relay_depth >= MAX_RELAY_DEPTH {
                return None;
            }
            let travel = r.u64()?;
            let from = r.usize()?;
            let epoch = r.u64()?;
            let tepoch = r.u64()?;
            let seq = r.u64()?;
            let attempt = r.u64()?;
            let inner = Box::new(decode_msg(r, relay_depth + 1)?);
            Msg::Relay {
                travel,
                from,
                epoch,
                tepoch,
                seq,
                attempt,
                inner,
            }
        }
        T_RELAY_ACK => Msg::RelayAck {
            travel: r.u64()?,
            server: r.usize()?,
            seq: r.u64()?,
            attempt: r.u64()?,
        },
        T_COORD_RECOVER => {
            let travel = r.u64()?;
            let epoch = r.u64()?;
            let plan = Arc::new(r.plan()?);
            let client = r.usize()?;
            let n = r.seq_len(4)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let blob = r.bytes()?;
                let (t, ev) = LedgerEvent::decode(&blob)?;
                if t != travel {
                    return None;
                }
                events.push(ev);
            }
            Msg::CoordRecover {
                travel,
                epoch,
                plan,
                client,
                events,
            }
        }
        T_COORD_HANDOFF => Msg::CoordHandoff {
            travel: r.u64()?,
            epoch: r.u64()?,
            coordinator: r.usize()?,
            restarted: r.opt_u64()?.map(|v| v as usize),
        },
        T_REANNOUNCE => {
            let travel = r.u64()?;
            let epoch = r.u64()?;
            let server = r.usize()?;
            let created = r.exec_children()?;
            let n = r.seq_len(12)?;
            let mut terminated = Vec::with_capacity(n);
            for _ in 0..n {
                let e = ExecId(r.u64()?);
                let children = r.exec_children()?;
                terminated.push((e, children));
            }
            let results = r.depth_vertices()?;
            Msg::ReAnnounce {
                travel,
                epoch,
                server,
                created,
                terminated,
                results,
            }
        }
        T_RECOVER_DONE => Msg::RecoverDone {
            travel: r.u64()?,
            epoch: r.u64()?,
        },
        T_PLACEMENT_UPDATE => {
            let version = r.u64()?;
            let n_servers = r.usize()?;
            let n = r.seq_len(12)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let primary = r.usize()?;
                let m = r.seq_len(8)?;
                let mut replicas = Vec::with_capacity(m);
                for _ in 0..m {
                    replicas.push(r.usize()?);
                }
                entries.push(PartitionEntry { primary, replicas });
            }
            let d = r.seq_len(1)?;
            let mut decommissioned = Vec::with_capacity(d);
            for _ in 0..d {
                decommissioned.push(r.boolean()?);
            }
            let client = r.usize()?;
            Msg::PlacementUpdate {
                map: Arc::new(PlacementMap {
                    version,
                    entries,
                    decommissioned,
                    n_servers,
                }),
                client,
            }
        }
        T_PLACEMENT_ACK => Msg::PlacementAck {
            version: r.u64()?,
            server: r.usize()?,
        },
        T_REPLICATE_WRITE => {
            let req = r.u64()?;
            let origin = r.usize()?;
            let wseq = r.u64()?;
            let seq = r.opt_u64()?;
            let n = r.seq_len(12)?;
            let mut vertices = Vec::with_capacity(n);
            for _ in 0..n {
                vertices.push(r.vertex()?);
            }
            let m = r.seq_len(24)?;
            let mut edges = Vec::with_capacity(m);
            for _ in 0..m {
                edges.push(r.edge()?);
            }
            Msg::ReplicateWrite {
                req,
                origin,
                wseq,
                seq,
                vertices,
                edges,
            }
        }
        T_REPLICATE_ACK => Msg::ReplicateAck {
            req: r.u64()?,
            server: r.usize()?,
        },
        T_REPLICATE_LEDGER => {
            let from = r.usize()?;
            let reset = r.boolean()?;
            let n = r.seq_len(4)?;
            let mut blobs = Vec::with_capacity(n);
            for _ in 0..n {
                blobs.push(r.bytes()?);
            }
            Msg::ReplicateLedger { from, blobs, reset }
        }
        T_MIGRATE_BEGIN => Msg::MigrateBegin {
            mig: r.u64()?,
            partition: r.usize()?,
            to: r.usize()?,
            client: r.usize()?,
        },
        T_MIGRATE_DATA => {
            let mig = r.u64()?;
            let partition = r.usize()?;
            let phase = r.u8()?;
            let last = r.boolean()?;
            let client = r.usize()?;
            let pairs = r.pairs()?;
            Msg::MigrateData {
                mig,
                partition,
                pairs,
                phase,
                last,
                client,
            }
        }
        T_MIGRATE_APPLIED => Msg::MigrateApplied {
            mig: r.u64()?,
            phase: r.u8()?,
            server: r.usize()?,
        },
        T_MIGRATE_CUTOVER => Msg::MigrateCutover { mig: r.u64()? },
        T_MIGRATE_FINISH => Msg::MigrateFinish { mig: r.u64()? },
        T_HEARTBEAT => Msg::Heartbeat {
            from: r.usize()?,
            seq: r.u64()?,
            load: r.u64()?,
        },
        T_SUSPECT => Msg::Suspect {
            from: r.usize()?,
            suspect: r.usize()?,
        },
        T_SUSPECT_ACK => Msg::SuspectAck {
            suspect: r.usize()?,
            confirmed: r.boolean()?,
        },
        T_REREPLICATE_BEGIN => Msg::ReReplicateBegin {
            mig: r.u64()?,
            partition: r.usize()?,
            to: r.usize()?,
            client: r.usize()?,
        },
        T_REREPLICATE_DATA => {
            let mig = r.u64()?;
            let partition = r.usize()?;
            let phase = r.u8()?;
            let last = r.boolean()?;
            let client = r.usize()?;
            let pairs = r.pairs()?;
            Msg::ReReplicateData {
                mig,
                partition,
                pairs,
                phase,
                last,
                client,
            }
        }
        T_REREPLICATE_CUTOVER => Msg::ReReplicateCutover { mig: r.u64()? },
        T_REREPLICATE_FINISH => Msg::ReReplicateFinish { mig: r.u64()? },
        T_CRASH => Msg::Crash,
        T_SHUTDOWN => Msg::Shutdown,
        // Unknown tag: malformed or newer peer; surfaces as a counted
        // drop at the mesh, never a panic.
        _ => return None,
    };
    Some(msg)
}

impl WireCodec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_msg(self, out);
    }

    fn decode(buf: &[u8]) -> Option<Msg> {
        let mut r = Reader { buf, pos: 0 };
        let msg = decode_msg(&mut r, 0)?;
        r.finish(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::GTravel;
    use gt_graph::Props;

    fn rt(msg: Msg) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let back = Msg::decode(&buf).unwrap_or_else(|| panic!("decode failed for {msg:?}"));
        // Msg is not PartialEq (Arc<Plan> payloads); compare debug forms,
        // which print through the Arc and cover every field.
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }

    fn sample_plan() -> Arc<Plan> {
        Arc::new(
            GTravel::v([1u64, 9])
                .va(PropFilter::eq("type", "User"))
                .e("run")
                .ea(PropFilter::range("start_ts", 10i64, 99i64))
                .e("read")
                .va(PropFilter::is_in(
                    "fmt",
                    vec![PropValue::Str("h5".into()), PropValue::Str("csv".into())],
                ))
                .rtn()
                .as_of(77)
                .compile()
                .expect("sample plan compiles"),
        )
    }

    #[test]
    fn every_variant_round_trips() {
        let plan = sample_plan();
        let vertex = Vertex::new(5u64, "User", Props::new().with("name", "a").with("n", 3i64));
        let edge = Edge::new(5u64, "run", 6u64, Props::new().with("t", 1i64));
        let msgs = vec![
            Msg::Submit {
                travel: 1,
                plan: plan.clone(),
                client: 3,
            },
            Msg::Abort { travel: 2 },
            Msg::ProgressQuery {
                travel: 3,
                client: 4,
            },
            Msg::ProgressReport {
                travel: 3,
                snapshot: ProgressSnapshot {
                    created: 5,
                    terminated: 2,
                    outstanding_by_depth: vec![(0, 1), (1, 2)],
                },
            },
            Msg::TravelDone {
                travel: 3,
                outcome: TravelOutcome {
                    by_depth: vec![(1, vec![VertexId(5), VertexId(9)]), (2, vec![])],
                    progress: ProgressSnapshot::default(),
                },
            },
            Msg::Cancel {
                travel: 4,
                client: 3,
            },
            Msg::CancelAck {
                travel: 4,
                server: 1,
            },
            Msg::SourceScan {
                travel: 5,
                plan: plan.clone(),
                coordinator: 0,
                exec: ExecId::new(0, 7),
            },
            Msg::Visit {
                travel: 5,
                depth: 1,
                exec: ExecId::new(1, 8),
                plan: plan.clone(),
                coordinator: 0,
                items: vec![
                    (VertexId(1), vec![]),
                    (VertexId(2), vec![Token { owner: 1, id: 42 }]),
                ],
            },
            Msg::ExecCreated {
                travel: 5,
                exec: ExecId::new(1, 9),
                depth: 2,
            },
            Msg::ExecTerminated {
                travel: 5,
                exec: ExecId::new(1, 9),
                children: vec![(ExecId::new(2, 1), 3)],
            },
            Msg::OriginSatisfied {
                travel: 5,
                exec: ExecId::new(2, 2),
                coordinator: 0,
                tokens: vec![7, 8],
            },
            Msg::Results {
                travel: 5,
                items: vec![(1, VertexId(10))],
            },
            Msg::SyncStart {
                travel: 6,
                plan: plan.clone(),
                coordinator: 1,
                depth: 0,
                expect: SyncExpect::ScanSource,
            },
            Msg::SyncStart {
                travel: 6,
                plan: plan.clone(),
                coordinator: 1,
                depth: 1,
                expect: SyncExpect::Vertices(12),
            },
            Msg::SyncStart {
                travel: 6,
                plan: plan.clone(),
                coordinator: 1,
                depth: 2,
                expect: SyncExpect::OriginTokens(3),
            },
            Msg::SyncFrontier {
                travel: 6,
                depth: 1,
                items: vec![(VertexId(3), vec![Token { owner: 0, id: 1 }])],
            },
            Msg::SyncOrigin {
                travel: 6,
                tokens: vec![1, 2, 3],
            },
            Msg::SyncStepDone {
                travel: 6,
                depth: 1,
                server: 2,
                sent: vec![(0, 5), (1, 6)],
                origin_sent: vec![(2, 1)],
            },
            Msg::Ingest {
                req: 9,
                client: 3,
                vertices: vec![vertex.clone()],
                edges: vec![edge.clone()],
            },
            Msg::IngestAck {
                req: 9,
                applied: 2,
                wseq: 44,
            },
            Msg::GetVertex {
                req: 10,
                client: 3,
                vertex: VertexId(5),
                barrier: 44,
            },
            Msg::VertexReply {
                req: 10,
                vertex: Some(Box::new(vertex.clone())),
            },
            Msg::VertexReply {
                req: 11,
                vertex: None,
            },
            Msg::Relay {
                travel: 5,
                from: 1,
                epoch: 2,
                tepoch: 3,
                seq: 4,
                attempt: 1,
                inner: Box::new(Msg::Results {
                    travel: 5,
                    items: vec![(1, VertexId(10))],
                }),
            },
            Msg::RelayAck {
                travel: 5,
                server: 2,
                seq: 4,
                attempt: 1,
            },
            Msg::CoordRecover {
                travel: 7,
                epoch: 2,
                plan: plan.clone(),
                client: 3,
                events: vec![
                    LedgerEvent::Created {
                        epoch: 1,
                        exec: ExecId::new(0, 1),
                        depth: 0,
                    },
                    LedgerEvent::Snapshot {
                        epoch: 1,
                        created: vec![(ExecId::new(0, 1), 0)],
                        terminated: vec![ExecId::new(0, 1)],
                        results: vec![(0, VertexId(1))],
                    },
                ],
            },
            Msg::CoordHandoff {
                travel: 7,
                epoch: 3,
                coordinator: 2,
                restarted: Some(1),
            },
            Msg::CoordHandoff {
                travel: 7,
                epoch: 3,
                coordinator: 2,
                restarted: None,
            },
            Msg::ReAnnounce {
                travel: 7,
                epoch: 3,
                server: 0,
                created: vec![(ExecId::new(0, 2), 1)],
                terminated: vec![(ExecId::new(0, 2), vec![(ExecId::new(1, 1), 2)])],
                results: vec![(1, VertexId(4))],
            },
            Msg::RecoverDone {
                travel: 7,
                epoch: 3,
            },
            Msg::PlacementUpdate {
                map: Arc::new(PlacementMap::initial(3, 2)),
                client: 3,
            },
            Msg::PlacementAck {
                version: 1,
                server: 0,
            },
            Msg::ReplicateWrite {
                req: 12,
                origin: 0,
                wseq: 5,
                seq: Some(6),
                vertices: vec![vertex.clone()],
                edges: vec![edge],
            },
            Msg::ReplicateAck { req: 12, server: 1 },
            Msg::ReplicateLedger {
                from: 0,
                blobs: vec![vec![1, 2, 3], vec![]],
                reset: true,
            },
            Msg::MigrateBegin {
                mig: 20,
                partition: 1,
                to: 2,
                client: 3,
            },
            Msg::MigrateData {
                mig: 20,
                partition: 1,
                pairs: vec![
                    ("verts".into(), vec![1, 2], Some(vec![3])),
                    ("edges".into(), vec![4], None),
                ],
                phase: 0,
                last: true,
                client: 3,
            },
            Msg::MigrateApplied {
                mig: 20,
                phase: 1,
                server: 2,
            },
            Msg::MigrateCutover { mig: 20 },
            Msg::MigrateFinish { mig: 20 },
            Msg::Heartbeat {
                from: 1,
                seq: 99,
                load: 1000,
            },
            Msg::Suspect {
                from: 0,
                suspect: 1,
            },
            Msg::SuspectAck {
                suspect: 1,
                confirmed: false,
            },
            Msg::ReReplicateBegin {
                mig: 21,
                partition: 0,
                to: 1,
                client: 3,
            },
            Msg::ReReplicateData {
                mig: 21,
                partition: 0,
                pairs: vec![("verts".into(), vec![9], None)],
                phase: 1,
                last: false,
                client: 3,
            },
            Msg::ReReplicateCutover { mig: 21 },
            Msg::ReReplicateFinish { mig: 21 },
            Msg::Crash,
            Msg::Shutdown,
        ];
        for msg in msgs {
            rt(msg);
        }
    }

    #[test]
    fn malformed_bytes_decode_to_none() {
        assert!(Msg::decode(&[]).is_none());
        assert!(Msg::decode(&[250]).is_none(), "unknown tag");
        assert!(
            Msg::decode(&[T_SUBMIT, 1, 2, 3]).is_none(),
            "truncated body"
        );
        // Trailing garbage after a complete message.
        let mut buf = Vec::new();
        Msg::Shutdown.encode(&mut buf);
        buf.push(7);
        assert!(Msg::decode(&buf).is_none());
        // A hostile length prefix larger than the buffer is rejected
        // before allocation.
        let mut buf = vec![T_RESULTS];
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Msg::decode(&buf).is_none());
        // Relay nesting beyond the engine's single level is rejected.
        let mut deep = Msg::Results {
            travel: 1,
            items: vec![],
        };
        for _ in 0..10 {
            deep = Msg::Relay {
                travel: 1,
                from: 0,
                epoch: 0,
                tepoch: 0,
                seq: 1,
                attempt: 1,
                inner: Box::new(deep),
            };
        }
        let mut buf = Vec::new();
        deep.encode(&mut buf);
        assert!(Msg::decode(&buf).is_none());
    }

    #[test]
    fn qos_weight_survives_the_wire() {
        let mut plan = (*sample_plan()).clone();
        plan.qos_weight = 4;
        let mut buf = Vec::new();
        Msg::Submit {
            travel: 1,
            plan: Arc::new(plan),
            client: 0,
        }
        .encode(&mut buf);
        let Some(Msg::Submit { plan, .. }) = Msg::decode(&buf) else {
            panic!("expected Submit back");
        };
        assert_eq!(plan.qos_weight, 4);
    }
}
