//! Engine selection and tuning.

use crate::faults::{ChaosPlan, FaultPlan};
use crate::qos::QosConfig;
use gt_net::NetConfig;
use std::time::Duration;

/// How cluster endpoints exchange messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The simulated in-process fabric: bounded channels plus the
    /// latency/bandwidth/chaos model. The default; byte-identical to the
    /// pre-transport engine.
    #[default]
    InProc,
    /// Length-prefixed frames over TCP loopback — every message crosses
    /// a real socket, one listener per cluster.
    Tcp,
    /// Length-prefixed frames over a Unix-domain socket.
    Uds,
}

impl TransportKind {
    /// Display name used in benches and logs.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::InProc => "inproc",
            TransportKind::Tcp => "tcp",
            TransportKind::Uds => "uds",
        }
    }
}

/// Which traversal engine a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Level-synchronous baseline (the paper's **Sync-GT**): a controller
    /// barrier between steps, data flowing server-to-server (§VI).
    Sync,
    /// Plain asynchronous traversal (the paper's **Async-GT**): no
    /// barrier, but also no caching or merging (§VII-A's ablation).
    AsyncPlain,
    /// Asynchronous traversal with traversal-affiliate caching and
    /// execution scheduling & merging — **GraphTrek** proper (§V).
    GraphTrek,
}

impl EngineKind {
    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sync => "Sync-GT",
            EngineKind::AsyncPlain => "Async-GT",
            EngineKind::GraphTrek => "GraphTrek",
        }
    }

    /// All three engines, in the paper's table order.
    pub fn all() -> [EngineKind; 3] {
        [
            EngineKind::Sync,
            EngineKind::AsyncPlain,
            EngineKind::GraphTrek,
        ]
    }
}

/// Per-cluster engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Engine flavour.
    pub kind: EngineKind,
    /// Worker threads per backend server ("a pool of worker threads is
    /// waiting on this queue", §V-B).
    pub workers_per_server: usize,
    /// Traversal-affiliate cache capacity in triples (GraphTrek only).
    pub cache_capacity: usize,
    /// Network latency/bandwidth model.
    pub net: NetConfig,
    /// Straggler injection plan (Fig. 11 experiments).
    pub faults: FaultPlan,
    /// Seeded lossy-transport + crash schedule (the chaos harness).
    pub chaos: ChaosPlan,
    /// Override: force the reliable-delivery layer (sequenced, ack'd,
    /// retransmitted frontier forwarding with epoch fencing) on or off.
    /// `None` enables it exactly when the chaos plan requires it, so the
    /// chaos-free fast path stays byte-identical to the plain engine.
    pub reliable_delivery: Option<bool>,
    /// Override: force the scheduling/merging queue on or off
    /// independently of `kind` (ablation experiments). `None` follows the
    /// kind's default.
    pub force_merging_queue: Option<bool>,
    /// Override: force the traversal-affiliate cache on or off (ablation).
    pub force_cache: Option<bool>,
    /// Maximum travels admitted into the cluster at once; further
    /// submissions queue client-side in FIFO order until a slot frees
    /// (`0` = unlimited, the single-tenant behaviour).
    pub max_concurrent_travels: usize,
    /// Override: weighted fair cross-travel scheduling in the merging
    /// queue. `None` keeps it on whenever the merging queue is on;
    /// `Some(false)` reverts to the globally-smallest-step pick.
    pub fair_cross_travel: Option<bool>,
    /// Traversal-affiliate cache triples reserved per active travel: a
    /// co-running travel's inserts never evict another travel below this
    /// floor (`0` = no reservation).
    pub cache_reserve_per_travel: usize,
    /// Route point lookups and frontier reads to the least-loaded holder
    /// of a partition (replica reads) instead of always the primary.
    /// Off by default: a single-replica cluster routes byte-identically
    /// to the pre-placement code, and every `self_heal_counters()` entry
    /// stays zero.
    pub replica_reads: bool,
    /// MVCC snapshot isolation: stores stamp every write with a
    /// cluster-wide sequence number and each travel reads a frozen view
    /// captured at admission, so a travel never observes ingest that
    /// raced past it. Off by default: keys are stored raw, reads take
    /// the unversioned path, and every `snapshot_counters()` entry stays
    /// exactly zero.
    pub snapshot_isolation: bool,
    /// How endpoints exchange messages: the simulated in-process fabric
    /// (default) or real sockets (TCP loopback / UDS) with every message
    /// passing through the binary wire codec. Chaos injection requires
    /// the simulated fabric; combining it with a socket transport is a
    /// build error.
    pub transport: TransportKind,
    /// Poll slice for [`crate::cluster::Cluster::wait`]: how often a
    /// blocked waiter re-checks for failover/timeout while a travel is
    /// outstanding. Shorter slices tighten deadline enforcement at the
    /// cost of wake-ups. Floor 1 ms.
    pub wait_poll: Duration,
    /// Front-door per-tenant QoS policy. Disabled by default: the gate
    /// is bypassed and every per-tenant counter stays exactly zero.
    pub qos: QosConfig,
}

impl EngineConfig {
    /// Defaults for a given engine kind.
    pub fn new(kind: EngineKind) -> Self {
        EngineConfig {
            kind,
            workers_per_server: 2,
            cache_capacity: 1 << 16,
            net: NetConfig::instant(),
            faults: FaultPlan::none(),
            chaos: ChaosPlan::none(),
            reliable_delivery: None,
            force_merging_queue: None,
            force_cache: None,
            max_concurrent_travels: 0,
            fair_cross_travel: None,
            cache_reserve_per_travel: 0,
            replica_reads: false,
            snapshot_isolation: false,
            transport: TransportKind::InProc,
            wait_poll: Duration::from_millis(50),
            qos: QosConfig::default(),
        }
    }

    /// Builder-style: worker threads per server.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers_per_server = n.max(1);
        self
    }

    /// Builder-style: traversal-affiliate cache capacity.
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Builder-style: network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder-style: fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style: chaos schedule.
    pub fn chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builder-style: force the reliable-delivery layer on or off
    /// independently of the chaos plan (e.g. on with zero fault
    /// probabilities, so isolation healing via retransmit can be tested).
    pub fn force_reliable_delivery(mut self, on: bool) -> Self {
        self.reliable_delivery = Some(on);
        self
    }

    /// Builder-style: ablation override for the merging queue.
    pub fn force_merging_queue(mut self, on: bool) -> Self {
        self.force_merging_queue = Some(on);
        self
    }

    /// Builder-style: ablation override for the cache.
    pub fn force_cache(mut self, on: bool) -> Self {
        self.force_cache = Some(on);
        self
    }

    /// Builder-style: admission-control limit on concurrent travels.
    pub fn max_concurrent_travels(mut self, n: usize) -> Self {
        self.max_concurrent_travels = n;
        self
    }

    /// Builder-style: override cross-travel fair scheduling.
    pub fn fair_cross_travel(mut self, on: bool) -> Self {
        self.fair_cross_travel = Some(on);
        self
    }

    /// Builder-style: per-travel cache reservation floor.
    pub fn cache_reserve_per_travel(mut self, n: usize) -> Self {
        self.cache_reserve_per_travel = n;
        self
    }

    /// Builder-style: replica-read routing for point lookups and
    /// frontier reads.
    pub fn replica_reads(mut self, on: bool) -> Self {
        self.replica_reads = on;
        self
    }

    /// Builder-style: MVCC snapshot isolation for travels over a
    /// mutating graph.
    pub fn snapshot_isolation(mut self, on: bool) -> Self {
        self.snapshot_isolation = on;
        self
    }

    /// Builder-style: message transport (in-process fabric or sockets).
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.transport = kind;
        self
    }

    /// Builder-style: `Cluster::wait` poll slice (floored at 1 ms).
    pub fn wait_poll(mut self, slice: Duration) -> Self {
        self.wait_poll = slice.max(Duration::from_millis(1));
        self
    }

    /// Builder-style: front-door QoS policy.
    pub fn qos(mut self, qos: QosConfig) -> Self {
        self.qos = qos;
        self
    }

    /// Whether the merging queue picks across travels by weighted fair
    /// share (as opposed to the globally-smallest-step pick).
    pub fn fair_cross_travel_enabled(&self) -> bool {
        self.fair_cross_travel.unwrap_or(true)
    }

    /// Whether inter-server frontier forwarding runs through the
    /// reliable-delivery layer (sequence numbers, acks, retransmission
    /// with capped exponential backoff, epoch fencing, redelivery
    /// dedupe). Off by default so the chaos-free bench paths pay nothing.
    pub fn reliable_delivery_enabled(&self) -> bool {
        self.reliable_delivery
            .unwrap_or_else(|| self.chaos.requires_reliable_delivery())
    }

    /// Whether this configuration uses the scheduling/merging queue.
    pub fn merging_queue_enabled(&self) -> bool {
        self.force_merging_queue
            .unwrap_or(matches!(self.kind, EngineKind::GraphTrek))
    }

    /// The effective traversal-affiliate cache capacity.
    pub fn effective_cache_capacity(&self) -> usize {
        let default_on = matches!(self.kind, EngineKind::GraphTrek);
        if self.force_cache.unwrap_or(default_on) {
            self.cache_capacity
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_defaults() {
        assert!(EngineConfig::new(EngineKind::GraphTrek).merging_queue_enabled());
        assert!(EngineConfig::new(EngineKind::GraphTrek).effective_cache_capacity() > 0);
        assert!(!EngineConfig::new(EngineKind::AsyncPlain).merging_queue_enabled());
        assert_eq!(
            EngineConfig::new(EngineKind::AsyncPlain).effective_cache_capacity(),
            0
        );
        assert_eq!(
            EngineConfig::new(EngineKind::Sync).effective_cache_capacity(),
            0
        );
    }

    #[test]
    fn ablation_overrides() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek).force_cache(false);
        assert_eq!(cfg.effective_cache_capacity(), 0);
        assert!(cfg.merging_queue_enabled());
        let cfg = EngineConfig::new(EngineKind::AsyncPlain)
            .force_merging_queue(true)
            .force_cache(true)
            .cache_capacity(128);
        assert!(cfg.merging_queue_enabled());
        assert_eq!(cfg.effective_cache_capacity(), 128);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(EngineKind::Sync.label(), "Sync-GT");
        assert_eq!(EngineKind::AsyncPlain.label(), "Async-GT");
        assert_eq!(EngineKind::GraphTrek.label(), "GraphTrek");
        assert_eq!(EngineKind::all().len(), 3);
    }

    #[test]
    fn concurrency_knobs() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek);
        assert_eq!(cfg.max_concurrent_travels, 0, "unlimited by default");
        assert!(cfg.fair_cross_travel_enabled(), "fair pick on by default");
        assert_eq!(cfg.cache_reserve_per_travel, 0);
        let cfg = cfg
            .max_concurrent_travels(4)
            .fair_cross_travel(false)
            .cache_reserve_per_travel(32);
        assert_eq!(cfg.max_concurrent_travels, 4);
        assert!(!cfg.fair_cross_travel_enabled());
        assert_eq!(cfg.cache_reserve_per_travel, 32);
    }

    #[test]
    fn replica_reads_default_off() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek);
        assert!(!cfg.replica_reads, "dormant by default");
        assert!(cfg.replica_reads(true).replica_reads);
    }

    #[test]
    fn snapshot_isolation_default_off() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek);
        assert!(!cfg.snapshot_isolation, "dormant by default");
        assert!(cfg.snapshot_isolation(true).snapshot_isolation);
    }

    #[test]
    fn reliable_delivery_follows_chaos_plan() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek);
        assert!(!cfg.reliable_delivery_enabled(), "off without chaos");
        let cfg = cfg.chaos(ChaosPlan::lossy(1));
        assert!(cfg.reliable_delivery_enabled(), "on under chaos");
        let cfg = EngineConfig::new(EngineKind::Sync).force_reliable_delivery(true);
        assert!(cfg.reliable_delivery_enabled(), "explicit override");
        let cfg = EngineConfig::new(EngineKind::Sync)
            .chaos(ChaosPlan::lossy(1))
            .force_reliable_delivery(false);
        assert!(!cfg.reliable_delivery_enabled(), "override wins");
    }

    #[test]
    fn transport_defaults_to_inproc() {
        let cfg = EngineConfig::new(EngineKind::GraphTrek);
        assert_eq!(cfg.transport, TransportKind::InProc);
        assert_eq!(cfg.transport(TransportKind::Uds).transport.label(), "uds");
        assert_eq!(TransportKind::Tcp.label(), "tcp");
    }

    #[test]
    fn wait_poll_floors_at_one_ms() {
        let cfg = EngineConfig::new(EngineKind::Sync);
        assert_eq!(cfg.wait_poll, Duration::from_millis(50), "default slice");
        assert_eq!(
            cfg.wait_poll(Duration::ZERO).wait_poll,
            Duration::from_millis(1)
        );
    }

    #[test]
    fn qos_defaults_off() {
        assert!(!EngineConfig::new(EngineKind::GraphTrek).qos.enabled);
    }

    #[test]
    fn workers_floor_at_one() {
        assert_eq!(
            EngineConfig::new(EngineKind::Sync)
                .workers(0)
                .workers_per_server,
            1
        );
    }
}
