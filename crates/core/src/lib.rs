#![warn(missing_docs)]

//! # GraphTrek — asynchronous graph traversal for property-graph metadata
//!
//! Reproduction of *GraphTrek: Asynchronous Graph Traversal for Property
//! Graph-Based Metadata Management* (Dai, Carns, Ross, Jenkins, Blauer,
//! Chen — IEEE CLUSTER 2015). The crate contains:
//!
//! * the **GTravel traversal language** ([`lang`]) — chained `v()` / `e()`
//!   selectors, `va()` / `ea()` property filters and `rtn()` return
//!   indicators (paper §III);
//! * a **server-side traversal runtime** ([`server`], [`cluster`]) where a
//!   client ships the whole query to a coordinator backend server and the
//!   traversal spreads server-to-server (§IV-A);
//! * three interchangeable **engines** ([`engine`]):
//!   [`EngineKind::Sync`] (level-synchronous BFS with a controller barrier
//!   per step, the paper's Sync-GT baseline, §VI), [`EngineKind::AsyncPlain`]
//!   (no barrier, no optimizations — Async-GT), and
//!   [`EngineKind::GraphTrek`] (asynchronous plus *traversal-affiliate
//!   caching* ([`cache`]) and *execution scheduling & merging* ([`queue`]),
//!   §V);
//! * **status and progress tracing** ([`coordinator`]) — execution
//!   creation/termination ledger giving asynchronous global-termination
//!   detection, silent-failure detection by timeout, and per-step progress
//!   estimates (§IV-C);
//! * **`rtn()` result routing** — intermediate vertices are returned only
//!   when one of their descendant paths reaches the end of the chain,
//!   implemented with origin tokens and redirected report destinations
//!   (§IV-D);
//! * **fault injection** ([`faults`]) — the transient-straggler model of
//!   the paper's Fig. 11 experiment, plus a seeded deterministic chaos
//!   layer ([`faults::ChaosPlan`]) of lossy transport and scripted server
//!   crashes that the reliable-delivery machinery in [`server`] survives;
//! * a **single-threaded reference oracle** ([`oracle`]) defining the
//!   language semantics that every engine must match (used heavily by the
//!   equivalence property tests).
//!
//! ## Quick start
//!
//! ```
//! use graphtrek::prelude::*;
//! use gt_graph::{InMemoryGraph, Vertex, Edge, Props};
//!
//! // Tiny metadata graph: one user ran one job that read one file.
//! let mut g = InMemoryGraph::new();
//! g.add_vertex(Vertex::new(1u64, "User", Props::new().with("name", "sam")));
//! g.add_vertex(Vertex::new(2u64, "Execution", Props::new()));
//! g.add_vertex(Vertex::new(3u64, "File", Props::new().with("ftype", "text")));
//! g.add_edge(Edge::new(1u64, "run", 2u64, Props::new().with("ts", 100i64)));
//! g.add_edge(Edge::new(2u64, "read", 3u64, Props::new()));
//!
//! let dir = std::env::temp_dir().join(format!("graphtrek-doc-{}", std::process::id()));
//! let cluster = Cluster::build(
//!     &g,
//!     ClusterConfig::new(&dir, 2),
//!     EngineConfig::new(EngineKind::GraphTrek),
//! ).unwrap();
//!
//! // "Find all text files read by executions user sam started in [0,200]".
//! let q = GTravel::v([1u64])
//!     .e("run").ea(PropFilter::range("ts", 0i64, 200i64))
//!     .e("read").va(PropFilter::eq("ftype", "text"))
//!     .rtn();
//! let result = cluster.submit(&q).unwrap();
//! assert_eq!(result.vertices, vec![gt_graph::VertexId(3)]);
//! cluster.shutdown();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod cache;
pub mod cluster;
pub mod coordinator;
pub mod engine;
pub mod faults;
pub mod frontdoor;
pub mod lang;
pub mod lockorder;
pub mod message;
pub mod metrics;
pub mod oracle;
pub mod parse;
pub mod qos;
pub mod queue;
pub mod server;
pub mod wirecodec;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::cluster::{
        Cluster, ClusterConfig, ClusterError, DurabilityLevel, Ticket, TravelError, TravelResult,
    };
    pub use crate::engine::{EngineConfig, EngineKind};
    pub use crate::faults::{ChaosPlan, CrashPoint, FaultPlan, Straggler};
    pub use crate::lang::{GTravel, Plan};
    pub use crate::metrics::TravelMetrics;
    pub use crate::parse::parse as parse_gtravel;
    pub use crate::server::DetectionConfig;
    pub use gt_graph::{Cond, FilterSet, PropFilter, PropValue, VertexId};
}

pub use cluster::{Cluster, ClusterConfig, TravelResult};
pub use engine::{EngineConfig, EngineKind};
pub use lang::{GTravel, Plan};

/// Identifier of one traversal (assigned by the submitting client).
pub type TravelId = u64;

/// Identifier of one *traversal execution* — the unit of status tracing:
/// "we consider this whole procedure on a specific server as one traversal
/// execution" (§IV-C). The high 16 bits carry the allocating server, so
/// ids are unique without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecId(pub u64);

impl ExecId {
    /// Compose an id from the allocating server and a local counter.
    pub fn new(server: usize, counter: u64) -> Self {
        debug_assert!(server < (1 << 16));
        debug_assert!(counter < (1 << 48));
        ExecId(((server as u64) << 48) | counter)
    }

    /// The server that allocated this id.
    pub fn server(self) -> usize {
        (self.0 >> 48) as usize
    }
}

/// An origin token: a pending `rtn()` return registered on `owner`.
/// Descendant traversal requests carry the tokens of every `rtn()`-marked
/// ancestor vertex; when a path reaches the end of the chain, its tokens
/// are satisfied and the owning servers release the recorded vertices
/// (§IV-D's "reporting destination" redirection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token {
    /// Server holding the pending-return record.
    pub owner: u16,
    /// Key of the record on that server.
    pub id: u64,
}

/// Token list attached to a frontier vertex (usually empty).
pub type Tokens = Vec<Token>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_id_packs_server_and_counter() {
        let id = ExecId::new(31, 123_456);
        assert_eq!(id.server(), 31);
        let other = ExecId::new(31, 123_457);
        assert_ne!(id, other);
        assert_eq!(ExecId::new(0, 0).server(), 0);
    }
}
